//! The service layer: share one graph + reachability index across many
//! queries, let the selector pick the backend, and watch the cache work.
//!
//! Run with `cargo run --release --example query_service`.

use std::sync::Arc;

use gtpq::datagen::{generate_xmark, random_queries, xmark_q1, RandomQueryConfig, XmarkConfig};
use gtpq::prelude::*;

fn main() {
    let graph = Arc::new(generate_xmark(&XmarkConfig::with_scale(0.1)));
    println!(
        "XMark-like graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // The service profiles the graph and picks a reachability backend.
    let service = QueryService::new(Arc::clone(&graph));
    let selection = service.backend_selection().expect("auto-selected");
    println!(
        "backend: {} ({}); profile: {:?}",
        service.backend_name(),
        selection.reason,
        selection.profile
    );

    // A mixed workload: one of the paper's XMark queries plus random
    // patterns sampled from the graph itself.
    let mut queries = vec![xmark_q1(0)];
    queries.extend(random_queries(&graph, &RandomQueryConfig::with_size(4)));

    // Cold: every request runs the full GTEA pipeline, fanned out over the
    // worker pool; each keeps its own outcome (rows, truncation, stats).
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect();
    let cold = service.submit_batch(&requests);
    println!(
        "cold batch: {} requests, {} total tuples",
        requests.len(),
        cold.iter()
            .map(|r| r.as_ref().map(|o| o.len()).unwrap_or(0))
            .sum::<usize>()
    );

    // Warm: the same batch is answered from the result cache.
    service.submit_batch(&requests);

    let m = service.metrics();
    println!(
        "metrics: {} queries in {} batches, hit rate {:.0}%, {:.0} q/s",
        m.queries,
        m.batches,
        100.0 * m.hit_rate(),
        m.qps()
    );
    println!(
        "engine time {:?} (candidates {:?}, pruning {:?}, matching {:?}, enumeration {:?})",
        m.eval_time,
        m.candidate_time,
        m.prune_down_time + m.prune_up_time,
        m.matching_time,
        m.enumerate_time
    );
    // At least the whole warm batch hits; equivalent random queries inside
    // the cold batch can add more.
    assert!(m.cache_hits >= queries.len() as u64);
}
