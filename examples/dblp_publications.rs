//! The motivating example of the paper (Example 1): three publication queries
//! over a DBLP-like bibliography graph — conjunction ("Alice AND Bob"),
//! disjunction ("Alice OR Bob") and negation ("Alice but NOT Bob"), all
//! restricted to proceedings from 2000-2010.
//!
//! Run with `cargo run --example dblp_publications`.

use gtpq::baselines::{evaluate_gtpq_with, TwigStackD};
use gtpq::datagen::{dblp_queries, generate_dblp};
use gtpq::prelude::*;
use gtpq::query::naive;

fn main() {
    let graph = generate_dblp(400, 2024);
    println!(
        "DBLP-like graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let engine = GteaEngine::new(&graph);
    let twig_d = TwigStackD::new(&graph);

    for (name, query) in dblp_queries() {
        let (answer, stats) = engine.evaluate_with_stats(&query);
        // Cross-check against the naive semantics and the decompose-and-merge
        // baseline to show all three agree.
        let oracle = naive::evaluate(&query, &graph);
        let (baseline, baseline_stats) = evaluate_gtpq_with(&twig_d, &query);
        assert!(answer.same_answer(&oracle));
        assert!(answer.same_answer(&baseline));
        println!(
            "{name}: {:>4} results | GTEA {:>9.3?} | TwigStackD+decompose {:>9.3?} ({} subqueries)",
            answer.len(),
            stats.total_time(),
            baseline_stats.total_time,
            baseline_stats.subqueries,
        );
    }
    println!("Q1 (AND) ⊆ Q2 (OR) and Q3 (AND NOT) ⊆ Q2 hold by construction.");
}
