//! The textual query language end to end: parse a query from a string,
//! inspect its tree, evaluate it through the service, and see what a parse
//! error diagnostic looks like.
//!
//! Run with `cargo run --release --example query_text`.
//! Full language reference: `docs/QUERY_LANGUAGE.md`.

use std::sync::Arc;

use gtpq::datagen::generate_dblp;
use gtpq::prelude::*;

fn main() {
    let graph = Arc::new(generate_dblp(240, 42));
    let service = QueryService::new(Arc::clone(&graph));
    println!(
        "DBLP-like graph: {} nodes, {} edges, backend {}",
        graph.node_count(),
        graph.edge_count(),
        service.backend_name()
    );

    // Example 1 of the paper, written as text: papers with an Alice author
    // but no Bob co-author, returning the title node.
    let text = r#"
        inproceedings {
            / [label = title] as title*
            where (/ [label = author, value = Alice])
                & !(/ [label = author, value = Bob])
        }
    "#;

    // Strings parse into the same `Gtpq` the builder API produces.
    let query: Gtpq = text.parse().expect("query parses");
    println!("\nparsed tree:\n{}", query.to_pretty_string());
    println!("\ncanonical one-liner:\n{query}");

    // `submit` with text = parse + canonical cache key + evaluate.
    let outcome = service
        .submit(&QueryRequest::text(text).with_stats())
        .expect("query parses");
    let (results, stats) = (outcome.rows, outcome.stats.unwrap_or_default());
    println!(
        "\n{} papers by Alice without Bob ({} initial candidates, {:?} total)",
        results.len(),
        stats.initial_candidates,
        stats.total_time()
    );

    // A different spelling of the same pattern hits the same cache slot.
    let respelled = "inproceedings { /[label=title] as title* \
                     where !(/[label=author, value=Bob]) & (/[label=author, value=Alice]) }";
    let again = service
        .submit(&QueryRequest::text(respelled))
        .expect("query parses")
        .rows;
    assert!(Arc::ptr_eq(&results, &again));
    println!(
        "respelled query served from the cache (hit rate {:.0}%)",
        100.0 * service.metrics().hit_rate()
    );

    // Parse errors carry spans and render as caret diagnostics.
    let broken = "inproceedings { where /[value = 3.5] }";
    if let Err(QueryError::Parse(e)) = service.submit(&QueryRequest::text(broken)) {
        println!("\nwhat an error looks like:\n{}", e.render(broken));
    }
}
