//! Quickstart: build a small graph, express a GTPQ with conjunction,
//! disjunction and negation, and evaluate it with GTEA.
//!
//! Run with `cargo run --example quickstart`.

use gtpq::prelude::*;

fn main() {
    // A miniature bibliography graph: two papers, three authors, one venue.
    let mut b = GraphBuilder::new();
    let paper1 = b.add_node_with_label("inproceedings");
    let paper2 = b.add_node_with_label("inproceedings");
    let venue = b.add_node_with_attrs([("label", "proceedings".into())]);
    let year = b.add_node_with_attrs([("label", "year".into()), ("year", AttrValue::Int(2005))]);
    let alice1 = b.add_node_with_attrs([("label", "author".into()), ("value", "Alice".into())]);
    let bob1 = b.add_node_with_attrs([("label", "author".into()), ("value", "Bob".into())]);
    let alice2 = b.add_node_with_attrs([("label", "author".into()), ("value", "Alice".into())]);
    for (src, dst) in [
        (paper1, alice1),
        (paper1, bob1),
        (paper2, alice2),
        (paper1, venue),
        (paper2, venue),
        (venue, year),
    ] {
        b.add_edge(src, dst);
    }
    let graph = b.build();

    // "Alice's papers that are NOT co-authored with Bob" — Example 1, Q3.
    let mut qb = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
    let root = qb.root_id();
    let alice = qb.predicate_child(
        root,
        EdgeKind::Child,
        AttrPredicate::label("author").and("value", CmpOp::Eq, "Alice".into()),
    );
    let bob = qb.predicate_child(
        root,
        EdgeKind::Child,
        AttrPredicate::label("author").and("value", CmpOp::Eq, "Bob".into()),
    );
    qb.set_structural(
        root,
        BoolExpr::and2(
            BoolExpr::Var(alice.var()),
            BoolExpr::not(BoolExpr::Var(bob.var())),
        ),
    );
    qb.mark_output(root);
    let query = qb.build().expect("valid query");

    println!("Query:\n{}", query.describe());

    let engine = GteaEngine::new(&graph);
    let (answer, stats) = engine.evaluate_with_stats(&query);
    println!("Answer tuples: {:?}", answer.tuples);
    println!(
        "Evaluated in {:?} ({} candidates pruned to {})",
        stats.total_time(),
        stats.initial_candidates,
        stats.candidates_after_downward
    );
    assert_eq!(answer.len(), 1, "only the solo-authored paper qualifies");
    assert!(answer.contains(&[paper2]));
}
