//! Static query analysis: satisfiability, containment and minimization of
//! GTPQs (paper §3), without touching any data graph.
//!
//! Run with `cargo run --example query_analysis`.

use gtpq::analysis::{contained_in, equivalent, is_satisfiable, minimize};
use gtpq::prelude::*;

/// Builds "conference papers with an `author` child and a `title` child",
/// optionally also requiring the author to be absent (an unsatisfiable
/// combination when both are asked for).
fn paper_query(require_author: bool, forbid_author: bool) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
    let root = b.root_id();
    let title = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("title"));
    let author = b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("author"));
    let fs = match (require_author, forbid_author) {
        (true, true) => BoolExpr::and2(
            BoolExpr::Var(author.var()),
            BoolExpr::not(BoolExpr::Var(author.var())),
        ),
        (true, false) => BoolExpr::Var(author.var()),
        (false, true) => BoolExpr::not(BoolExpr::Var(author.var())),
        (false, false) => BoolExpr::True,
    };
    b.set_structural(root, fs);
    b.mark_output(title);
    b.build().unwrap()
}

fn main() {
    let with_author = paper_query(true, false);
    let without_author = paper_query(false, true);
    let contradictory = paper_query(true, true);
    let unconstrained = paper_query(false, false);

    println!("satisfiability:");
    println!(
        "  author required        -> {}",
        is_satisfiable(&with_author)
    );
    println!(
        "  author forbidden       -> {}",
        is_satisfiable(&without_author)
    );
    println!(
        "  required AND forbidden -> {}",
        is_satisfiable(&contradictory)
    );
    assert!(!is_satisfiable(&contradictory));

    println!("\ncontainment:");
    println!(
        "  (author required) ⊑ (unconstrained) -> {}",
        contained_in(&with_author, &unconstrained)
    );
    println!(
        "  (unconstrained) ⊑ (author required) -> {}",
        contained_in(&unconstrained, &with_author)
    );
    assert!(contained_in(&with_author, &unconstrained));
    assert!(!contained_in(&unconstrained, &with_author));
    assert!(equivalent(&with_author, &with_author));

    // Minimization: a duplicated predicate branch is redundant.
    let mut b = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
    let root = b.root_id();
    let title = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("title"));
    let a1 = b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("author"));
    let a2 = b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("author"));
    b.set_structural(
        root,
        BoolExpr::and2(BoolExpr::Var(a1.var()), BoolExpr::Var(a2.var())),
    );
    b.mark_output(title);
    let redundant = b.build().unwrap();
    let minimal = minimize(&redundant);
    println!(
        "\nminimization: {} nodes -> {} nodes (equivalent: {})",
        redundant.size(),
        minimal.size(),
        equivalent(&redundant, &minimal)
    );
    assert!(minimal.size() < redundant.size());
}
