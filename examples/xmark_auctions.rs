//! Auction-site analytics on an XMark-like graph: runs the paper's Q1-Q3 and
//! the Fig. 11 GTPQ suite (disjunction and negation variants), comparing GTEA
//! against the classical baselines.
//!
//! Run with `cargo run --release --example xmark_auctions`.

use std::time::Instant;

use gtpq::baselines::{TpqAlgorithm, TwigStack, TwigStackD};
use gtpq::datagen::{
    fig11_gtpq, generate_xmark, xmark_q1, xmark_q2, xmark_q3, Fig11Predicate, XmarkConfig,
};
use gtpq::prelude::*;

fn main() {
    let graph = generate_xmark(&XmarkConfig::with_scale(0.3));
    println!(
        "XMark-like graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let engine = GteaEngine::new(&graph);
    let twig = TwigStack::new(&graph);
    let twig_d = TwigStackD::new(&graph);

    println!("\n-- conjunctive queries (Fig. 7) --");
    for (name, q) in [
        ("Q1", xmark_q1(0)),
        ("Q2", xmark_q2(0, 3)),
        ("Q3", xmark_q3(0, 3, 7)),
    ] {
        let start = Instant::now();
        let answer = engine.evaluate(&q);
        let gtea_time = start.elapsed();
        let start = Instant::now();
        let (twig_answer, _) = twig.evaluate(&q);
        let twig_time = start.elapsed();
        let (twig_d_answer, _) = twig_d.evaluate(&q);
        assert!(answer.same_answer(&twig_answer));
        assert!(answer.same_answer(&twig_d_answer));
        println!(
            "{name}: {:>5} results | GTEA {gtea_time:>9.3?} | TwigStack {twig_time:>9.3?}",
            answer.len()
        );
    }

    println!("\n-- GTPQs with logical operators (Fig. 11 / Table 4) --");
    for (name, variant) in [
        ("DIS1  (bidder OR seller)", Fig11Predicate::Dis1),
        ("NEG1  (NOT education)", Fig11Predicate::Neg1),
        ("DIS_NEG2 (bidder XOR seller)", Fig11Predicate::DisNeg2),
    ] {
        let q = fig11_gtpq(variant, 0, 3);
        let (answer, stats) = engine.evaluate_with_stats(&q);
        println!(
            "{name:<30} {:>5} results | {:>9.3?} | matching graph size {}",
            answer.len(),
            stats.total_time(),
            stats.intermediate_size
        );
    }
}
