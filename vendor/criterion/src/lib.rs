//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build image has no network access, so this vendored crate implements
//! the slice of the criterion API the workspace benches use — groups,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros and `black_box` — on top of plain wall-clock
//! timing.  It warms up for `warm_up_time`, then collects `sample_size`
//! samples (bounded by `measurement_time`) and prints min/median/mean per
//! benchmark.  No statistics, plots or baselines: enough to compare
//! configurations in CI logs, not a replacement for real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Per-iteration timer handed to the closure of `bench_*`.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    warm_up: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if run_start.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Upper bound on the total sampling time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            warm_up: self.warm_up,
            budget: self.budget,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.name, &mut b.samples);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            budget: Duration::from_millis(1000),
        }
    }

    fn report(&mut self, group: &str, bench: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{group}/{bench}: no samples");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{group}/{bench}: min {min:?}  median {median:?}  mean {mean:?}  (n={})",
            samples.len()
        );
    }
}

/// Mirrors `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`: the binary entry point for `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
