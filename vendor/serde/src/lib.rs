//! Offline stand-in for `serde`: re-exports the no-op derive macros.
//!
//! See `vendor/serde_derive` for the rationale.  Only the derive names are
//! provided because that is the entire surface the workspace consumes.

pub use serde_derive::{Deserialize, Serialize};
