//! Offline stand-in for the `rand` crate.
//!
//! The synthetic-data generators only need a deterministic, seedable PRNG
//! with `gen`, `gen_range` and `gen_bool`; the build image has no network
//! access, so this vendored crate provides exactly that surface on top of
//! xoshiro256++ seeded through SplitMix64.  Streams are stable for a given
//! seed (that is all the generators rely on) but intentionally do *not*
//! match the upstream `StdRng` byte-for-byte.  `gen_range` uses the
//! multiply-shift reduction, whose bias is negligible for the small ranges
//! used by the generators.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only seeding mode the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full bit stream (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The convenience sampling methods every call site uses.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "got {hits}");
    }
}
