//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations for a future wire format; nothing serializes today and the
//! build environment has no network access to fetch the real crate.  These
//! derives therefore expand to nothing, while still accepting the `#[serde]`
//! helper attributes (e.g. `#[serde(skip)]`) that appear in the sources.
//! Swap this vendored crate for the real `serde`/`serde_derive` when a
//! serialization feature actually lands.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
