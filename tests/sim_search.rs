//! Property suite for the pivot-based similarity access path:
//!
//! * **filter completeness** — over a deterministic seed sweep, the pivot
//!   filter's candidate set is always a superset of the exact within-radius
//!   answer (the triangle inequality at work), sorted and correctly
//!   accounted (`pruned + candidates == table len`),
//! * **verification exactness** — [`SimTable::within_l2`] /
//!   [`SimTable::above_cosine`] postings are bit-identical to a brute-force
//!   scan using the same `gtpq::sim` distance kernels, for strict and
//!   inclusive thresholds alike, and the planner's selectivity estimate
//!   upper-bounds the filter's survivor count,
//! * **engine agreement** — full `sim(...)` queries return the same answer
//!   as the naive semantic oracle under all five reachability backends,
//!   with the sim counters accounting for every indexed vector,
//! * **snapshot round trips** — after `save` + `open_mmap` the mapped
//!   (zero-copy) tables produce bit-identical [`SimMatches`] and the engine
//!   answers do not move.
//!
//! [`SimTable::within_l2`]: gtpq::graph::SimTable::within_l2
//! [`SimTable::above_cosine`]: gtpq::graph::SimTable::above_cosine
//! [`SimMatches`]: gtpq::graph::SimMatches

use std::path::PathBuf;

use gtpq::graph::{GraphHandle, GraphSnapshot, SimTable};
use gtpq::prelude::*;
use gtpq::query::naive;
use gtpq::reach::build_index;
use gtpq::sim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 24;

const BACKENDS: [&str; 5] = ["closure", "3hop", "chain", "contour", "sspi"];

/// A unique temp path per test-and-seed so parallel test binaries never
/// collide; removed at the end of each case.
fn temp_snapshot(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("gtpq-sim-{tag}-{}-{seed}.gtpq", std::process::id()))
}

/// A random component quantized to eighths in `[-2, 2)`: exactly
/// representable in f32 *and* in the textual query form, so display
/// round-trips and brute-force comparisons are bit-exact by construction.
fn coord(rng: &mut StdRng) -> f32 {
    rng.gen_range(-16i64..16) as f32 / 8.0
}

fn qvec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| coord(rng)).collect()
}

/// A random attributed graph whose `emb` attribute indexes at dimensionality
/// `dim`: the first 8 nodes always carry a dim-`dim` vector, later nodes
/// carry one with probability 0.6, a few nodes carry an off-dimensionality
/// vector (so the modal-dim rule is exercised — those rows never index),
/// and labels alternate so the sim posting intersects a label posting
/// non-trivially.  Odd seeds allow cycles.
fn embedded_graph(rng: &mut StdRng, seed: u64) -> (DataGraph, usize) {
    let dim = 3 + (seed % 5) as usize;
    let n: usize = rng.gen_range(14..36);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_with_label(if i % 3 == 0 { "aux" } else { "doc" }))
        .collect();
    for (i, &v) in nodes.iter().enumerate() {
        if i < 8 || rng.gen_bool(0.6) {
            b.set_attr(v, "emb", AttrValue::Vec(qvec(rng, dim)));
        } else if rng.gen_bool(0.3) {
            b.set_attr(v, "emb", AttrValue::Vec(qvec(rng, dim + 2)));
        }
    }
    for _ in 0..rng.gen_range(0..n * 2) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (x, y) = if seed.is_multiple_of(2) && x > y {
            (y, x)
        } else {
            (x, y)
        };
        b.add_edge(nodes[x], nodes[y]);
    }
    (b.build(), dim)
}

/// The brute-force L2 posting over the table's own packed rows, using the
/// same `gtpq::sim` kernel the verify path uses — any divergence from
/// `within_l2` is a real bug, not float noise.
fn brute_l2(table: &SimTable, query: &[f32], t: f32, inclusive: bool) -> Vec<NodeId> {
    (0..table.len())
        .filter(|&i| {
            let d = sim::l2(table.vector(i), query);
            d < t || (inclusive && d == t)
        })
        .map(|i| table.indexed_nodes()[i])
        .collect()
}

fn brute_cosine(table: &SimTable, query: &[f32], t: f32, inclusive: bool) -> Vec<NodeId> {
    (0..table.len())
        .filter(|&i| {
            let c = sim::cosine(table.vector(i), query);
            c > t || (inclusive && c == t)
        })
        .map(|i| table.indexed_nodes()[i])
        .collect()
}

#[test]
fn pivot_filter_candidates_are_a_superset_of_the_exact_answer() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, dim) = embedded_graph(&mut rng, seed);
        let table = g.sim_table("emb").expect("emb always indexes");
        assert_eq!(table.dim(), dim, "seed {seed}: modal dimensionality");
        let n = table.len();
        assert!(n >= 8, "seed {seed}: the first 8 nodes always carry dim-d");

        // Rebuild a filter over the table's own packed rows with an
        // independent pivot selection: completeness must hold for *any*
        // pivot set, not just the one the catalog happened to choose.
        let data: Vec<f32> = (0..n).flat_map(|i| table.vector(i).to_vec()).collect();
        let picked = sim::select_pivots(&data, dim, 4, seed);
        let pivots: Vec<f32> = picked
            .iter()
            .flat_map(|&i| data[i * dim..(i + 1) * dim].to_vec())
            .collect();
        let dists = sim::pivot_distances(&data, dim, &pivots);
        let filter = sim::PivotFilter::new(dim, &pivots, &dists);
        assert_eq!(filter.len(), n);

        // Both a random probe and an exact data row (distance-0 edge case).
        let probes = [qvec(&mut rng, dim), table.vector(0).to_vec()];
        for query in &probes {
            for radius in [0.25f32, 1.0, 2.5, 5.0] {
                let res = filter.candidates_within(query, radius);
                assert!(
                    res.candidates.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed}: candidates unsorted"
                );
                assert_eq!(
                    res.pruned as usize + res.candidates.len(),
                    n,
                    "seed {seed}: pruning accounting"
                );
                for i in 0..n {
                    if sim::l2(&data[i * dim..(i + 1) * dim], query) <= radius {
                        assert!(
                            res.candidates.contains(&(i as u32)),
                            "seed {seed} radius {radius}: row {i} is a false negative"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn verified_postings_are_bit_identical_to_brute_force() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, dim) = embedded_graph(&mut rng, seed);
        let table = g.sim_table("emb").expect("emb always indexes");
        let probes = [qvec(&mut rng, dim), table.vector(1).to_vec()];
        for query in &probes {
            for t in [0.25f32, 1.0, 2.5, 5.0] {
                for inclusive in [false, true] {
                    let got = table.within_l2(query, t, inclusive);
                    assert_eq!(
                        got.nodes,
                        brute_l2(table, query, t, inclusive),
                        "seed {seed} l2 t={t} inclusive={inclusive}"
                    );
                    assert_eq!(got.pruned + got.verified, table.len() as u64);
                    assert!(got.nodes.len() as u64 <= got.verified);
                    assert!(
                        table.estimate_within_l2(query, t) as u64 >= got.verified,
                        "seed {seed}: the estimate must upper-bound the filter"
                    );
                }
            }
            for t in [-0.5f32, 0.0, 0.375, 0.875] {
                for inclusive in [false, true] {
                    let got = table.above_cosine(query, t, inclusive);
                    assert_eq!(
                        got.nodes,
                        brute_cosine(table, query, t, inclusive),
                        "seed {seed} cosine t={t} inclusive={inclusive}"
                    );
                    assert_eq!(got.pruned + got.verified, table.len() as u64);
                    assert!(
                        table.estimate_above_cosine(query, t) as u64 >= got.verified,
                        "seed {seed}: the cosine estimate must upper-bound the filter"
                    );
                }
            }
        }
    }
}

#[test]
fn sim_queries_agree_with_the_oracle_across_backends_and_snapshots() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, dim) = embedded_graph(&mut rng, seed);
        let table_len = g.sim_table("emb").expect("emb always indexes").len();
        let query_vec = qvec(&mut rng, dim);

        let path = temp_snapshot("roundtrip", seed);
        GraphHandle::new(g.clone()).snapshot().save(&path).unwrap();
        let mapped = GraphSnapshot::open_mmap(&path).unwrap();
        let lg = mapped.graph();

        // One query per predicate form: strict / inclusive L2 and cosine.
        let forms = [
            (CmpOp::Lt, 2.5f32),
            (CmpOp::Le, 1.0),
            (CmpOp::Gt, 0.375),
            (CmpOp::Ge, -0.25),
        ];
        for (op, threshold) in forms {
            let mut b = GtpqBuilder::new(AttrPredicate::label("doc").and_sim(
                "emb",
                op,
                query_vec.clone(),
                threshold,
            ));
            let root = b.root_id();
            b.mark_output(root);
            let q = b.build().unwrap();

            // Quantized components print exactly, so the textual form
            // round-trips to the same query.
            let text = q.to_string();
            assert_eq!(
                text.parse::<Gtpq>().expect("canonical form parses"),
                q,
                "seed {seed} {op:?}: `{text}`"
            );

            let expected = naive::evaluate(&q, &g);
            for kind in BACKENDS {
                let got =
                    GteaEngine::with_backend(&g, build_index(kind, &g), GteaOptions::default())
                        .evaluate(&q);
                assert!(
                    got.same_answer(&expected),
                    "seed {seed} {op:?} backend {kind}: engine diverges from the oracle"
                );
                let mapped_got = GteaEngine::with_backend(
                    lg.as_ref(),
                    build_index(kind, lg.as_ref()),
                    GteaOptions::default(),
                )
                .evaluate(&q);
                assert!(
                    mapped_got.same_answer(&expected),
                    "seed {seed} {op:?} backend {kind}: answer moved after save + open_mmap"
                );
            }

            // The sim counters account for every indexed vector: each one is
            // either pruned by the pivot tests or exactly verified.
            let (res, stats) = GteaEngine::new(&g).evaluate_with_stats(&q);
            assert!(res.same_answer(&expected), "seed {seed} {op:?}");
            assert_eq!(
                stats.sim_pivot_filtered + stats.sim_verified,
                table_len as u64,
                "seed {seed} {op:?}: counter accounting"
            );
        }

        // The mapped (zero-copy) table and the built (owned) table answer
        // bit-identically — nodes, pruned and verified counts alike.
        let built = g.sim_table("emb").unwrap();
        let loaded = lg.sim_table("emb").expect("mapped graph keeps the table");
        assert_eq!(loaded.len(), built.len(), "seed {seed}");
        assert_eq!(
            loaded.within_l2(&query_vec, 2.5, false),
            built.within_l2(&query_vec, 2.5, false),
            "seed {seed}: mapped l2 posting differs"
        );
        assert_eq!(
            loaded.above_cosine(&query_vec, 0.375, true),
            built.above_cosine(&query_vec, 0.375, true),
            "seed {seed}: mapped cosine posting differs"
        );
        std::fs::remove_file(&path).ok();
    }
}
