//! Property-based tests over the core invariants:
//! * every reachability backend agrees with the BFS oracle (and therefore
//!   with `TransitiveClosure`) on random DAGs and random cyclic graphs,
//! * formula transformations preserve logical equivalence and DPLL agrees
//!   with brute force,
//! * GTEA agrees with the naive semantic evaluator on random graphs and
//!   random (conjunctive and logical) queries.
//!
//! The harness is a deterministic seed sweep over the vendored `rand` PRNG
//! (the build image has no network, so `proptest` is unavailable): every
//! failure message carries the seed, which reproduces the case exactly.

use gtpq::logic::transform::{simplify, to_cnf, to_nnf};
use gtpq::logic::{brute_force_satisfiable, is_satisfiable, BoolExpr};
use gtpq::prelude::*;
use gtpq::query::naive;
use gtpq::reach::{build_index, ThreeHop};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Named backend constructors cross-validated against the oracle.
const BACKENDS: [&str; 5] = ["closure", "3hop", "chain", "contour", "sspi"];

/// A random directed graph: `n` nodes labelled from a 4-letter alphabet and
/// up to `3n` random edges.  `dag_only` restricts edges to point from lower
/// to higher node id, which guarantees acyclicity.
fn random_graph(rng: &mut StdRng, max_nodes: usize, dag_only: bool) -> DataGraph {
    let n = rng.gen_range(2..max_nodes);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..4))))
        .collect();
    for _ in 0..rng.gen_range(0..n * 3) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (x, y) = if dag_only && x > y { (y, x) } else { (x, y) };
        b.add_edge(nodes[x], nodes[y]);
    }
    b.build()
}

/// A random propositional formula of bounded depth over 5 variables.
fn random_formula(rng: &mut StdRng, depth: u32) -> BoolExpr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0u8..4) {
            0 => BoolExpr::True,
            1 => BoolExpr::False,
            _ => BoolExpr::var(rng.gen_range(0u32..5)),
        };
    }
    match rng.gen_range(0u8..3) {
        0 => BoolExpr::not(random_formula(rng, depth - 1)),
        1 => BoolExpr::and((0..rng.gen_range(1..3usize)).map(|_| random_formula(rng, depth - 1))),
        _ => BoolExpr::or((0..rng.gen_range(1..3usize)).map(|_| random_formula(rng, depth - 1))),
    }
}

/// A random small query over the `l0..l3` label alphabet, either conjunctive
/// or with one disjunctive / negated predicate pair at the root.
fn random_query(rng: &mut StdRng) -> Gtpq {
    let root_label = rng.gen_range(0u8..4);
    let n_children = rng.gen_range(1..4usize);
    let mode = rng.gen_range(0u8..3);
    let mut b = GtpqBuilder::new(AttrPredicate::label(&format!("l{root_label}")));
    let root = b.root_id();
    let mut predicate_vars = Vec::new();
    for _ in 0..n_children {
        let edge = if rng.gen_bool(0.5) {
            EdgeKind::Child
        } else {
            EdgeKind::Descendant
        };
        let attr = AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4)));
        if predicate_vars.len() < 2 && mode > 0 {
            let p = b.predicate_child(root, edge, attr);
            predicate_vars.push(BoolExpr::Var(p.var()));
        } else {
            let c = b.backbone_child(root, edge, attr);
            b.mark_output(c);
        }
    }
    match (mode, predicate_vars.as_slice()) {
        (1, [a]) => b.set_structural(root, BoolExpr::not(a.clone())),
        (1, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), BoolExpr::not(bb.clone()))),
        (2, [a]) => b.set_structural(root, a.clone()),
        (2, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), bb.clone())),
        _ => {}
    }
    b.mark_output(root);
    b.build().expect("generated queries are valid")
}

#[test]
fn all_backends_agree_with_the_oracle_on_dags_and_cyclic_graphs() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        // Even seeds exercise guaranteed-acyclic graphs, odd seeds allow
        // cycles, so both condensation regimes are covered.
        let dag_only = seed % 2 == 0;
        let g = random_graph(&mut rng, 24, dag_only);
        let indexes: Vec<_> = BACKENDS.iter().map(|k| (k, build_index(k, &g))).collect();
        for u in g.nodes() {
            for v in g.nodes() {
                let expected = gtpq::graph::traversal::is_reachable(&g, u, v);
                for (kind, index) in &indexes {
                    assert_eq!(
                        index.reaches(u, v),
                        expected,
                        "seed {seed} ({}): backend {kind} disagrees with oracle on {u} -> {v}",
                        if dag_only { "dag" } else { "cyclic" },
                    );
                }
            }
        }
    }
}

#[test]
fn prepared_probes_agree_with_pairwise_reachability() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 20, seed % 2 == 0);
        let targets: Vec<NodeId> = g.nodes().filter(|v| v.0 % 3 == 0).collect();
        if targets.is_empty() {
            continue;
        }
        for (kind, index) in BACKENDS.iter().map(|k| (k, build_index(k, &g))) {
            let pred = index.pred_probe(&targets);
            let succ = index.succ_probe(&targets);
            for v in g.nodes() {
                let reaches_any = targets
                    .iter()
                    .any(|&t| gtpq::graph::traversal::is_reachable(&g, v, t));
                assert_eq!(
                    pred(v),
                    reaches_any,
                    "seed {seed}: {kind} pred_probe at {v}"
                );
                let reached_by_any = targets
                    .iter()
                    .any(|&t| gtpq::graph::traversal::is_reachable(&g, t, v));
                assert_eq!(
                    succ(v),
                    reached_by_any,
                    "seed {seed}: {kind} succ_probe at {v}"
                );
            }
        }
    }
}

#[test]
fn contour_queries_agree_with_pairwise_reachability() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 20, false);
        let index = ThreeHop::new(&g);
        let targets: Vec<NodeId> = g.nodes().filter(|v| v.0 % 3 == 0).collect();
        if targets.is_empty() {
            continue;
        }
        let cp = index.merge_pred_lists(&targets);
        let cs = index.merge_succ_lists(&targets);
        for v in g.nodes() {
            let reaches_any = targets
                .iter()
                .any(|&t| gtpq::graph::traversal::is_reachable(&g, v, t));
            assert_eq!(index.node_reaches_set(v, &cp), reaches_any, "seed {seed}");
            let reached_by_any = targets
                .iter()
                .any(|&t| gtpq::graph::traversal::is_reachable(&g, t, v));
            assert_eq!(
                index.set_reaches_node(&cs, v),
                reached_by_any,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn formula_transformations_preserve_equivalence() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = random_formula(&mut rng, 3);
        let nnf = to_nnf(&f);
        let simplified = simplify(&f);
        assert!(
            gtpq::logic::sat::brute_force_equivalent(&f, &nnf),
            "seed {seed}: NNF changed meaning of {f}"
        );
        assert!(
            gtpq::logic::sat::brute_force_equivalent(&f, &simplified),
            "seed {seed}: simplify changed meaning of {f}"
        );
        // CNF round-trips through clause rebuilding.
        let cnf = to_cnf(&f);
        let rebuilt = BoolExpr::and(cnf.clauses.iter().map(|clause| {
            BoolExpr::or(clause.iter().map(|lit| {
                if lit.positive {
                    BoolExpr::Var(lit.var)
                } else {
                    BoolExpr::not(BoolExpr::Var(lit.var))
                }
            }))
        }));
        assert!(
            gtpq::logic::sat::brute_force_equivalent(&f, &rebuilt),
            "seed {seed}: CNF changed meaning of {f}"
        );
        assert_eq!(
            is_satisfiable(&f),
            brute_force_satisfiable(&f),
            "seed {seed}"
        );
    }
}

/// A random attribute predicate exercising every access path of the inverted
/// index: equalities, integer ranges, `!=`, string ranges, conjunctions,
/// unknown attributes and the wildcard.
fn random_predicate(rng: &mut StdRng) -> AttrPredicate {
    let mut p = match rng.gen_range(0u8..6) {
        0 => AttrPredicate::any(),
        1 => AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4))),
        2 => {
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.gen_range(0..4usize)];
            AttrPredicate::any().and("year", op, AttrValue::int(rng.gen_range(1995..2010)))
        }
        3 => AttrPredicate::any().and("year", CmpOp::Ne, AttrValue::int(rng.gen_range(1995..2010))),
        4 => AttrPredicate::any().and(
            "label",
            [CmpOp::Ge, CmpOp::Lt][rng.gen_range(0..2usize)],
            AttrValue::str(&format!("l{}", rng.gen_range(0u8..4))),
        ),
        _ => AttrPredicate::eq("nowhere", AttrValue::int(1)),
    };
    if rng.gen_bool(0.4) {
        p = p.and("year", CmpOp::Ge, AttrValue::int(rng.gen_range(1995..2010)));
    }
    p
}

#[test]
fn index_backed_candidates_equal_the_full_scan() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        // Richer graph: labels plus an integer attribute on most nodes.
        let n = rng.gen_range(2..40usize);
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let v = b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..4)));
            if rng.gen_bool(0.8) {
                b.set_attr(v, "year", AttrValue::int(rng.gen_range(1995..2010)));
            }
        }
        let g = b.build();

        // Random queries whose nodes carry random predicates.
        let mut qb = GtpqBuilder::new(random_predicate(&mut rng));
        let root = qb.root_id();
        for _ in 0..rng.gen_range(1..4usize) {
            let c = qb.backbone_child(root, EdgeKind::Descendant, random_predicate(&mut rng));
            qb.mark_output(c);
        }
        qb.mark_output(root);
        let q = qb.build().expect("generated query is valid");

        for u in q.node_ids() {
            let selection = q.candidates_indexed(&g, u);
            assert_eq!(
                selection.nodes,
                q.candidates(&g, u),
                "seed {seed}: index/scan mismatch at {u}"
            );
            if selection.from_index {
                assert_eq!(selection.verified, 0, "seed {seed}");
            }
        }

        // And the engine-level candidate selection agrees too.
        let mut stats = EvalStats::default();
        let mat = gtpq::engine::prune::initial_candidates(&q, &g, &mut stats);
        for u in q.node_ids() {
            assert_eq!(mat[u.index()], q.candidates(&g, u), "seed {seed} at {u}");
        }
        assert!(
            stats.input_nodes <= (q.size() * g.node_count()) as u64,
            "seed {seed}: input_nodes over-counted"
        );
    }
}

#[test]
fn gtea_agrees_with_the_naive_evaluator() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 18, false);
        let q = random_query(&mut rng);
        let expected = naive::evaluate(&q, &g);
        for options in [GteaOptions::default(), GteaOptions::without_shrinking()] {
            let engine = GteaEngine::with_options(&g, options);
            let got = engine.evaluate(&q);
            assert!(
                got.same_answer(&expected),
                "seed {seed}, options {:?}: got {:?} expected {:?}",
                options,
                got.tuples,
                expected.tuples
            );
        }
    }
}

/// The tentpole equivalence property: executing *any* physical plan — the
/// planner's default, a shuffled prune order, forced full scans, the upward
/// round disabled, the seed's fixed pipeline — returns a `ResultSet`
/// identical to the default `evaluate`, under every reachability backend.
/// Plans may only change performance, never answers.
#[test]
fn planned_evaluation_is_equivalent_to_default_for_perturbed_plans() {
    use gtpq::engine::plan::AccessPath;
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 16, seed % 2 == 0);
        let q = random_query(&mut rng);
        let baseline = GteaEngine::new(&g);
        let expected = baseline.evaluate(&q);
        let plan = baseline.plan(&q);

        // Randomly shuffled prune order (repaired by the executor).
        let mut shuffled = plan.clone();
        for i in (1..shuffled.prune_down.len()).rev() {
            shuffled.prune_down.swap(i, rng.gen_range(0..=i));
        }
        // Forced full scans on every query node.
        let mut scans = plan.clone();
        for step in &mut scans.candidates {
            step.access = AccessPath::FullScan;
        }
        // The seed's fixed pipeline.
        let fixed = QueryPlan::fixed_pipeline(&q);

        for kind in BACKENDS {
            let index = build_index(kind, &g);
            let engine = GteaEngine::with_backend(&g, index, GteaOptions::default());
            for (name, perturbed) in [
                ("default", &plan),
                ("shuffled", &shuffled),
                ("full-scan", &scans),
                ("fixed", &fixed),
            ] {
                let got = engine.evaluate_planned(&q, perturbed);
                assert!(
                    got.0.same_answer(&expected),
                    "seed {seed}: plan `{name}` on backend {kind} changed the answer: \
                     got {:?} expected {:?}",
                    got.0.tuples,
                    expected.tuples
                );
            }
        }
    }
}

#[test]
fn gtea_agrees_with_naive_under_every_backend() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 16, seed % 2 == 0);
        let q = random_query(&mut rng);
        let expected = naive::evaluate(&q, &g);
        for kind in BACKENDS {
            let index = build_index(kind, &g);
            let engine = GteaEngine::with_backend(&g, index, GteaOptions::default());
            let got = engine.evaluate(&q);
            assert!(
                got.same_answer(&expected),
                "seed {seed}: backend {kind} disagrees with naive: got {:?} expected {:?}",
                got.tuples,
                expected.tuples
            );
        }
    }
}
