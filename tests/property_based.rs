//! Property-based tests over the core invariants:
//! * reachability indexes agree with the BFS oracle on arbitrary graphs,
//! * formula transformations preserve logical equivalence and DPLL agrees
//!   with brute force,
//! * GTEA agrees with the naive semantic evaluator on random graphs and
//!   random (conjunctive and logical) queries.

use gtpq::logic::transform::{simplify, to_cnf, to_nnf};
use gtpq::logic::{brute_force_satisfiable, is_satisfiable, BoolExpr};
use gtpq::prelude::*;
use gtpq::query::naive;
use gtpq::reach::{Reachability, Sspi, ThreeHop, TransitiveClosure};
use proptest::prelude::*;

/// Strategy: a random directed graph with `n` nodes labelled from a small
/// alphabet and a set of random edges (cycles allowed).
fn graph_strategy(max_nodes: usize) -> impl Strategy<Value = DataGraph> {
    (2..max_nodes).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 3));
        let labels = proptest::collection::vec(0u8..4, n);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let mut b = GraphBuilder::new();
            let nodes: Vec<NodeId> = labels
                .iter()
                .map(|&l| b.add_node_with_label(&format!("l{l}")))
                .collect();
            for (x, y) in edges {
                if x != y {
                    b.add_edge(nodes[x], nodes[y]);
                }
            }
            let _ = n;
            b.build()
        })
    })
}

/// Strategy: a random propositional formula over a handful of variables.
fn formula_strategy() -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (0u32..5).prop_map(BoolExpr::var),
        Just(BoolExpr::True),
        Just(BoolExpr::False),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(BoolExpr::not),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(BoolExpr::and),
            proptest::collection::vec(inner, 1..3).prop_map(BoolExpr::or),
        ]
    })
}

/// Strategy: a random small query over the `l0..l3` label alphabet, either
/// conjunctive or with one disjunctive / negated predicate pair at the root.
fn query_strategy() -> impl Strategy<Value = Gtpq> {
    (
        0u8..4,
        proptest::collection::vec((0u8..4, prop::bool::ANY), 1..4),
        0u8..3,
    )
        .prop_map(|(root_label, children, mode)| {
            let mut b = GtpqBuilder::new(AttrPredicate::label(&format!("l{root_label}")));
            let root = b.root_id();
            let mut predicate_vars = Vec::new();
            for (label, is_child_edge) in children {
                let edge = if is_child_edge {
                    EdgeKind::Child
                } else {
                    EdgeKind::Descendant
                };
                let attr = AttrPredicate::label(&format!("l{label}"));
                if predicate_vars.len() < 2 && mode > 0 {
                    let p = b.predicate_child(root, edge, attr);
                    predicate_vars.push(BoolExpr::Var(p.var()));
                } else {
                    let c = b.backbone_child(root, edge, attr);
                    b.mark_output(c);
                }
            }
            match (mode, predicate_vars.as_slice()) {
                (1, [a]) => b.set_structural(root, BoolExpr::not(a.clone())),
                (1, [a, bb]) => b.set_structural(
                    root,
                    BoolExpr::or2(a.clone(), BoolExpr::not(bb.clone())),
                ),
                (2, [a]) => b.set_structural(root, a.clone()),
                (2, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), bb.clone())),
                _ => {}
            }
            b.mark_output(root);
            b.build().expect("generated queries are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reachability_indexes_agree_with_the_oracle(g in graph_strategy(24)) {
        let closure = TransitiveClosure::new(&g);
        let three_hop = ThreeHop::new(&g);
        let sspi = Sspi::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let expected = gtpq::graph::traversal::is_reachable(&g, u, v);
                prop_assert_eq!(closure.reaches(u, v), expected, "closure {} -> {}", u, v);
                prop_assert_eq!(three_hop.reaches(u, v), expected, "3-hop {} -> {}", u, v);
                prop_assert_eq!(sspi.reaches(u, v), expected, "sspi {} -> {}", u, v);
            }
        }
    }

    #[test]
    fn contour_queries_agree_with_pairwise_reachability(g in graph_strategy(20)) {
        let index = ThreeHop::new(&g);
        let targets: Vec<NodeId> = g.nodes().filter(|v| v.0 % 3 == 0).collect();
        prop_assume!(!targets.is_empty());
        let cp = index.merge_pred_lists(&targets);
        let cs = index.merge_succ_lists(&targets);
        for v in g.nodes() {
            let reaches_any = targets
                .iter()
                .any(|&t| gtpq::graph::traversal::is_reachable(&g, v, t));
            prop_assert_eq!(index.node_reaches_set(v, &cp), reaches_any);
            let reached_by_any = targets
                .iter()
                .any(|&t| gtpq::graph::traversal::is_reachable(&g, t, v));
            prop_assert_eq!(index.set_reaches_node(&cs, v), reached_by_any);
        }
    }

    #[test]
    fn formula_transformations_preserve_equivalence(f in formula_strategy()) {
        let nnf = to_nnf(&f);
        let simplified = simplify(&f);
        prop_assert!(gtpq::logic::sat::brute_force_equivalent(&f, &nnf));
        prop_assert!(gtpq::logic::sat::brute_force_equivalent(&f, &simplified));
        // CNF round-trips through clause rebuilding.
        let cnf = to_cnf(&f);
        let rebuilt = BoolExpr::and(cnf.clauses.iter().map(|clause| {
            BoolExpr::or(clause.iter().map(|lit| {
                if lit.positive {
                    BoolExpr::Var(lit.var)
                } else {
                    BoolExpr::not(BoolExpr::Var(lit.var))
                }
            }))
        }));
        prop_assert!(gtpq::logic::sat::brute_force_equivalent(&f, &rebuilt));
        prop_assert_eq!(is_satisfiable(&f), brute_force_satisfiable(&f));
    }

    #[test]
    fn gtea_agrees_with_the_naive_evaluator(
        g in graph_strategy(18),
        q in query_strategy(),
    ) {
        let expected = naive::evaluate(&q, &g);
        for options in [GteaOptions::default(), GteaOptions::without_shrinking()] {
            let engine = GteaEngine::with_options(&g, options);
            let got = engine.evaluate(&q);
            prop_assert!(
                got.same_answer(&expected),
                "options {:?}: got {:?} expected {:?}",
                options,
                got.tuples,
                expected.tuples
            );
        }
    }
}
