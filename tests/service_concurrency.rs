//! Concurrency tests for the query service: answers under concurrent load
//! must be identical to single-threaded evaluation, and the cache-hit path
//! must hand out the same result set as the cold path.

use std::sync::Arc;

use gtpq::datagen::{generate_xmark, XmarkConfig};
use gtpq::datagen::{random_queries, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig};
use gtpq::prelude::*;
use gtpq::query::fixtures::{example_graph, example_query};
use gtpq::query::naive;
use gtpq::service::QueryRequest;

/// Submits one query through the request API and unwraps the rows.
fn submit_rows(service: &QueryService, q: &Gtpq) -> Arc<ResultSet> {
    service
        .submit(&QueryRequest::query(q.clone()))
        .expect("workload queries are satisfiable")
        .rows
}

/// A mixed workload over the running-example graph: the paper's example
/// query plus label point-lookups and descendant probes, some of them
/// deliberately repeated so threads race on the cache.
fn fixture_workload() -> Vec<Gtpq> {
    let mut queries = vec![example_query()];
    for label in ["a1", "b1", "c1", "d1", "e1", "f1", "g1"] {
        let mut b = GtpqBuilder::new(AttrPredicate::label(label));
        let root = b.root_id();
        b.mark_output(root);
        queries.push(b.build().unwrap());
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
        b.mark_output(child);
        queries.push(b.build().unwrap());
    }
    let repeats: Vec<Gtpq> = queries.iter().take(4).cloned().collect();
    queries.extend(repeats);
    queries
}

#[test]
fn n_threads_of_mixed_queries_match_single_threaded_naive() {
    let graph = Arc::new(example_graph());
    let service = Arc::new(QueryService::new(Arc::clone(&graph)));
    let queries = Arc::new(fixture_workload());
    let threads = 8;
    let answers: Vec<Vec<Arc<ResultSet>>> = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let service = Arc::clone(&service);
                let queries = Arc::clone(&queries);
                scope.spawn(move || {
                    // Each thread walks the workload from a different offset
                    // so different queries are in flight at the same time.
                    (0..queries.len())
                        .map(|i| submit_rows(&service, &queries[(i + t) % queries.len()]))
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    let expected: Vec<ResultSet> = queries.iter().map(|q| naive::evaluate(q, &graph)).collect();
    for (t, per_thread) in answers.iter().enumerate() {
        for (i, got) in per_thread.iter().enumerate() {
            let q = (i + t) % queries.len();
            assert!(
                got.same_answer(&expected[q]),
                "thread {t}, query {q}: concurrent answer diverged from naive"
            );
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.queries, (threads * queries.len()) as u64);
    assert!(
        metrics.cache_hits > 0,
        "repeated queries must hit the cache"
    );
}

#[test]
fn batch_over_four_threads_matches_sequential_on_xmark() {
    let graph = Arc::new(generate_xmark(&XmarkConfig::with_scale(0.05)));
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(&graph, &RandomQueryConfig::with_size(4)));
    assert!(
        queries.len() > 10,
        "workload should mix fixed and random queries"
    );

    // Sequential reference: a single-threaded, cache-less service.
    let sequential = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<Arc<ResultSet>> = queries
        .iter()
        .map(|q| submit_rows(&sequential, q))
        .collect();

    let service = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect();
    let batched = service.submit_batch(&requests);
    assert_eq!(batched.len(), expected.len());
    for ((q, got), want) in queries.iter().zip(&batched).zip(&expected) {
        let got = got.as_ref().expect("workload queries are satisfiable");
        assert!(
            got.rows.same_answer(want),
            "batched answer diverged from sequential for {q:?}"
        );
    }
    // Same batch again: answers unchanged, everything served from the cache.
    let hits_before = service.metrics().cache_hits;
    let warm = service.submit_batch(&requests);
    for (got, want) in warm.iter().zip(&expected) {
        let got = got.as_ref().expect("workload queries are satisfiable");
        assert!(got.rows.same_answer(want));
        assert!(got.from_cache);
    }
    assert!(service.metrics().cache_hits >= hits_before + queries.len() as u64);
}

#[test]
fn oversubscribed_batch_with_intra_query_parallelism_stays_exact() {
    // Contention stress: 8 batch workers, each request asking for 8 morsel
    // workers of its own — far more threads than cores.  Broad queries
    // (any-label roots with wide descendant fans) push the partitioned
    // enumerator and the parallel prune rounds hard; the assertion is the
    // strongest one available: every request returns *exactly* the rows a
    // fully serial service returns, and the batch always joins (no deadlock
    // on the partition channels, no panic in a worker).
    let graph = Arc::new(generate_xmark(&XmarkConfig::with_scale(0.15)));
    let mut queries = Vec::new();
    for label in ["item", "person", "bidder", "category"] {
        let mut b = GtpqBuilder::new(AttrPredicate::label(label));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::any());
        b.mark_output(root);
        b.mark_output(child);
        queries.push(b.build().unwrap());
    }
    // Triplicate so identical broad queries race each other too.
    let workload: Vec<Gtpq> = queries
        .iter()
        .cycle()
        .take(queries.len() * 3)
        .cloned()
        .collect();
    let build_requests = |threads: usize| -> Vec<QueryRequest> {
        workload
            .iter()
            .map(|q| {
                QueryRequest::query(q.clone())
                    .with_threads(threads)
                    .with_limit(25)
                    .with_offset(3)
            })
            .collect()
    };

    // Serial reference: one batch worker, intra-query parallelism off.
    let sequential = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 1,
            intra_query_threads: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<_> = build_requests(1)
        .iter()
        .map(|r| sequential.submit(r).expect("workload queries evaluate"))
        .collect();

    let service = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 8,
            intra_query_threads: 8,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let batched = service.submit_batch(&build_requests(8));
    assert_eq!(batched.len(), expected.len());
    for (i, (got, want)) in batched.iter().zip(&expected).enumerate() {
        let got = got.as_ref().expect("workload queries evaluate");
        assert_eq!(
            got.rows.tuples, want.rows.tuples,
            "request {i}: oversubscribed batch diverged from serial"
        );
        assert_eq!(got.truncated, want.truncated, "request {i}");
    }
}

#[test]
fn cache_hit_path_returns_the_same_result_set_as_cold() {
    let service = Arc::new(QueryService::new(Arc::new(example_graph())));
    let q = example_query();
    let cold = submit_rows(&service, &q);
    // Warm hits from many threads at once: all must be the very same set.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = Arc::clone(&service);
            let q = q.clone();
            let cold = Arc::clone(&cold);
            scope.spawn(move || {
                let warm = submit_rows(&service, &q);
                assert!(
                    Arc::ptr_eq(&warm, &cold),
                    "cache hit must return the cold result set, not a copy"
                );
            });
        }
    });
    assert_eq!(service.metrics().cache_hits, 8);
    assert_eq!(service.metrics().cache_misses, 1);
}
