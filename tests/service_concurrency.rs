//! Concurrency tests for the query service: answers under concurrent load
//! must be identical to single-threaded evaluation, and the cache-hit path
//! must hand out the same result set as the cold path.

use std::sync::Arc;

use gtpq::datagen::{generate_xmark, XmarkConfig};
use gtpq::datagen::{random_queries, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig};
use gtpq::prelude::*;
use gtpq::query::fixtures::{example_graph, example_query};
use gtpq::query::naive;
use gtpq::service::QueryRequest;

/// Submits one query through the request API and unwraps the rows.
fn submit_rows(service: &QueryService, q: &Gtpq) -> Arc<ResultSet> {
    service
        .submit(&QueryRequest::query(q.clone()))
        .expect("workload queries are satisfiable")
        .rows
}

/// A mixed workload over the running-example graph: the paper's example
/// query plus label point-lookups and descendant probes, some of them
/// deliberately repeated so threads race on the cache.
fn fixture_workload() -> Vec<Gtpq> {
    let mut queries = vec![example_query()];
    for label in ["a1", "b1", "c1", "d1", "e1", "f1", "g1"] {
        let mut b = GtpqBuilder::new(AttrPredicate::label(label));
        let root = b.root_id();
        b.mark_output(root);
        queries.push(b.build().unwrap());
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
        b.mark_output(child);
        queries.push(b.build().unwrap());
    }
    let repeats: Vec<Gtpq> = queries.iter().take(4).cloned().collect();
    queries.extend(repeats);
    queries
}

#[test]
fn n_threads_of_mixed_queries_match_single_threaded_naive() {
    let graph = Arc::new(example_graph());
    let service = Arc::new(QueryService::new(Arc::clone(&graph)));
    let queries = Arc::new(fixture_workload());
    let threads = 8;
    let answers: Vec<Vec<Arc<ResultSet>>> = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let service = Arc::clone(&service);
                let queries = Arc::clone(&queries);
                scope.spawn(move || {
                    // Each thread walks the workload from a different offset
                    // so different queries are in flight at the same time.
                    (0..queries.len())
                        .map(|i| submit_rows(&service, &queries[(i + t) % queries.len()]))
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    let expected: Vec<ResultSet> = queries.iter().map(|q| naive::evaluate(q, &graph)).collect();
    for (t, per_thread) in answers.iter().enumerate() {
        for (i, got) in per_thread.iter().enumerate() {
            let q = (i + t) % queries.len();
            assert!(
                got.same_answer(&expected[q]),
                "thread {t}, query {q}: concurrent answer diverged from naive"
            );
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.queries, (threads * queries.len()) as u64);
    assert!(
        metrics.cache_hits > 0,
        "repeated queries must hit the cache"
    );
}

#[test]
fn batch_over_four_threads_matches_sequential_on_xmark() {
    let graph = Arc::new(generate_xmark(&XmarkConfig::with_scale(0.05)));
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(&graph, &RandomQueryConfig::with_size(4)));
    assert!(
        queries.len() > 10,
        "workload should mix fixed and random queries"
    );

    // Sequential reference: a single-threaded, cache-less service.
    let sequential = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<Arc<ResultSet>> = queries
        .iter()
        .map(|q| submit_rows(&sequential, q))
        .collect();

    let service = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect();
    let batched = service.submit_batch(&requests);
    assert_eq!(batched.len(), expected.len());
    for ((q, got), want) in queries.iter().zip(&batched).zip(&expected) {
        let got = got.as_ref().expect("workload queries are satisfiable");
        assert!(
            got.rows.same_answer(want),
            "batched answer diverged from sequential for {q:?}"
        );
    }
    // Same batch again: answers unchanged, everything served from the cache.
    let hits_before = service.metrics().cache_hits;
    let warm = service.submit_batch(&requests);
    for (got, want) in warm.iter().zip(&expected) {
        let got = got.as_ref().expect("workload queries are satisfiable");
        assert!(got.rows.same_answer(want));
        assert!(got.from_cache);
    }
    assert!(service.metrics().cache_hits >= hits_before + queries.len() as u64);
}

#[test]
fn oversubscribed_batch_with_intra_query_parallelism_stays_exact() {
    // Contention stress: 8 batch workers, each request asking for 8 morsel
    // workers of its own — far more threads than cores.  Broad queries
    // (any-label roots with wide descendant fans) push the partitioned
    // enumerator and the parallel prune rounds hard; the assertion is the
    // strongest one available: every request returns *exactly* the rows a
    // fully serial service returns, and the batch always joins (no deadlock
    // on the partition channels, no panic in a worker).
    let graph = Arc::new(generate_xmark(&XmarkConfig::with_scale(0.15)));
    let mut queries = Vec::new();
    for label in ["item", "person", "bidder", "category"] {
        let mut b = GtpqBuilder::new(AttrPredicate::label(label));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::any());
        b.mark_output(root);
        b.mark_output(child);
        queries.push(b.build().unwrap());
    }
    // Triplicate so identical broad queries race each other too.
    let workload: Vec<Gtpq> = queries
        .iter()
        .cycle()
        .take(queries.len() * 3)
        .cloned()
        .collect();
    let build_requests = |threads: usize| -> Vec<QueryRequest> {
        workload
            .iter()
            .map(|q| {
                QueryRequest::query(q.clone())
                    .with_threads(threads)
                    .with_limit(25)
                    .with_offset(3)
            })
            .collect()
    };

    // Serial reference: one batch worker, intra-query parallelism off.
    let sequential = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 1,
            intra_query_threads: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<_> = build_requests(1)
        .iter()
        .map(|r| sequential.submit(r).expect("workload queries evaluate"))
        .collect();

    let service = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 8,
            intra_query_threads: 8,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let batched = service.submit_batch(&build_requests(8));
    assert_eq!(batched.len(), expected.len());
    for (i, (got, want)) in batched.iter().zip(&expected).enumerate() {
        let got = got.as_ref().expect("workload queries evaluate");
        assert_eq!(
            got.rows.tuples, want.rows.tuples,
            "request {i}: oversubscribed batch diverged from serial"
        );
        assert_eq!(got.truncated, want.truncated, "request {i}");
    }
}

#[test]
fn one_writer_eight_readers_never_see_torn_or_stale_answers() {
    // A live service over `a0 → {b1, b2, b3}`; the writer commits EPOCHS
    // epochs, each appending one more `b` child of `a0`.  That makes the
    // oracle *per epoch* deterministic: at epoch `e` the query `a { //b* }`
    // has exactly `3 + e` rows.  Eight readers hammer `submit_batch` the
    // whole time; every outcome must be internally consistent — the row
    // count must match the generation the outcome claims to have answered
    // for (`EvalStats::graph_epoch`).  A torn read (rows from one epoch,
    // index or cache entry from another) or a stale cache hit served across
    // a commit breaks that equation.
    use gtpq::graph::GraphHandle;

    const EPOCHS: u64 = 24;
    const READERS: usize = 8;
    const ROUNDS: usize = 30;

    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    for _ in 0..3 {
        let v = b.add_node_with_label("b");
        b.add_edge(a, v);
    }
    let handle = Arc::new(GraphHandle::new(b.build()));
    let service = Arc::new(QueryService::live(Arc::clone(&handle)));

    std::thread::scope(|scope| {
        let writer = {
            let handle = Arc::clone(&handle);
            scope.spawn(move || {
                for _ in 0..EPOCHS {
                    let v = handle.insert_node_with_label("b");
                    handle.insert_edge(NodeId(0), v);
                    handle.commit();
                }
            })
        };
        for reader in 0..READERS {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let full = QueryRequest::text("a { //b* }").with_stats();
                let limited = QueryRequest::text("a { //b* }").with_limit(2).with_stats();
                let mut last_epoch = 0u64;
                let mut last_gauge = 0u64;
                for round in 0..ROUNDS {
                    let outcomes = service.submit_batch(&[full.clone(), limited.clone()]);
                    let full_out = outcomes[0].as_ref().expect("query evaluates");
                    let e = full_out.stats.as_ref().unwrap().graph_epoch;
                    assert!(e <= EPOCHS, "reader {reader}: impossible epoch {e}");
                    assert_eq!(
                        full_out.rows.len() as u64,
                        3 + e,
                        "reader {reader} round {round}: rows disagree with the \
                         epoch the outcome claims (torn read or stale cache hit)"
                    );
                    // Epochs a single reader observes never move backwards.
                    assert!(
                        e >= last_epoch,
                        "reader {reader} round {round}: epoch went backwards"
                    );
                    last_epoch = e;

                    let limited_out = outcomes[1].as_ref().expect("query evaluates");
                    assert_eq!(limited_out.rows.len(), 2);
                    assert!(limited_out.stats.as_ref().unwrap().graph_epoch >= e);

                    // The exported gauge is monotone under the writer too.
                    let gauge = service.metrics().graph_epoch;
                    assert!(gauge >= last_gauge, "reader {reader}: gauge regressed");
                    last_gauge = gauge;
                }
            });
        }
        writer.join().expect("writer panicked");
    });

    // Quiesced: a final submit answers for the last epoch with all rows.
    let settled = service
        .submit(&QueryRequest::text("a { //b* }").with_stats())
        .unwrap();
    assert_eq!(settled.stats.as_ref().unwrap().graph_epoch, EPOCHS);
    assert_eq!(settled.rows.len() as u64, 3 + EPOCHS);
    let metrics = service.metrics();
    assert_eq!(metrics.graph_epoch, EPOCHS);
    assert!(metrics.epoch_rotations >= 1 && metrics.epoch_rotations <= EPOCHS);
}

#[test]
fn cache_hit_path_returns_the_same_result_set_as_cold() {
    let service = Arc::new(QueryService::new(Arc::new(example_graph())));
    let q = example_query();
    let cold = submit_rows(&service, &q);
    // Warm hits from many threads at once: all must be the very same set.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = Arc::clone(&service);
            let q = q.clone();
            let cold = Arc::clone(&cold);
            scope.spawn(move || {
                let warm = submit_rows(&service, &q);
                assert!(
                    Arc::ptr_eq(&warm, &cold),
                    "cache hit must return the cold result set, not a copy"
                );
            });
        }
    });
    assert_eq!(service.metrics().cache_hits, 8);
    assert_eq!(service.metrics().cache_misses, 1);
}
