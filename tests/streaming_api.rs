//! Property tests for the request/outcome API and its streaming executor:
//!
//! * `submit` with `limit = k, offset = j` returns **exactly** rows
//!   `j..j + k` of the materialized `ResultSet` order — the streaming
//!   enumerator must produce rows in sorted order, or early termination
//!   would return the wrong window,
//! * an unlimited `submit` equals the engine's `evaluate` bit-for-bit,
//! * both hold under every reachability backend, on random DAGs and random
//!   cyclic graphs, and on both the engine-pushdown path (cache disabled)
//!   and the cache-slicing path (pre-warmed cache),
//! * limit pushdown provably bounds enumeration work
//!   (`EvalStats::enumerated_rows ≤ offset + limit + 1`).
//!
//! Same harness as `property_based.rs`: a deterministic seed sweep over the
//! vendored PRNG; every failure message carries the seed.

use std::sync::Arc;

use gtpq::prelude::*;
use gtpq::query::naive;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

const BACKENDS: [BackendKind; 5] = [
    BackendKind::Closure,
    BackendKind::ThreeHop,
    BackendKind::Chain,
    BackendKind::Contour,
    BackendKind::Sspi,
];

/// A random directed graph: `n` nodes labelled from a 4-letter alphabet and
/// up to `3n` random edges; even seeds are DAG-only.
fn random_graph(rng: &mut StdRng, max_nodes: usize, dag_only: bool) -> DataGraph {
    let n = rng.gen_range(3..max_nodes);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..4))))
        .collect();
    for _ in 0..rng.gen_range(0..n * 3) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (x, y) = if dag_only && x > y { (y, x) } else { (x, y) };
        b.add_edge(nodes[x], nodes[y]);
    }
    b.build()
}

/// A random small query with one or two output nodes, optionally with a
/// disjunctive or negated structural predicate at the root.
fn random_query(rng: &mut StdRng) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4))));
    let root = b.root_id();
    let mode = rng.gen_range(0u8..3);
    let mut predicate_vars = Vec::new();
    for _ in 0..rng.gen_range(1..4usize) {
        let edge = if rng.gen_bool(0.5) {
            EdgeKind::Child
        } else {
            EdgeKind::Descendant
        };
        let attr = AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4)));
        if predicate_vars.len() < 2 && mode > 0 {
            let p = b.predicate_child(root, edge, attr);
            predicate_vars.push(BoolExpr::Var(p.var()));
        } else {
            let c = b.backbone_child(root, edge, attr);
            b.mark_output(c);
        }
    }
    match (mode, predicate_vars.as_slice()) {
        (1, [a]) => b.set_structural(root, BoolExpr::not(a.clone())),
        (1, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), BoolExpr::not(bb.clone()))),
        (2, [a]) => b.set_structural(root, a.clone()),
        (2, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), bb.clone())),
        _ => {}
    }
    b.mark_output(root);
    b.build().expect("generated queries are valid")
}

/// The window cases exercised per (graph, query, backend): `(offset, limit)`.
fn window_cases(total: usize) -> Vec<(usize, usize)> {
    vec![
        (0, 0),
        (0, 1),
        (0, total),
        (1, 2),
        (total / 2, 3),
        (total, 1),
        (2, total + 5),
    ]
}

fn check_windows(
    service: &QueryService,
    q: &Gtpq,
    all: &[Vec<NodeId>],
    seed: u64,
    kind: BackendKind,
    path: &str,
) {
    for (offset, limit) in window_cases(all.len()) {
        let outcome = service
            .submit(
                &QueryRequest::query(q.clone())
                    .with_limit(limit)
                    .with_offset(offset)
                    .with_stats(),
            )
            .expect("windowed submit cannot fail");
        let got: Vec<Vec<NodeId>> = outcome.rows.iter().cloned().collect();
        let expected: Vec<Vec<NodeId>> = all.iter().skip(offset).take(limit).cloned().collect();
        assert_eq!(
            got,
            expected,
            "seed {seed}, backend {}, {path}: window ({offset}, {limit}) diverged",
            kind.as_str()
        );
        let more_exist = offset.saturating_add(limit) < all.len();
        assert_eq!(
            outcome.truncated,
            more_exist,
            "seed {seed}, backend {}, {path}: truncation flag wrong for ({offset}, {limit})",
            kind.as_str()
        );
        // Pushdown bound: the enumerator never pulls more than the window
        // plus its look-ahead row (engine path only; cache hits report no
        // stats).
        if !outcome.from_cache {
            let stats = outcome.stats.expect("requested stats");
            assert!(
                stats.enumerated_rows <= (offset + limit + 1) as u64,
                "seed {seed}, backend {}: enumerated {} rows for window ({offset}, {limit})",
                kind.as_str(),
                stats.enumerated_rows
            );
        }
    }
}

#[test]
fn submit_windows_match_materialized_order_under_every_backend() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = Arc::new(random_graph(&mut rng, 20, seed % 2 == 0));
        let q = random_query(&mut rng);
        let oracle = naive::evaluate(&q, &graph);
        for kind in BACKENDS {
            // Reference: the engine's unlimited evaluation on this backend.
            let engine =
                GteaEngine::with_backend(&graph, kind.build_shared(&graph), GteaOptions::default());
            let reference = engine.evaluate(&q);
            assert!(
                reference.same_answer(&oracle),
                "seed {seed}, backend {}: engine diverged from naive",
                kind.as_str()
            );
            let all: Vec<Vec<NodeId>> = reference.iter().cloned().collect();

            // Engine-pushdown path: no result cache, windows stream out of
            // the executor.
            let pushdown = QueryService::with_config(
                Arc::clone(&graph),
                ServiceConfig {
                    backend: Some(kind),
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                },
            );
            let unlimited = pushdown
                .submit(&QueryRequest::query(q.clone()))
                .expect("unlimited submit cannot fail");
            assert_eq!(
                *unlimited.rows,
                reference,
                "seed {seed}, backend {}: unlimited submit must equal evaluate bit-for-bit",
                kind.as_str()
            );
            assert!(!unlimited.truncated);
            check_windows(&pushdown, &q, &all, seed, kind, "pushdown");

            // Cache-slicing path: a pre-warmed complete answer serves every
            // window by slicing.
            let cached = QueryService::with_config(
                Arc::clone(&graph),
                ServiceConfig {
                    backend: Some(kind),
                    ..ServiceConfig::default()
                },
            );
            let warm = cached
                .submit(&QueryRequest::query(q.clone()))
                .expect("warm-up submit cannot fail");
            assert_eq!(*warm.rows, reference);
            check_windows(&cached, &q, &all, seed, kind, "cache-slice");
        }
    }
}
