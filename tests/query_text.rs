//! End-to-end tests of the textual query language:
//!
//! * every ` ```gtpq ` block in `docs/QUERY_LANGUAGE.md` parses, and blocks
//!   tagged `# dataset: <name>` evaluate non-emptily on that generated
//!   dataset — the reference doc cannot rot,
//! * the `parse(display(q)) == q` round-trip property over random
//!   generated queries,
//! * parser failure modes assert exact error spans,
//! * `QueryService::evaluate_text` agrees with builder-constructed
//!   evaluation.

use std::sync::Arc;

use gtpq::datagen::{
    generate_arxiv, generate_dblp, generate_embed, generate_xmark, ArxivConfig, EmbedConfig,
    XmarkConfig,
};
use gtpq::prelude::*;
use gtpq_datagen::random_text_query;

const QUERY_LANGUAGE_MD: &str = include_str!("../docs/QUERY_LANGUAGE.md");

/// Extracts the ` ```gtpq ` fenced blocks of the language reference.
fn doc_blocks() -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in QUERY_LANGUAGE_MD.lines() {
        match &mut current {
            None if line.trim() == "```gtpq" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim() == "```" {
                    blocks.push(current.take().expect("inside a block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```gtpq block in the doc");
    blocks
}

fn dataset_of(block: &str) -> Option<&'static str> {
    let tag = block
        .lines()
        .find_map(|l| l.trim().strip_prefix("# dataset:").map(str::trim))?;
    Some(match tag {
        "dblp" => "dblp",
        "arxiv" => "arxiv",
        "xmark" => "xmark",
        "embed" => "embed",
        other => panic!("unknown dataset tag `{other}` in the doc"),
    })
}

#[test]
fn every_doc_example_parses() {
    let blocks = doc_blocks();
    assert!(
        blocks.len() >= 4,
        "the language reference should carry several gtpq examples"
    );
    for block in &blocks {
        block
            .parse::<Gtpq>()
            .unwrap_or_else(|e| panic!("doc example failed to parse:\n{}", e.render(block)));
    }
}

#[test]
fn doc_dataset_examples_evaluate_nonempty() {
    let blocks = doc_blocks();
    let tagged: Vec<(&'static str, &String)> = blocks
        .iter()
        .filter_map(|b| dataset_of(b).map(|d| (d, b)))
        .collect();
    let names: Vec<&str> = tagged.iter().map(|(d, _)| *d).collect();
    for expected in ["dblp", "arxiv", "xmark", "embed"] {
        assert!(
            names.contains(&expected),
            "the doc needs a worked {expected} example (found {names:?})"
        );
    }
    for (dataset, block) in tagged {
        let graph = Arc::new(match dataset {
            "dblp" => generate_dblp(240, 42),
            "arxiv" => generate_arxiv(&ArxivConfig::small()),
            "xmark" => generate_xmark(&XmarkConfig::with_scale(0.1)),
            "embed" => generate_embed(&EmbedConfig::small()),
            _ => unreachable!(),
        });
        let service = QueryService::new(graph);
        let results = match service.submit(&QueryRequest::text(block)) {
            Ok(outcome) => outcome.rows,
            Err(gtpq::service::QueryError::Parse(e)) => {
                panic!("{dataset} example failed:\n{}", e.render(block))
            }
            Err(e) => panic!("{dataset} example failed: {e}"),
        };
        assert!(
            !results.is_empty(),
            "{dataset} doc example returns no rows:\n{block}"
        );
    }
}

#[test]
fn parse_display_round_trips_over_random_queries() {
    for seed in 0..300u64 {
        let max_nodes = 2 + (seed % 14) as usize;
        let q = random_text_query(seed, max_nodes);
        let text = q.to_string();
        let reparsed: Gtpq = text
            .parse()
            .unwrap_or_else(|e: ParseError| panic!("seed {seed}: `{text}`:\n{}", e.render(&text)));
        assert_eq!(reparsed, q, "seed {seed}: `{text}`");
        // The pretty printer speaks the same language.
        let pretty = q.to_pretty_string();
        assert_eq!(
            pretty.parse::<Gtpq>().expect("pretty form parses"),
            q,
            "seed {seed} (pretty): `{pretty}`"
        );
    }
}

#[test]
fn parser_failure_modes_carry_spans() {
    // (input, expected message fragment, expected span start..end)
    let cases: &[(&str, &str, (usize, usize))] = &[
        ("a* { where (//b }", "unbalanced `(`", (11, 12)),
        ("a* { //b", "unbalanced `{`", (3, 4)),
        ("a* { ///b }", "expected a node pattern", (7, 8)),
        ("[price = 1.5]*", "floating-point", (9, 12)),
        ("[price @ 3]*", "unexpected character `@`", (7, 8)),
        (
            "a* { where missing }",
            "unknown predicate-child name",
            (11, 18),
        ),
        ("a { //b }", "no output node", (0, 9)),
        ("a* { where //b* }", "cannot be an output node", (14, 15)),
        (
            "a* { where //b { /c } }",
            "cannot have backbone children",
            (17, 18),
        ),
        ("a* extra", "trailing input", (3, 8)),
        ("where*", "reserved word", (0, 5)),
        (r#"a* { /"unterminated }"#, "unterminated string", (6, 21)),
    ];
    for &(input, fragment, (start, end)) in cases {
        let err = input.parse::<Gtpq>().expect_err(input);
        assert!(
            err.message.contains(fragment),
            "`{input}`: message `{}` missing `{fragment}`",
            err.message
        );
        assert_eq!(
            (err.span.start, err.span.end),
            (start, end),
            "`{input}`: wrong span for `{}`",
            err.message
        );
    }
}

#[test]
fn evaluate_text_agrees_with_the_builder_everywhere() {
    let graph = Arc::new(generate_dblp(160, 7));
    let service = QueryService::new(Arc::clone(&graph));

    // Disjunction + negation, built both ways.
    let text = "inproceedings* {
        where ((/[label = author, value = Carol]) | (/[label = author, value = Dave]))
            & !(/[label = author, value = Erin])
    }";
    let mut b = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
    let root = b.root_id();
    let carol = b.predicate_child(
        root,
        EdgeKind::Child,
        AttrPredicate::label("author").and("value", CmpOp::Eq, "Carol".into()),
    );
    let dave = b.predicate_child(
        root,
        EdgeKind::Child,
        AttrPredicate::label("author").and("value", CmpOp::Eq, "Dave".into()),
    );
    let erin = b.predicate_child(
        root,
        EdgeKind::Child,
        AttrPredicate::label("author").and("value", CmpOp::Eq, "Erin".into()),
    );
    b.set_structural(
        root,
        BoolExpr::and2(
            BoolExpr::or2(BoolExpr::Var(carol.var()), BoolExpr::Var(dave.var())),
            BoolExpr::not(BoolExpr::Var(erin.var())),
        ),
    );
    b.mark_output(root);
    let built = b.build().unwrap();

    let from_text = service.submit(&QueryRequest::text(text)).unwrap().rows;
    let from_builder = service
        .submit(&QueryRequest::query(built.clone()))
        .unwrap()
        .rows;
    assert_eq!(from_text.output, from_builder.output);
    assert_eq!(from_text.tuples, from_builder.tuples);
    assert!(!from_text.is_empty());
    // Identical structure ⇒ the builder query was a cache hit.
    assert_eq!(service.metrics().cache_hits, 1);

    // And both agree with the naive semantic oracle.
    let expected = gtpq_query::naive::evaluate(&built, &graph);
    assert!(from_text.same_answer(&expected));
}
