//! Rebuild-oracle tests for the live-graph mutation path.
//!
//! The mutation path maintains the CSR adjacency, the attribute inverted
//! index and the SCC condensation *incrementally* across commits; these
//! tests prove the maintained structures are **bit-identical** to a
//! from-scratch rebuild after every single epoch, over a deterministic seed
//! sweep of random update streams (the vendored PRNG — every failure
//! message carries the seed).
//!
//! Two oracle flavours:
//!
//! * **ops-from-empty** — the handle starts from an empty graph and replays
//!   a generated op stream; the oracle is a fresh `GraphBuilder` replaying
//!   the same ops.  Because symbols are interned in first-appearance order
//!   on both sides, `==` on `DataGraph` (and on a freshly condensed
//!   `Condensation`) is exact bit-identity.
//! * **generator base** — the handle starts from a small XMark-like graph;
//!   after each commit the maintained condensation must equal
//!   `Condensation::new` of the committed graph, and all five reachability
//!   backends must answer queries exactly like the naive semantic
//!   evaluator on that graph.
//!
//! The sweep varies `MutationConfig` so both the incremental fast paths
//! (sorted-run merges, topological condensation insertion) and the
//! threshold-triggered full rebuilds are exercised — asserted at the end
//! via the aggregate `MutationStats`.

use gtpq::datagen::{
    apply_ops, apply_ops_to_builder, generate_xmark, update_stream, xmark_q1, UpdateStreamConfig,
    XmarkConfig,
};
use gtpq::graph::{Condensation, GraphHandle, MutationConfig, MutationStats};
use gtpq::prelude::*;
use gtpq::query::naive;
use gtpq::reach::build_index;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BACKENDS: [&str; 5] = ["closure", "3hop", "chain", "contour", "sspi"];

/// Per-seed mutation config: sweep the rebuild threshold through
/// always-rebuild (0.0), the default, and never-rebuild (huge), and turn
/// auto-commit on for a quarter of the seeds so epoch boundaries move.
fn mutation_config(seed: u64) -> MutationConfig {
    MutationConfig {
        auto_commit_ops: (seed % 4 == 3).then_some(11),
        full_rebuild_ratio: match seed % 3 {
            0 => 0.0,
            1 => 1e9,
            _ => 0.25,
        },
    }
}

/// A random small query over the update stream's fallback `a..d` label
/// palette — same shape as the property-based suite's generator.
fn random_query(rng: &mut StdRng) -> Gtpq {
    const LABELS: [&str; 4] = ["a", "b", "c", "d"];
    let n_children = rng.gen_range(1..4usize);
    let mode = rng.gen_range(0u8..3);
    let mut b = GtpqBuilder::new(AttrPredicate::label(LABELS[rng.gen_range(0..4usize)]));
    let root = b.root_id();
    let mut predicate_vars = Vec::new();
    for _ in 0..n_children {
        let edge = if rng.gen_bool(0.5) {
            EdgeKind::Child
        } else {
            EdgeKind::Descendant
        };
        let attr = AttrPredicate::label(LABELS[rng.gen_range(0..4usize)]);
        if predicate_vars.len() < 2 && mode > 0 {
            let p = b.predicate_child(root, edge, attr);
            predicate_vars.push(BoolExpr::Var(p.var()));
        } else {
            let c = b.backbone_child(root, edge, attr);
            b.mark_output(c);
        }
    }
    match (mode, predicate_vars.as_slice()) {
        (1, [a]) => b.set_structural(root, BoolExpr::not(a.clone())),
        (1, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), BoolExpr::not(bb.clone()))),
        (2, [a]) => b.set_structural(root, a.clone()),
        (2, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), bb.clone())),
        _ => {}
    }
    b.mark_output(root);
    b.build().expect("generated queries are valid")
}

/// Every backend's answer on the committed snapshot must match the naive
/// evaluator run against the oracle graph.
fn assert_backends_match_naive(ctx: &str, g: &DataGraph, oracle_graph: &DataGraph, q: &Gtpq) {
    let expected = naive::evaluate(q, oracle_graph);
    for kind in BACKENDS {
        let index = build_index(kind, g);
        let engine = GteaEngine::with_backend(g, index, GteaOptions::default());
        let got = engine.evaluate(q);
        assert!(
            got.same_answer(&expected),
            "{ctx}: backend {kind} diverged from the rebuild oracle: got {:?} expected {:?}",
            got.tuples,
            expected.tuples
        );
    }
}

#[test]
fn incremental_maintenance_is_bit_identical_to_rebuild() {
    let mut totals = MutationStats::default();
    for seed in 0..16u64 {
        let stream_cfg = UpdateStreamConfig {
            seed,
            epochs: 5,
            ops_per_epoch: 30,
            backward_edge_fraction: if seed % 3 == 0 { 0.5 } else { 0.05 },
            ..UpdateStreamConfig::default()
        };
        let empty = GraphBuilder::new().build();
        let stream = update_stream(&empty, &stream_cfg);

        let handle = GraphHandle::with_config(GraphBuilder::new().build(), mutation_config(seed));
        let mut all_ops = Vec::new();
        for (i, epoch) in stream.iter().enumerate() {
            apply_ops(&handle, epoch);
            all_ops.extend(epoch.iter().cloned());
            handle.commit();
            let snap = handle.snapshot();

            // From-scratch oracle: a fresh builder replaying every op so far.
            let mut oracle = GraphBuilder::new();
            apply_ops_to_builder(&mut oracle, &all_ops);
            let rebuilt = oracle.build();

            assert_eq!(
                **snap.graph(),
                rebuilt,
                "seed {seed} epoch {i}: maintained graph != from-scratch rebuild"
            );
            assert_eq!(
                **snap.condensation(),
                Condensation::new(&rebuilt),
                "seed {seed} epoch {i}: maintained condensation != from-scratch condensation"
            );
        }
        let stats = handle.stats();
        totals.epochs += stats.epochs;
        totals.csr_merges += stats.csr_merges;
        totals.csr_rebuilds += stats.csr_rebuilds;
        totals.index_merges += stats.index_merges;
        totals.index_rebuilds += stats.index_rebuilds;
        totals.condensation_fast += stats.condensation_fast;
        totals.condensation_rebuilds += stats.condensation_rebuilds;
    }
    // The config sweep must have pushed commits down BOTH maintenance paths
    // of every structure — otherwise the oracle proved only half the code.
    assert!(
        totals.csr_merges > 0,
        "no commit took the CSR merge fast path"
    );
    assert!(totals.csr_rebuilds > 0, "no commit re-sorted the full CSR");
    assert!(
        totals.index_merges > 0,
        "no commit merged the inverted index"
    );
    assert!(
        totals.index_rebuilds > 0,
        "no commit rebuilt the inverted index"
    );
    assert!(
        totals.condensation_fast > 0,
        "no commit took the topological condensation fast path"
    );
    assert!(
        totals.condensation_rebuilds > 0,
        "no commit re-ran Tarjan on a backward edge"
    );
}

#[test]
fn all_backends_answer_like_the_rebuild_oracle_after_every_epoch() {
    for seed in 0..4u64 {
        let stream_cfg = UpdateStreamConfig {
            seed: 100 + seed,
            epochs: 4,
            ops_per_epoch: 25,
            backward_edge_fraction: 0.3,
            ..UpdateStreamConfig::default()
        };
        let empty = GraphBuilder::new().build();
        let stream = update_stream(&empty, &stream_cfg);

        let handle = GraphHandle::with_config(GraphBuilder::new().build(), mutation_config(seed));
        let mut all_ops = Vec::new();
        let mut qrng = StdRng::seed_from_u64(seed);
        for (i, epoch) in stream.iter().enumerate() {
            apply_ops(&handle, epoch);
            all_ops.extend(epoch.iter().cloned());
            handle.commit();
            let snap = handle.snapshot();

            let mut oracle = GraphBuilder::new();
            apply_ops_to_builder(&mut oracle, &all_ops);
            let rebuilt = oracle.build();

            for _ in 0..3 {
                let q = random_query(&mut qrng);
                assert_backends_match_naive(
                    &format!("seed {seed} epoch {i}"),
                    snap.graph(),
                    &rebuilt,
                    &q,
                );
            }
        }
    }
}

#[test]
fn generator_base_graphs_stay_consistent_under_mutation() {
    for seed in 0..4u64 {
        let base = generate_xmark(&XmarkConfig {
            scale: 0.01,
            seed: 7 + seed,
            label_groups: 4,
        });
        let stream_cfg = UpdateStreamConfig {
            seed: 200 + seed,
            epochs: 3,
            ops_per_epoch: 40,
            backward_edge_fraction: 0.25,
            ..UpdateStreamConfig::default()
        };
        let stream = update_stream(&base, &stream_cfg);

        let handle = GraphHandle::with_config(base, mutation_config(seed));
        for (i, epoch) in stream.iter().enumerate() {
            apply_ops(&handle, epoch);
            handle.commit();
            let snap = handle.snapshot();

            // On a generator base the ops-from-empty oracle does not apply;
            // a fresh condensation of the committed graph is still an exact
            // from-scratch rebuild of the maintained structure.
            assert_eq!(
                **snap.condensation(),
                Condensation::new(snap.graph()),
                "seed {seed} epoch {i}: maintained condensation != fresh condensation"
            );

            let q = xmark_q1((seed % 4) as u32);
            assert_backends_match_naive(
                &format!("xmark seed {seed} epoch {i}"),
                snap.graph(),
                snap.graph(),
                &q,
            );
        }
        // Auto-commit (some seeds) splits stream epochs into several commits.
        assert!(handle.stats().epochs as usize >= stream.len());
    }
}
