//! Integration suite for the `.gtpq` binary snapshot format
//! (`gtpq::graph::snap`):
//!
//! * **round-trip fidelity** — a deterministic seed sweep builds random
//!   attributed graphs (labels, integer attributes, free-text attributes,
//!   cycles on odd seeds), saves them, and reloads through every
//!   [`LoadMode`]; the loaded graph must compare equal field-for-field,
//!   the stored condensation must equal a fresh Tarjan run, and full query
//!   evaluation must return identical answers under all five reachability
//!   backends,
//! * **copy-on-write commits** — mutating a graph served from a mapped
//!   snapshot must never write through to the file, and pinned mapped
//!   snapshots must keep reading the old epoch,
//! * **corruption robustness** — systematic single-byte flips and
//!   truncations must surface as typed [`SnapshotError`]s (or load a graph
//!   identical to the original when the flip only touched padding), never
//!   as a panic or garbage data.

use std::path::PathBuf;
use std::sync::Arc;

use gtpq::graph::condensation::CompId;
use gtpq::graph::{Condensation, GraphHandle, GraphSnapshot, LoadMode, MutationConfig, LABEL_ATTR};
use gtpq::prelude::*;
use gtpq::query::{AttrPredicate, EdgeKind, Gtpq, GtpqBuilder};
use gtpq::reach::build_index;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 24;

const BACKENDS: [&str; 5] = ["closure", "3hop", "chain", "contour", "sspi"];

/// A unique temp path per test-and-seed so parallel test binaries never
/// collide; removed at the end of each case.
fn temp_snapshot(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gtpq-snap-{tag}-{}-{seed}.gtpq",
        std::process::id()
    ))
}

/// A random attributed graph exercising every serialized surface: labels
/// from a 4-letter alphabet, an integer attribute on most nodes (negative
/// values included, so the `i64` payload encoding is covered), a free-text
/// attribute on some, an embedding-vector attribute on some (so the v2
/// vector dictionary and the similarity catalog's pivot tables serialize
/// non-trivially), and random edges (restricted to a DAG on request).
fn random_graph(rng: &mut StdRng, max_nodes: usize, dag_only: bool) -> DataGraph {
    let n = rng.gen_range(2..max_nodes);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..4))))
        .collect();
    for &v in &nodes {
        if rng.gen_bool(0.8) {
            b.set_attr(v, "year", AttrValue::int(rng.gen_range(-3i64..2010)));
        }
        if rng.gen_bool(0.3) {
            b.set_attr(
                v,
                "note",
                AttrValue::str(&format!("t{}", rng.gen_range(0u8..6))),
            );
        }
        if rng.gen_bool(0.4) {
            let dim = rng.gen_range(2usize..5);
            let emb: Vec<f32> = (0..dim)
                .map(|_| (rng.gen::<f64>() * 4.0 - 2.0) as f32)
                .collect();
            b.set_attr(v, "emb", AttrValue::Vec(emb));
        }
    }
    for _ in 0..rng.gen_range(0..n * 3) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (x, y) = if dag_only && x > y { (y, x) } else { (x, y) };
        b.add_edge(nodes[x], nodes[y]);
    }
    b.build()
}

/// A fixed two-pattern query battery touching label equality, descendant
/// edges and integer range predicates.
fn query_battery() -> Vec<Gtpq> {
    let mut queries = Vec::new();
    for root in ["l0", "l1"] {
        let mut b = GtpqBuilder::new(AttrPredicate::label(root));
        let r = b.root_id();
        let c = b.backbone_child(r, EdgeKind::Descendant, AttrPredicate::label("l2"));
        b.mark_output(r);
        b.mark_output(c);
        queries.push(b.build().expect("battery query is valid"));
    }
    let mut b = GtpqBuilder::new(AttrPredicate::any().and("year", CmpOp::Ge, AttrValue::int(1000)));
    let r = b.root_id();
    let c = b.backbone_child(r, EdgeKind::Child, AttrPredicate::any());
    b.mark_output(r);
    b.mark_output(c);
    queries.push(b.build().expect("battery query is valid"));
    queries
}

#[test]
fn saved_graphs_reload_bit_identically_through_every_mode() {
    let queries = query_battery();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 28, seed % 2 == 0);
        let handle = GraphHandle::new(g.clone());
        let snap = handle.snapshot();
        let path = temp_snapshot("roundtrip", seed);
        snap.save(&path).expect("save succeeds");

        for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
            let loaded = GraphSnapshot::open(&path, mode).expect("load succeeds");
            assert_eq!(
                *loaded.graph().as_ref(),
                g,
                "seed {seed}, mode {mode:?}: loaded graph differs"
            );
            assert_eq!(
                *loaded.condensation().as_ref(),
                Condensation::new(&g),
                "seed {seed}, mode {mode:?}: stored condensation differs from Tarjan"
            );
            assert_eq!(loaded.epoch(), snap.epoch(), "seed {seed}, mode {mode:?}");

            for (qi, q) in queries.iter().enumerate() {
                for kind in BACKENDS {
                    let want =
                        GteaEngine::with_backend(&g, build_index(kind, &g), GteaOptions::default())
                            .evaluate(q);
                    let lg = loaded.graph().as_ref();
                    let got =
                        GteaEngine::with_backend(lg, build_index(kind, lg), GteaOptions::default())
                            .evaluate(q);
                    assert!(
                        got.same_answer(&want),
                        "seed {seed}, mode {mode:?}, query {qi}, backend {kind}: \
                         answers diverge after reload"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mutating_a_mapped_graph_never_touches_the_file() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 24, seed % 2 == 0);
        let path = temp_snapshot("cow", seed);
        GraphHandle::new(g.clone()).snapshot().save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let mapped = GraphSnapshot::open_mmap(&path).unwrap();
        let handle = GraphHandle::from_snapshot(mapped, MutationConfig::default());
        let pinned = handle.snapshot();
        let base_nodes = pinned.graph().node_count();

        // Mutate through every op kind, enough rounds to force several
        // commits on top of the mapped base.
        let mut last = NodeId(0);
        for round in 0..3 {
            let v = handle.insert_node_with_label(&format!("new{round}"));
            handle.set_attr(v, "year", AttrValue::int(3000 + round));
            handle.set_attr(last, "note", AttrValue::str("rewritten"));
            handle.insert_edge(last, v);
            handle.commit();
            last = v;
        }

        // The file on disk is byte-for-byte what the writer produced.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            pristine,
            "seed {seed}: commit wrote through to the snapshot file"
        );
        // The pinned mapped snapshot still reads the old epoch.
        assert_eq!(pinned.graph().node_count(), base_nodes, "seed {seed}");
        assert_eq!(*pinned.graph().as_ref(), g, "seed {seed}");
        // The new epoch carries the mutations.
        let fresh = handle.snapshot();
        assert_eq!(fresh.graph().node_count(), base_nodes + 3, "seed {seed}");
        // And a re-open of the untouched file round-trips the original.
        let reopened = GraphSnapshot::open_heap(&path).unwrap();
        assert_eq!(*reopened.graph().as_ref(), g, "seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mapped_snapshots_serve_queries_while_the_handle_advances() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = random_graph(&mut rng, 20, false);
    let path = temp_snapshot("serve", 7);
    GraphHandle::new(g.clone()).snapshot().save(&path).unwrap();

    let handle = Arc::new(GraphHandle::from_snapshot(
        GraphSnapshot::open_mmap(&path).unwrap(),
        MutationConfig::default(),
    ));
    let q = &query_battery()[0];
    let pinned = handle.snapshot();
    let before = GteaEngine::new(pinned.graph().as_ref()).evaluate(q);
    let root = handle.insert_node_with_label("l0");
    let child = handle.insert_node_with_label("l2");
    handle.insert_edge(root, child);
    handle.commit();
    let advanced = handle.snapshot();
    let after = GteaEngine::new(advanced.graph().as_ref()).evaluate(q);
    assert_eq!(after.tuples.len(), before.tuples.len() + 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checked_in_v1_fixture_opens_in_every_load_mode() {
    // `tests/fixtures/v1-tiny.gtpq` is a genuine version-1 file (written
    // before the vector dictionary and the similarity catalog existed).
    // Forward compatibility is a promise, not a hope: every load mode must
    // keep opening it, with no vectors and an empty sim catalog.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1-tiny.gtpq");
    let bytes = std::fs::read(path).expect("fixture is checked in");
    assert_eq!(&bytes[..8], b"GTPQSNAP");
    assert_eq!(
        bytes[8], 1,
        "the fixture must stay a version-1 file; regenerate deliberately, \
         never by re-saving (that would silently upgrade it to v2)"
    );

    for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
        let snap = GraphSnapshot::open(path, mode)
            .unwrap_or_else(|e| panic!("v1 fixture fails to open in {mode:?}: {e}"));
        let g = snap.graph();
        assert_eq!(g.node_count(), 3, "{mode:?}");
        assert_eq!(g.edge_count(), 3, "{mode:?}");
        let labels: Vec<&AttrValue> = g
            .nodes()
            .map(|v| g.attribute_value(v, LABEL_ATTR).expect("labelled"))
            .collect();
        assert_eq!(
            labels,
            [
                &AttrValue::str("paper"),
                &AttrValue::str("paper"),
                &AttrValue::str("author")
            ],
            "{mode:?}"
        );
        assert_eq!(g.children(NodeId(0)), &[NodeId(1), NodeId(2)], "{mode:?}");
        assert_eq!(g.children(NodeId(1)), &[NodeId(2)], "{mode:?}");
        assert!(
            g.sim_catalog().is_empty(),
            "{mode:?}: a v1 file cannot carry sim tables"
        );
        assert!(g.sim_table("emb").is_none(), "{mode:?}");
    }
}

#[test]
fn corrupted_snapshots_fail_typed_and_clean_flips_stay_identical() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = random_graph(&mut rng, 22, false);
    assert!(
        !g.sim_catalog().is_empty(),
        "the corruption sweep must run over a v2 file with vectors and \
         sim tables (pick another seed)"
    );
    let path = temp_snapshot("corrupt", 11);
    GraphHandle::new(g.clone()).snapshot().save(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let victim = temp_snapshot("corrupt-victim", 11);

    // Single-byte flips at a stride that still covers the header, the TOC
    // and every section at least once.  A flip either surfaces as a typed
    // error or — when it only touched inter-section padding, which no
    // checksum covers — loads a graph identical to the original.  Heap
    // mode verifies every checksum, so nothing corrupt can slip through.
    let stride = (pristine.len() / 512).max(1);
    for pos in (0..pristine.len()).step_by(stride) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0xA5;
        std::fs::write(&victim, &bytes).unwrap();
        match GraphSnapshot::open_heap(&victim) {
            Ok(loaded) => assert_eq!(
                *loaded.graph().as_ref(),
                g,
                "flip at byte {pos} changed the graph yet loaded cleanly"
            ),
            Err(e) => {
                // Exercise Display on every variant — a panic here is a bug.
                let _ = e.to_string();
            }
        }
    }

    // Every truncation point fails with a typed error.
    for cut in [
        0,
        1,
        7,
        8,
        63,
        64,
        65,
        pristine.len() / 2,
        pristine.len() - 1,
    ] {
        std::fs::write(&victim, &pristine[..cut]).unwrap();
        let err = GraphSnapshot::open_heap(&victim)
            .err()
            .unwrap_or_else(|| panic!("truncation to {cut} bytes loaded successfully"));
        let _ = err.to_string();
    }

    // Mmap mode (lazy data checksums) must reject the same structural
    // damage: header, TOC and every materialized section stay verified.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&victim, &bad_magic).unwrap();
    assert!(
        GraphSnapshot::open_mmap(&victim).is_err(),
        "bad magic accepted"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&victim).ok();
}

#[test]
fn plain_mmap_flips_load_typed_or_stay_panic_free_at_access_time() {
    // Plain `Mmap` skips the CRC pass over the big data runs, so a flipped
    // byte there *can* load — the contract is weaker but still hard: a load
    // either fails with a typed error (structural damage: header, TOC,
    // counts, any offsets run) or yields a graph whose every accessor is
    // memory-safe and panic-free, even though the data may be wrong.
    let mut rng = StdRng::seed_from_u64(17);
    let g = random_graph(&mut rng, 22, false);
    assert!(
        !g.sim_catalog().is_empty(),
        "the mmap flip sweep must cover the vector and sim sections"
    );
    let path = temp_snapshot("mmap-corrupt", 17);
    GraphHandle::new(g).snapshot().save(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let victim = temp_snapshot("mmap-corrupt-victim", 17);

    let stride = (pristine.len() / 512).max(1);
    for pos in (0..pristine.len()).step_by(stride) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0xA5;
        std::fs::write(&victim, &bytes).unwrap();
        let loaded = match GraphSnapshot::open_mmap(&victim) {
            Ok(loaded) => loaded,
            Err(e) => {
                let _ = e.to_string();
                continue;
            }
        };
        // Exhaustively touch every slice-served accessor: adjacency in both
        // directions, the lazily decoded attribute tuples, the postings and
        // the condensation arrays.  None of these may panic, whatever the
        // flip hit.
        let dg = loaded.graph();
        for v in dg.nodes() {
            let _ = dg.children(v);
            let _ = dg.parents(v);
            let _ = dg.attributes(v);
        }
        let _ = dg.nodes_with(LABEL_ATTR, &AttrValue::str("l1"));
        let _ = dg.nodes_with_attr_name("year");
        let _ = dg.nodes_with_int_range("year", -3, 2010);
        // The similarity surface: pivot-filtered queries and raw vector
        // reads must stay panic-free over whatever data survived the flip.
        if let Some(table) = dg.sim_table("emb") {
            let probe = vec![0.25f32; table.dim()];
            let _ = table.within_l2(&probe, 1.5, true);
            let _ = table.above_cosine(&probe, 0.5, false);
            for i in 0..table.len() {
                let _ = table.vector(i);
            }
        }
        let cond = loaded.condensation();
        for c in 0..cond.component_count() {
            let c = CompId(c as u32);
            let _ = cond.members(c);
            let _ = cond.successors(c);
            let _ = cond.predecessors(c);
        }
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&victim).ok();
}
