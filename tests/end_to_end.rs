//! Cross-crate integration tests: generators → analysis → GTEA → baselines.

use gtpq::analysis::{is_satisfiable, minimize};
use gtpq::baselines::{
    evaluate_gtpq_with, HgJoin, TpqAlgorithm, Twig2Stack, TwigStack, TwigStackD,
};
use gtpq::datagen::{
    dblp_queries, fig11_gtpq, generate_arxiv, generate_dblp, generate_xmark, random_queries,
    xmark_q1, xmark_q2, ArxivConfig, Fig11Predicate, RandomQueryConfig, XmarkConfig,
};
use gtpq::prelude::*;
use gtpq::query::naive;

#[test]
fn all_algorithms_agree_on_xmark_conjunctive_queries() {
    let graph = generate_xmark(&XmarkConfig::with_scale(0.1));
    let engine = GteaEngine::new(&graph);
    let twig = TwigStack::new(&graph);
    let twig2 = Twig2Stack::new(&graph);
    let twig_d = TwigStackD::new(&graph);
    let hg_plus = HgJoin::tuple_based(&graph);
    let hg_star = HgJoin::graph_based(&graph);
    for group in 0..4 {
        let q = xmark_q1(group);
        let expected = engine.evaluate(&q);
        assert!(
            twig.evaluate(&q).0.same_answer(&expected),
            "TwigStack, group {group}"
        );
        assert!(
            twig2.evaluate(&q).0.same_answer(&expected),
            "Twig2Stack, group {group}"
        );
        assert!(
            twig_d.evaluate(&q).0.same_answer(&expected),
            "TwigStackD, group {group}"
        );
        assert!(
            hg_plus.evaluate(&q).0.same_answer(&expected),
            "HGJoin+, group {group}"
        );
        assert!(
            hg_star.evaluate(&q).0.same_answer(&expected),
            "HGJoin*, group {group}"
        );
    }
}

#[test]
fn gtea_matches_the_naive_oracle_on_random_arxiv_queries() {
    let graph = generate_arxiv(&ArxivConfig::small());
    let engine = GteaEngine::new(&graph);
    let queries = random_queries(
        &graph,
        &RandomQueryConfig {
            count: 6,
            ..RandomQueryConfig::with_size(6)
        },
    );
    assert!(!queries.is_empty());
    for q in &queries {
        let fast = engine.evaluate(q);
        let slow = naive::evaluate(q, &graph);
        assert!(fast.same_answer(&slow));
        assert!(!fast.is_empty(), "sampled queries always have matches");
    }
}

#[test]
fn gtpq_suite_is_consistent_across_engines_and_satisfiable() {
    let graph = generate_xmark(&XmarkConfig::with_scale(0.05));
    let engine = GteaEngine::new(&graph);
    let twig_d = TwigStackD::new(&graph);
    for (name, variant) in Fig11Predicate::table4_suite() {
        let q = fig11_gtpq(variant, 0, 0);
        assert!(is_satisfiable(&q), "{name} must be satisfiable");
        let expected = naive::evaluate(&q, &graph);
        assert!(engine.evaluate(&q).same_answer(&expected), "GTEA on {name}");
        let (merged, _) = evaluate_gtpq_with(&twig_d, &q);
        assert!(
            merged.same_answer(&expected),
            "decompose-and-merge on {name}"
        );
    }
}

#[test]
fn minimized_queries_return_the_same_answers() {
    let graph = generate_dblp(150, 5);
    let engine = GteaEngine::new(&graph);
    for (name, q) in dblp_queries() {
        let m = minimize(&q);
        assert!(m.size() <= q.size());
        assert!(
            engine.evaluate(&m).same_answer(&engine.evaluate(&q)),
            "minimization changed the answer of {name}"
        );
    }
}

#[test]
fn evaluation_statistics_are_plausible() {
    let graph = generate_xmark(&XmarkConfig::with_scale(0.1));
    let engine = GteaEngine::new(&graph);
    let q = xmark_q2(0, 3);
    let (results, stats) = engine.evaluate_with_stats(&q);
    assert_eq!(stats.result_tuples, results.len() as u64);
    assert!(stats.initial_candidates >= stats.candidates_after_downward);
    assert!(stats.prime_subtree_size >= stats.shrunk_subtree_size);
    assert!(stats.total_time() >= stats.filtering_time());
}

#[test]
fn graph_io_round_trips_generated_data() {
    let graph = generate_dblp(40, 9);
    let text = gtpq::graph::io::to_text(&graph);
    let parsed = gtpq::graph::io::from_text(&text).expect("round trip parses");
    assert_eq!(parsed.node_count(), graph.node_count());
    assert_eq!(parsed.edge_count(), graph.edge_count());
}
