//! Property tests for morsel-driven intra-query parallelism: at any thread
//! count the engine must return **bit-for-bit** the answer of a serial run —
//! the same rows, in the same order, with the same truncation flag — for
//! full materialization and for every `(offset, limit)` window, under every
//! reachability backend, on random DAGs and random cyclic graphs.
//!
//! The engine's fan-out gate is structural (any splittable input
//! parallelizes), so these tiny random graphs genuinely exercise the
//! parallel prune/matching/enumeration paths; the *cost* gate that keeps
//! cheap production queries serial lives in the planner
//! (`QueryPlan::recommended_threads`) and is tested in `gtpq-core`.
//!
//! Interrupt semantics must survive the fan-out too: a cancelled token and
//! an already-expired deadline abort a parallel run exactly like a serial
//! one, and a cancellation racing mid-stream against partition workers
//! either completes with the exact answer or aborts cleanly — never a
//! deadlock, never a wrong row.
//!
//! Same harness as `streaming_api.rs`: a deterministic seed sweep over the
//! vendored PRNG; every failure message carries the seed.

use std::time::Instant;

use gtpq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

const BACKENDS: [BackendKind; 5] = [
    BackendKind::Closure,
    BackendKind::ThreeHop,
    BackendKind::Chain,
    BackendKind::Contour,
    BackendKind::Sspi,
];

const THREADS: [usize; 3] = [1, 2, 8];

/// A random directed graph: `n` nodes labelled from a 4-letter alphabet and
/// up to `3n` random edges; even seeds are DAG-only.
fn random_graph(rng: &mut StdRng, max_nodes: usize, dag_only: bool) -> DataGraph {
    let n = rng.gen_range(3..max_nodes);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..4))))
        .collect();
    for _ in 0..rng.gen_range(0..n * 3) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (x, y) = if dag_only && x > y { (y, x) } else { (x, y) };
        b.add_edge(nodes[x], nodes[y]);
    }
    b.build()
}

/// A random small query with one or two output nodes, optionally with a
/// disjunctive or negated structural predicate at the root.
fn random_query(rng: &mut StdRng) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4))));
    let root = b.root_id();
    let mode = rng.gen_range(0u8..3);
    let mut predicate_vars = Vec::new();
    for _ in 0..rng.gen_range(1..4usize) {
        let edge = if rng.gen_bool(0.5) {
            EdgeKind::Child
        } else {
            EdgeKind::Descendant
        };
        let attr = AttrPredicate::label(&format!("l{}", rng.gen_range(0u8..4)));
        if predicate_vars.len() < 2 && mode > 0 {
            let p = b.predicate_child(root, edge, attr);
            predicate_vars.push(BoolExpr::Var(p.var()));
        } else {
            let c = b.backbone_child(root, edge, attr);
            b.mark_output(c);
        }
    }
    match (mode, predicate_vars.as_slice()) {
        (1, [a]) => b.set_structural(root, BoolExpr::not(a.clone())),
        (1, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), BoolExpr::not(bb.clone()))),
        (2, [a]) => b.set_structural(root, a.clone()),
        (2, [a, bb]) => b.set_structural(root, BoolExpr::or2(a.clone(), bb.clone())),
        _ => {}
    }
    b.mark_output(root);
    b.build().expect("generated queries are valid")
}

/// The window cases exercised per (graph, query, backend, degree):
/// `(offset, limit)`.
fn window_cases(total: usize) -> Vec<(usize, usize)> {
    vec![
        (0, 0),
        (0, 1),
        (0, total),
        (1, 2),
        (total / 2, 3),
        (total, 1),
        (2, total + 5),
    ]
}

fn exec_options(limit: Option<usize>, offset: usize, threads: usize) -> ExecOptions {
    ExecOptions {
        limit,
        offset,
        ctl: ExecCtl::unbounded(),
        threads,
    }
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(&mut rng, 20, seed % 2 == 0);
        let q = random_query(&mut rng);
        for kind in BACKENDS {
            let engine =
                GteaEngine::with_backend(&graph, kind.build_shared(&graph), GteaOptions::default());
            let plan = engine.plan(&q);
            let reference = engine
                .execute(&q, &plan, ExecOptions::unbounded())
                .expect("unbounded execution cannot be interrupted");
            let all: Vec<Vec<NodeId>> = reference.results.iter().cloned().collect();
            for threads in THREADS {
                // Full materialization: the whole answer, same order.
                let full = engine
                    .execute(&q, &plan, exec_options(None, 0, threads))
                    .expect("unbounded execution cannot be interrupted");
                assert_eq!(
                    full.results,
                    reference.results,
                    "seed {seed}, backend {}, {threads} threads: full answer diverged",
                    kind.as_str()
                );
                assert!(!full.truncated);

                // Every window: the exact slice, the exact truncation flag,
                // and the limit-pushdown bound on distinct enumerated rows.
                for (offset, limit) in window_cases(all.len()) {
                    let w = engine
                        .execute(&q, &plan, exec_options(Some(limit), offset, threads))
                        .expect("windowed execution cannot be interrupted");
                    let got: Vec<Vec<NodeId>> = w.results.iter().cloned().collect();
                    let expected: Vec<Vec<NodeId>> =
                        all.iter().skip(offset).take(limit).cloned().collect();
                    assert_eq!(
                        got,
                        expected,
                        "seed {seed}, backend {}, {threads} threads: window ({offset}, {limit}) diverged",
                        kind.as_str()
                    );
                    assert_eq!(
                        w.truncated,
                        offset.saturating_add(limit) < all.len(),
                        "seed {seed}, backend {}, {threads} threads: truncation flag wrong for ({offset}, {limit})",
                        kind.as_str()
                    );
                    assert!(
                        w.stats.enumerated_rows <= (offset + limit + 1) as u64,
                        "seed {seed}, backend {}, {threads} threads: enumerated {} rows for window ({offset}, {limit})",
                        kind.as_str(),
                        w.stats.enumerated_rows
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_runs_abort_on_cancellation_and_expired_deadlines() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(&mut rng, 20, seed % 2 == 0);
        let q = random_query(&mut rng);
        for kind in [BackendKind::Closure, BackendKind::ThreeHop] {
            let engine =
                GteaEngine::with_backend(&graph, kind.build_shared(&graph), GteaOptions::default());
            let plan = engine.plan(&q);
            let reference = engine
                .execute(&q, &plan, ExecOptions::unbounded())
                .expect("unbounded execution cannot be interrupted");
            for threads in [2usize, 8] {
                // An already-cancelled token aborts at the first poll, with
                // `Cancelled` — never misreported as a worker stop.
                let token = CancelToken::new();
                token.cancel();
                let aborted = engine
                    .execute(
                        &q,
                        &plan,
                        ExecOptions {
                            limit: None,
                            offset: 0,
                            ctl: ExecCtl::unbounded().with_cancel(token),
                            threads,
                        },
                    )
                    .expect_err("cancelled run must abort");
                assert_eq!(
                    aborted.interrupt,
                    Interrupt::Cancelled,
                    "seed {seed}, backend {}, {threads} threads",
                    kind.as_str()
                );

                // A deadline that expired before execution started aborts
                // with `Timeout` — the zero-budget path.
                let aborted = engine
                    .execute(
                        &q,
                        &plan,
                        ExecOptions {
                            limit: None,
                            offset: 0,
                            ctl: ExecCtl::unbounded().with_deadline(Instant::now()),
                            threads,
                        },
                    )
                    .expect_err("expired deadline must abort");
                assert_eq!(
                    aborted.interrupt,
                    Interrupt::Timeout,
                    "seed {seed}, backend {}, {threads} threads",
                    kind.as_str()
                );

                // A cancellation racing mid-stream against the partition
                // workers either completes with the exact serial answer or
                // aborts cleanly — and always joins (no deadlock on the
                // partition channels).
                let token = CancelToken::new();
                let racer = {
                    let token = token.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_micros(
                            // Seed-varied delay so the cancel lands in
                            // different stages across the sweep.
                            10 * (seed % 7),
                        ));
                        token.cancel();
                    })
                };
                let raced = engine.execute(
                    &q,
                    &plan,
                    ExecOptions {
                        limit: None,
                        offset: 0,
                        ctl: ExecCtl::unbounded().with_cancel(token),
                        threads,
                    },
                );
                racer.join().expect("cancelling thread panicked");
                match raced {
                    Ok(exec) => assert_eq!(
                        exec.results,
                        reference.results,
                        "seed {seed}, backend {}, {threads} threads: raced run completed with a wrong answer",
                        kind.as_str()
                    ),
                    Err(aborted) => assert_eq!(
                        aborted.interrupt,
                        Interrupt::Cancelled,
                        "seed {seed}, backend {}, {threads} threads",
                        kind.as_str()
                    ),
                }
            }
        }
    }
}

/// The service-level plumbing: a request's `with_threads` degree reaches the
/// engine without changing any answer, window or flag (the planner's cost
/// gate may serialize these tiny queries — equivalence must hold either way).
#[test]
fn service_requests_are_degree_independent() {
    use std::sync::Arc;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = Arc::new(random_graph(&mut rng, 20, seed % 2 == 0));
        let q = random_query(&mut rng);
        let service = QueryService::with_config(
            Arc::clone(&graph),
            ServiceConfig {
                backend: Some(BackendKind::Closure),
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let serial = service
            .submit(&QueryRequest::query(q.clone()).with_threads(1))
            .expect("serial submit cannot fail");
        for threads in [2usize, 8] {
            let parallel = service
                .submit(
                    &QueryRequest::query(q.clone())
                        .with_threads(threads)
                        .with_limit(3)
                        .with_offset(1),
                )
                .expect("parallel submit cannot fail");
            let expected: Vec<Vec<NodeId>> = serial.rows.iter().skip(1).take(3).cloned().collect();
            let got: Vec<Vec<NodeId>> = parallel.rows.iter().cloned().collect();
            assert_eq!(got, expected, "seed {seed}, {threads} threads");
        }
    }
}
