//! Storage-layer equivalence tests for the CSR + inverted-index `DataGraph`:
//!
//! * `children`/`parents`/`has_edge`/degrees agree with a naive edge-list
//!   model (the behaviour of the seed's `Vec<Vec<NodeId>>` representation)
//!   on random graphs,
//! * the graph round-trips through its serialization format with adjacency
//!   and inverted index intact (the `serde` derives in the workspace are
//!   no-op stand-ins, so the text format of `gtpq::graph::io` is the real
//!   wire format), and
//! * the inverted index answers exactly like an attribute scan.

use std::collections::BTreeSet;

use gtpq::graph::{io, AttrValue, DataGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

/// A random attributed multigraph plus the raw edge list it was built from.
fn random_graph(rng: &mut StdRng) -> (DataGraph, usize, Vec<(u32, u32)>) {
    let n = rng.gen_range(2..40usize);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let v = b.add_node_with_label(&format!("l{}", rng.gen_range(0u8..5)));
        if rng.gen_bool(0.7) {
            b.set_attr(v, "year", AttrValue::int(rng.gen_range(1990..2015)));
        }
        if rng.gen_bool(0.2) {
            b.set_attr(
                v,
                "tag",
                AttrValue::str(&format!("t{}", rng.gen_range(0u8..3))),
            );
        }
    }
    let mut edges = Vec::new();
    for _ in 0..rng.gen_range(0..n * 4) {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        b.add_edge(NodeId(u), NodeId(v));
        edges.push((u, v));
    }
    (b.build(), n, edges)
}

/// The seed-equivalent adjacency model: sorted, de-duplicated neighbour sets
/// recomputed straight from the edge list.
fn naive_adjacency(n: usize, edges: &[(u32, u32)]) -> (Vec<BTreeSet<u32>>, Vec<BTreeSet<u32>>) {
    let mut fwd = vec![BTreeSet::new(); n];
    let mut rev = vec![BTreeSet::new(); n];
    for &(u, v) in edges {
        fwd[u as usize].insert(v);
        rev[v as usize].insert(u);
    }
    (fwd, rev)
}

#[test]
fn csr_adjacency_matches_the_naive_edge_list_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, n, edges) = random_graph(&mut rng);
        let (fwd, rev) = naive_adjacency(n, &edges);
        let expected_edges: usize = fwd.iter().map(BTreeSet::len).sum();
        assert_eq!(g.edge_count(), expected_edges, "seed {seed}");
        for v in g.nodes() {
            let children: Vec<u32> = g.children(v).iter().map(|c| c.0).collect();
            let parents: Vec<u32> = g.parents(v).iter().map(|p| p.0).collect();
            let want_children: Vec<u32> = fwd[v.index()].iter().copied().collect();
            let want_parents: Vec<u32> = rev[v.index()].iter().copied().collect();
            assert_eq!(children, want_children, "seed {seed}, children of {v}");
            assert_eq!(parents, want_parents, "seed {seed}, parents of {v}");
            assert_eq!(g.out_degree(v), want_children.len(), "seed {seed}");
            assert_eq!(g.in_degree(v), want_parents.len(), "seed {seed}");
        }
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    g.has_edge(u, v),
                    fwd[u.index()].contains(&v.0),
                    "seed {seed}, has_edge({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn serialization_round_trip_preserves_csr_and_inverted_index() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let (g, _, _) = random_graph(&mut rng);
        let text = io::to_text(&g);
        let g2 = io::from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(g2.node_count(), g.node_count(), "seed {seed}");
        assert_eq!(g2.edge_count(), g.edge_count(), "seed {seed}");
        for v in g.nodes() {
            assert_eq!(g2.children(v), g.children(v), "seed {seed}, children {v}");
            assert_eq!(g2.parents(v), g.parents(v), "seed {seed}, parents {v}");
            assert_eq!(g2.attributes(v).len(), g.attributes(v).len(), "seed {seed}");
        }
        // The rebuilt inverted index serves the same posting lists.
        for label in 0u8..5 {
            let value = AttrValue::str(&format!("l{label}"));
            assert_eq!(
                g2.nodes_with("label", &value),
                g.nodes_with("label", &value),
                "seed {seed}, label posting l{label}"
            );
        }
        for year in [1990i64, 2000, 2014] {
            assert_eq!(
                g2.nodes_with_int_range("year", year, year + 7),
                g.nodes_with_int_range("year", year, year + 7),
                "seed {seed}, year range from {year}"
            );
        }
    }
}

#[test]
fn inverted_index_answers_like_an_attribute_scan() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let (g, _, _) = random_graph(&mut rng);
        for label in 0u8..5 {
            let value = AttrValue::str(&format!("l{label}"));
            let scanned: Vec<NodeId> = g
                .nodes()
                .filter(|&v| g.attribute_value(v, "label") == Some(&value))
                .collect();
            assert_eq!(g.nodes_with("label", &value), scanned, "seed {seed}");
        }
        let carriers: Vec<NodeId> = g
            .nodes()
            .filter(|&v| g.attribute_value(v, "year").is_some())
            .collect();
        assert_eq!(g.nodes_with_attr_name("year"), carriers, "seed {seed}");
        let in_range: Vec<NodeId> = g
            .nodes()
            .filter(|&v| {
                matches!(g.attribute_value(v, "year"), Some(AttrValue::Int(y)) if (1995..=2005).contains(y))
            })
            .collect();
        assert_eq!(
            g.nodes_with_int_range("year", 1995, 2005),
            in_range,
            "seed {seed}"
        );
    }
}
