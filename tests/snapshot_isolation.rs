//! Snapshot isolation of in-flight queries over a live graph.
//!
//! A [`GraphHandle`] publishes immutable snapshots; a reader that pinned one
//! (directly, or implicitly by submitting a request to a live
//! [`QueryService`]) must see **exactly** that snapshot's answer, no matter
//! how many epochs a writer commits while the reader is mid-enumeration.
//! Three layers are proven:
//!
//! * the pull-based [`MatchStream`]: rows pulled *after* a commit complete
//!   the pinned snapshot's answer, not the new graph's,
//! * the parallel executor (`threads = 8`) racing a free-running writer
//!   thread: every execution against the pinned graph is bit-identical to
//!   the pre-mutation answer,
//! * the service: a request answers from the generation it pinned at
//!   submission, a fresh submit after a commit sees the new epoch (no stale
//!   cache hit), and `EvalStats::graph_epoch` reports which generation
//!   answered.

use std::sync::Arc;
use std::thread;

use gtpq::datagen::{apply_ops, update_stream, UpdateStreamConfig};
use gtpq::graph::GraphHandle;
use gtpq::prelude::*;
use gtpq::query::naive;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `a0 → {b1, b2, b3}` — the query `a { //b* }` answers three rows.
fn fanout_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    for _ in 0..3 {
        let v = b.add_node_with_label("b");
        b.add_edge(a, v);
    }
    b.build()
}

fn fanout_query() -> Gtpq {
    parse_query("a { //b* }").expect("query parses")
}

/// A random labelled graph for the writer-race sweep.
fn random_graph(rng: &mut StdRng, max_nodes: usize) -> DataGraph {
    let n = rng.gen_range(6..max_nodes);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_with_label(["a", "b", "c", "d"][rng.gen_range(0..4usize)]))
        .collect();
    for _ in 0..rng.gen_range(n..n * 3) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x != y {
            b.add_edge(nodes[x], nodes[y]);
        }
    }
    b.build()
}

#[test]
fn match_stream_completes_the_pinned_snapshot_answer_across_commits() {
    let handle = GraphHandle::new(fanout_graph());
    let q = fanout_query();

    let snap = handle.snapshot();
    let pinned = naive::evaluate(&q, snap.graph());
    assert_eq!(pinned.len(), 3);

    let engine = GteaEngine::new(snap.graph());
    let plan = engine.plan(&q);
    let (mut stream, _stats) = engine
        .match_stream(&q, &plan, ExecCtl::unbounded())
        .expect("unbounded stream cannot be interrupted");

    // Pull one row, then mutate and commit twice mid-enumeration.
    let mut rows = Vec::new();
    rows.push(stream.next_row().unwrap().expect("three rows exist"));
    for _ in 0..2 {
        let v = handle.insert_node_with_label("b");
        handle.insert_edge(NodeId(0), v);
        handle.commit();
    }

    // The rest of the stream is still the pinned snapshot's answer.
    while let Some(row) = stream.next_row().unwrap() {
        rows.push(row);
    }
    assert_eq!(rows.len(), 3, "stream leaked rows from a newer epoch");
    let mut streamed = ResultSet::new(pinned.output.clone());
    for row in rows {
        streamed.insert(row);
    }
    assert!(streamed.same_answer(&pinned));

    // A fresh snapshot sees both committed inserts.
    let fresh = handle.snapshot();
    assert_eq!(fresh.epoch(), 2);
    assert_eq!(naive::evaluate(&q, fresh.graph()).len(), 5);
}

#[test]
fn parallel_execution_is_isolated_from_a_racing_writer() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_graph(&mut rng, 16);
        let q = fanout_query();
        let handle = Arc::new(GraphHandle::new(base));

        let snap = handle.snapshot();
        let pinned = naive::evaluate(&q, snap.graph());

        let writer = {
            let handle = Arc::clone(&handle);
            let stream_cfg = UpdateStreamConfig {
                seed,
                epochs: 32,
                ops_per_epoch: 8,
                ..UpdateStreamConfig::default()
            };
            let epochs = update_stream(snap.graph(), &stream_cfg);
            thread::spawn(move || {
                for epoch in &epochs {
                    apply_ops(&handle, epoch);
                    handle.commit();
                }
            })
        };

        // Race the writer: every execution pins the old snapshot's graph and
        // must reproduce the pre-mutation answer bit-for-bit.
        let engine = GteaEngine::new(snap.graph());
        let plan = engine.plan(&q);
        for _ in 0..10 {
            let exec = engine
                .execute(
                    &q,
                    &plan,
                    ExecOptions {
                        limit: None,
                        offset: 0,
                        ctl: ExecCtl::unbounded(),
                        threads: 8,
                    },
                )
                .expect("unbounded execution cannot be interrupted");
            assert!(
                exec.results.same_answer(&pinned),
                "seed {seed}: parallel execution saw a torn or newer graph"
            );
        }
        writer.join().unwrap();

        // After the dust settles, a fresh snapshot is internally consistent.
        let fresh = handle.snapshot();
        assert_eq!(fresh.epoch(), 32, "seed {seed}: writer lost commits");
        let fresh_engine = GteaEngine::new(fresh.graph());
        let got = fresh_engine.evaluate(&q);
        assert!(got.same_answer(&naive::evaluate(&q, fresh.graph())));
    }
}

#[test]
fn service_requests_pin_their_submission_epoch() {
    let handle = Arc::new(GraphHandle::new(fanout_graph()));
    let service = QueryService::live(Arc::clone(&handle));
    let request = QueryRequest::text("a { //b* }").with_stats();

    let cold = service.submit(&request).unwrap();
    assert_eq!(cold.rows.len(), 3);
    assert_eq!(cold.stats.as_ref().unwrap().graph_epoch, 0);

    // A limited request pushes its window down into the pinned snapshot.
    let first = service
        .submit(&QueryRequest::text("a { //b* }").with_limit(1).with_stats())
        .unwrap();
    assert_eq!(first.rows.len(), 1);
    assert_eq!(first.stats.as_ref().unwrap().graph_epoch, 0);

    let v = handle.insert_node_with_label("b");
    handle.insert_edge(NodeId(0), v);
    handle.commit();

    // A fresh submit sees the new epoch: no stale cache hit, one more row,
    // and the stats name the generation that answered.
    let fresh = service.submit(&request).unwrap();
    assert!(
        !fresh.from_cache,
        "stale cache entry served across an epoch"
    );
    assert_eq!(fresh.rows.len(), 4);
    assert_eq!(fresh.stats.as_ref().unwrap().graph_epoch, 1);
    assert_eq!(service.graph_epoch(), 1);
    let oracle = naive::evaluate(&fanout_query(), &service.graph());
    assert_eq!(fresh.rows.len(), oracle.len());
    for row in fresh.rows.iter() {
        assert!(
            oracle.contains(row),
            "row {row:?} not in the rebuild oracle"
        );
    }
}
