//! Anti-rot tests for the "Mutation & snapshots" section of
//! `docs/ARCHITECTURE.md`:
//!
//! * every `MutationStats` counter the struct actually has must be named
//!   (backticked) in the section — a new counter without documentation
//!   fails, as does a documented counter the struct no longer carries
//!   (field names are recovered from the derived `Debug` output, so the
//!   check follows the code automatically),
//! * the epoch metric families the section promises must appear on a real
//!   Prometheus scrape page after a commit — and, in the other direction,
//!   every epoch-related family the page emits must be documented,
//! * every `tests/*.rs` file the section cites must exist,
//! * the behavioural claims are re-proven in miniature: a pinned snapshot
//!   survives a commit unchanged, and a live service rotates (no stale
//!   cache hit, monotone epoch) when the graph mutates under it.

use std::collections::BTreeSet;
use std::sync::Arc;

use gtpq::graph::{GraphBuilder, GraphHandle, MutationStats};
use gtpq::service::{QueryRequest, QueryService};

const ARCHITECTURE_MD: &str = include_str!("../docs/ARCHITECTURE.md");

/// The "Mutation & snapshots" section body (up to the next `## ` heading).
fn section() -> &'static str {
    ARCHITECTURE_MD
        .split("## Mutation & snapshots")
        .nth(1)
        .expect("ARCHITECTURE.md has a Mutation & snapshots section")
        .split("\n## ")
        .next()
        .expect("split is non-empty")
}

/// All backticked tokens in the section.
fn backticked() -> BTreeSet<String> {
    let mut tokens = BTreeSet::new();
    for (i, piece) in section().split('`').enumerate() {
        if i % 2 == 1 {
            tokens.insert(piece.to_owned());
        }
    }
    tokens
}

/// Field names of `MutationStats`, recovered from the derived `Debug`
/// output (`MutationStats { epochs: 0, ... }`) so the list cannot drift
/// from the struct definition.
fn mutation_stats_fields() -> BTreeSet<String> {
    let rendered = format!("{:?}", MutationStats::default());
    let body = rendered
        .split_once('{')
        .expect("derived Debug uses braces")
        .1
        .rsplit_once('}')
        .expect("derived Debug uses braces")
        .0;
    body.split(',')
        .filter_map(|field| field.split(':').next())
        .map(|name| name.trim().to_owned())
        .filter(|name| !name.is_empty())
        .collect()
}

#[test]
fn every_mutation_stats_counter_is_documented() {
    let documented = backticked();
    let fields = mutation_stats_fields();
    assert!(
        fields.len() >= 10,
        "Debug parsing broke: only {fields:?} recovered"
    );
    for field in &fields {
        assert!(
            documented.contains(field),
            "MutationStats counter `{field}` is not mentioned in the \
             Mutation & snapshots section of docs/ARCHITECTURE.md"
        );
    }
}

#[test]
fn cited_test_files_exist() {
    let root = env!("CARGO_MANIFEST_DIR");
    let cited: Vec<String> = backticked()
        .into_iter()
        .filter(|t| t.starts_with("tests/") && t.ends_with(".rs"))
        .collect();
    assert!(
        cited.len() >= 3,
        "the section should cite its proof suites, found only {cited:?}"
    );
    for path in cited {
        assert!(
            std::path::Path::new(root).join(&path).exists(),
            "docs/ARCHITECTURE.md cites `{path}`, which does not exist"
        );
    }
}

#[test]
fn promised_epoch_metric_families_appear_on_a_real_scrape_page() {
    // A live service that has rotated once: the families must all be live.
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    let c = b.add_node_with_label("b");
    b.add_edge(a, c);
    let handle = Arc::new(GraphHandle::new(b.build()));
    let service = QueryService::live(Arc::clone(&handle));
    let request = QueryRequest::text("a { //b* }");
    service.submit(&request).expect("query evaluates");
    handle.insert_node_with_label("b");
    handle.commit();
    service.submit(&request).expect("query evaluates");
    let page = service.metrics().render_prometheus();

    let on_page: BTreeSet<String> = page
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .filter(|name| {
            name.contains("epoch") || name.contains("stale") || name.contains("rotation")
        })
        .map(str::to_owned)
        .collect();
    let documented: BTreeSet<String> = backticked()
        .into_iter()
        .filter(|t| t.starts_with("gtpq_"))
        .collect();

    for family in &documented {
        assert!(
            on_page.contains(family),
            "docs/ARCHITECTURE.md promises `{family}` but the scrape page \
             does not emit it:\n{page}"
        );
    }
    for family in &on_page {
        assert!(
            documented.contains(family),
            "the scrape page emits epoch family `{family}` that the \
             Mutation & snapshots section does not document"
        );
    }
}

#[test]
fn lifecycle_claims_hold_in_miniature() {
    // "Anything holding the previous snapshot keeps reading it untouched."
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    let c = b.add_node_with_label("b");
    b.add_edge(a, c);
    let handle = Arc::new(GraphHandle::new(b.build()));
    let pinned = handle.snapshot();
    handle.insert_node_with_label("b");
    handle.commit();
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.graph().node_count(), 2);
    assert_eq!(handle.snapshot().graph().node_count(), 3);

    // "A fresh submit sees the new epoch with no stale cache hit."
    let service = QueryService::live(Arc::clone(&handle));
    let request = QueryRequest::text("a { //b* }").with_stats();
    let cold = service.submit(&request).unwrap();
    let warm = service.submit(&request).unwrap();
    assert!(warm.from_cache);
    let new = handle.insert_node_with_label("b");
    handle.insert_edge(a, new);
    handle.commit();
    let fresh = service.submit(&request).unwrap();
    assert!(!fresh.from_cache, "stale cache hit across an epoch");
    assert_eq!(fresh.rows.len(), cold.rows.len() + 1);
    assert!(
        fresh.stats.unwrap().graph_epoch > cold.stats.unwrap().graph_epoch,
        "EvalStats::graph_epoch did not advance with the commit"
    );
}
