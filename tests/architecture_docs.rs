//! Anti-rot tests for the "Mutation & snapshots" section of
//! `docs/ARCHITECTURE.md`:
//!
//! * every `MutationStats` counter the struct actually has must be named
//!   (backticked) in the section — a new counter without documentation
//!   fails, as does a documented counter the struct no longer carries
//!   (field names are recovered from the derived `Debug` output, so the
//!   check follows the code automatically),
//! * the epoch metric families the section promises must appear on a real
//!   Prometheus scrape page after a commit — and, in the other direction,
//!   every epoch-related family the page emits must be documented,
//! * every `tests/*.rs` file the section cites must exist,
//! * the behavioural claims are re-proven in miniature: a pinned snapshot
//!   survives a commit unchanged, and a live service rotates (no stale
//!   cache hit, monotone epoch) when the graph mutates under it.
//!
//! The "Snapshot format" section gets the same treatment: the documented
//! magic and format version must match the `snap` module's constants,
//! every `LoadMode` variant must be documented (recovered through an
//! exhaustive match, so a new variant fails the build until this file —
//! and the docs — learn about it), the cited test suites must exist, and
//! the headline claims are re-proven in miniature against a real file.

use std::collections::BTreeSet;
use std::sync::Arc;

use gtpq::graph::snap::{FORMAT_VERSION, MAGIC};
use gtpq::graph::{GraphBuilder, GraphHandle, GraphSnapshot, LoadMode, MutationStats};
use gtpq::service::{QueryRequest, QueryService};

const ARCHITECTURE_MD: &str = include_str!("../docs/ARCHITECTURE.md");

/// The body of the section titled `heading` (up to the next `## ` heading).
fn section_named(heading: &str) -> &'static str {
    ARCHITECTURE_MD
        .split(heading)
        .nth(1)
        .unwrap_or_else(|| panic!("ARCHITECTURE.md has a {heading} section"))
        .split("\n## ")
        .next()
        .expect("split is non-empty")
}

/// The "Mutation & snapshots" section body.
fn section() -> &'static str {
    section_named("## Mutation & snapshots")
}

/// All backticked tokens in `text`.
fn backticked_in(text: &str) -> BTreeSet<String> {
    let mut tokens = BTreeSet::new();
    for (i, piece) in text.split('`').enumerate() {
        if i % 2 == 1 {
            tokens.insert(piece.to_owned());
        }
    }
    tokens
}

/// All backticked tokens in the "Mutation & snapshots" section.
fn backticked() -> BTreeSet<String> {
    backticked_in(section())
}

/// Field names of `MutationStats`, recovered from the derived `Debug`
/// output (`MutationStats { epochs: 0, ... }`) so the list cannot drift
/// from the struct definition.
fn mutation_stats_fields() -> BTreeSet<String> {
    let rendered = format!("{:?}", MutationStats::default());
    let body = rendered
        .split_once('{')
        .expect("derived Debug uses braces")
        .1
        .rsplit_once('}')
        .expect("derived Debug uses braces")
        .0;
    body.split(',')
        .filter_map(|field| field.split(':').next())
        .map(|name| name.trim().to_owned())
        .filter(|name| !name.is_empty())
        .collect()
}

#[test]
fn every_mutation_stats_counter_is_documented() {
    let documented = backticked();
    let fields = mutation_stats_fields();
    assert!(
        fields.len() >= 10,
        "Debug parsing broke: only {fields:?} recovered"
    );
    for field in &fields {
        assert!(
            documented.contains(field),
            "MutationStats counter `{field}` is not mentioned in the \
             Mutation & snapshots section of docs/ARCHITECTURE.md"
        );
    }
}

#[test]
fn cited_test_files_exist() {
    let root = env!("CARGO_MANIFEST_DIR");
    let cited: Vec<String> = backticked()
        .into_iter()
        .filter(|t| t.starts_with("tests/") && t.ends_with(".rs"))
        .collect();
    assert!(
        cited.len() >= 3,
        "the section should cite its proof suites, found only {cited:?}"
    );
    for path in cited {
        assert!(
            std::path::Path::new(root).join(&path).exists(),
            "docs/ARCHITECTURE.md cites `{path}`, which does not exist"
        );
    }
}

#[test]
fn promised_epoch_metric_families_appear_on_a_real_scrape_page() {
    // A live service that has rotated once: the families must all be live.
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    let c = b.add_node_with_label("b");
    b.add_edge(a, c);
    let handle = Arc::new(GraphHandle::new(b.build()));
    let service = QueryService::live(Arc::clone(&handle));
    let request = QueryRequest::text("a { //b* }");
    service.submit(&request).expect("query evaluates");
    handle.insert_node_with_label("b");
    handle.commit();
    service.submit(&request).expect("query evaluates");
    let page = service.metrics().render_prometheus();

    let on_page: BTreeSet<String> = page
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .filter(|name| {
            name.contains("epoch") || name.contains("stale") || name.contains("rotation")
        })
        .map(str::to_owned)
        .collect();
    let documented: BTreeSet<String> = backticked()
        .into_iter()
        .filter(|t| t.starts_with("gtpq_"))
        .collect();

    for family in &documented {
        assert!(
            on_page.contains(family),
            "docs/ARCHITECTURE.md promises `{family}` but the scrape page \
             does not emit it:\n{page}"
        );
    }
    for family in &on_page {
        assert!(
            documented.contains(family),
            "the scrape page emits epoch family `{family}` that the \
             Mutation & snapshots section does not document"
        );
    }
}

#[test]
fn snapshot_section_tracks_the_format_constants_and_load_modes() {
    let body = section_named("## Snapshot format");
    let documented = backticked_in(body);

    let magic = std::str::from_utf8(&MAGIC).expect("magic is ASCII");
    assert!(
        documented.contains(magic),
        "the Snapshot format section must name the magic `{magic}`"
    );
    let version = format!("currently {FORMAT_VERSION}");
    assert!(
        body.contains(&version),
        "the documented format version went stale: the section must say \
         \"{version}\" to match snap::FORMAT_VERSION"
    );

    // Exhaustive match: adding a `LoadMode` variant fails this build until
    // the list — and therefore the docs — learns about it.
    fn name(mode: LoadMode) -> &'static str {
        match mode {
            LoadMode::Mmap => "Mmap",
            LoadMode::MmapVerified => "MmapVerified",
            LoadMode::Heap => "Heap",
        }
    }
    for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
        assert!(
            documented.contains(name(mode)),
            "LoadMode `{}` is not documented in the Snapshot format section",
            name(mode)
        );
    }
}

#[test]
fn snapshot_section_cites_existing_test_files() {
    let root = env!("CARGO_MANIFEST_DIR");
    let cited: Vec<String> = backticked_in(section_named("## Snapshot format"))
        .into_iter()
        .filter(|t| t.starts_with("tests/") && t.ends_with(".rs"))
        .collect();
    assert!(
        !cited.is_empty(),
        "the Snapshot format section should cite its proof suites"
    );
    for path in cited {
        assert!(
            std::path::Path::new(root).join(&path).exists(),
            "docs/ARCHITECTURE.md cites `{path}`, which does not exist"
        );
    }
}

#[test]
fn snapshot_claims_hold_in_miniature() {
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    let c = b.add_node_with_label("b");
    b.add_edge(a, c);
    let graph = Arc::new(b.build());
    let path = std::env::temp_dir().join(format!(
        "gtpq-architecture-docs-{}.gtpq",
        std::process::id()
    ));
    GraphSnapshot::freeze(Arc::clone(&graph))
        .save(&path)
        .expect("snapshot saves");

    // "The 64-byte header carries the magic GTPQSNAP": byte-for-byte.
    let bytes = std::fs::read(&path).expect("snapshot readable");
    assert_eq!(&bytes[..8], &MAGIC, "file does not start with the magic");

    // Every load mode reconstructs the same graph.
    for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
        let loaded = GraphSnapshot::open(&path, mode).expect("snapshot loads");
        assert_eq!(*loaded.graph().as_ref(), *graph, "{mode:?} diverged");
    }

    // "Corruption surfaces as a typed SnapshotError": a broken magic and a
    // hard truncation must both fail cleanly, in every mode.
    let mut broken = bytes.clone();
    broken[0] ^= 0xff;
    std::fs::write(&path, &broken).expect("corrupt file written");
    for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
        assert!(GraphSnapshot::open(&path, mode).is_err(), "{mode:?}");
    }
    std::fs::write(&path, &bytes[..10]).expect("truncated file written");
    for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
        assert!(GraphSnapshot::open(&path, mode).is_err(), "{mode:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn lifecycle_claims_hold_in_miniature() {
    // "Anything holding the previous snapshot keeps reading it untouched."
    let mut b = GraphBuilder::new();
    let a = b.add_node_with_label("a");
    let c = b.add_node_with_label("b");
    b.add_edge(a, c);
    let handle = Arc::new(GraphHandle::new(b.build()));
    let pinned = handle.snapshot();
    handle.insert_node_with_label("b");
    handle.commit();
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.graph().node_count(), 2);
    assert_eq!(handle.snapshot().graph().node_count(), 3);

    // "A fresh submit sees the new epoch with no stale cache hit."
    let service = QueryService::live(Arc::clone(&handle));
    let request = QueryRequest::text("a { //b* }").with_stats();
    let cold = service.submit(&request).unwrap();
    let warm = service.submit(&request).unwrap();
    assert!(warm.from_cache);
    let new = handle.insert_node_with_label("b");
    handle.insert_edge(a, new);
    handle.commit();
    let fresh = service.submit(&request).unwrap();
    assert!(!fresh.from_cache, "stale cache hit across an epoch");
    assert_eq!(fresh.rows.len(), cold.rows.len() + 1);
    assert!(
        fresh.stats.unwrap().graph_epoch > cold.stats.unwrap().graph_epoch,
        "EvalStats::graph_epoch did not advance with the commit"
    );
}
