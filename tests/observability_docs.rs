//! Anti-rot tests for `docs/OBSERVABILITY.md`:
//!
//! * the Prometheus family table is cross-checked against a real
//!   `render_prometheus()` scrape page in **both** directions — a family on
//!   the page but not in the doc fails, and a documented family that the
//!   page no longer emits fails,
//! * the span-tree diagram is cross-checked against a real recorded trace
//!   the same way.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use gtpq::datagen::generate_dblp;
use gtpq::service::{QueryError, QueryRequest, QueryService};

const OBSERVABILITY_MD: &str = include_str!("../docs/OBSERVABILITY.md");

const QUERY: &str = "inproceedings { /title* where /[label = author, value = Alice] }";

fn service() -> QueryService {
    QueryService::new(Arc::new(generate_dblp(240, 42)))
}

/// Metric families claimed by the doc's exposition table: every backticked
/// `gtpq_*` token in a table row, stripped of any `{label}` suffix.
fn doc_families() -> BTreeSet<String> {
    let mut families = BTreeSet::new();
    for line in OBSERVABILITY_MD.lines() {
        if !line.trim_start().starts_with("| `gtpq_") {
            continue;
        }
        for (i, piece) in line.split('`').enumerate() {
            if i % 2 == 1 && piece.starts_with("gtpq_") {
                let name = piece.split('{').next().expect("split is non-empty");
                families.insert(name.to_owned());
            }
        }
    }
    families
}

/// Stage names promised by the tree diagram in the "Span traces" section:
/// the root line plus every `├── name` / `└── name` line.
fn doc_stage_names() -> Vec<String> {
    let section = OBSERVABILITY_MD
        .split("## Span traces")
        .nth(1)
        .expect("doc has a Span traces section");
    let tree = section
        .split("```text")
        .nth(1)
        .expect("section has a tree diagram")
        .split("```")
        .next()
        .expect("fenced block is terminated");
    let mut names = Vec::new();
    for line in tree.lines() {
        let rest = if let Some(r) = line.strip_prefix("├── ") {
            r
        } else if let Some(r) = line.strip_prefix("└── ") {
            r
        } else if !line.is_empty() && !line.starts_with(['│', ' ']) {
            line // the root line
        } else {
            continue; // wrapped description text
        };
        names.push(
            rest.split_whitespace()
                .next()
                .expect("stage lines carry a name")
                .to_owned(),
        );
    }
    names
}

#[test]
fn prometheus_family_table_matches_a_real_scrape_page() {
    let service = service();
    service.submit(&QueryRequest::text(QUERY)).unwrap(); // miss
    service.submit(&QueryRequest::text(QUERY)).unwrap(); // hit
    match service
        .submit(&QueryRequest::text("inproceedings { //title* }").with_deadline(Duration::ZERO))
    {
        Err(QueryError::Timeout { .. }) => {}
        Ok(_) => panic!("a zero deadline should time out"),
        Err(e) => panic!("expected a timeout, got {e}"),
    }
    let page = service.metrics().render_prometheus();

    let on_page: BTreeSet<String> = page
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|rest| {
            rest.split_whitespace()
                .next()
                .expect("TYPE lines carry a name")
                .to_owned()
        })
        .collect();
    let documented = doc_families();
    assert!(
        documented.len() >= 20,
        "the doc table should list every family (found {})",
        documented.len()
    );
    for family in &on_page {
        assert!(
            documented.contains(family),
            "scrape-page family `{family}` is missing from docs/OBSERVABILITY.md"
        );
    }
    for family in &documented {
        assert!(
            on_page.contains(family),
            "documented family `{family}` is not on the scrape page"
        );
    }

    // Every stage label value the page emits is named (in backticks) in the
    // doc's `gtpq_stage_seconds` row.
    let stages: BTreeSet<&str> = page
        .split("stage=\"")
        .skip(1)
        .map(|piece| piece.split('"').next().expect("label value is closed"))
        .collect();
    assert!(stages.contains("candidates"), "stage labels: {stages:?}");
    for stage in &stages {
        assert!(
            OBSERVABILITY_MD.contains(&format!("`{stage}`")),
            "stage label `{stage}` is missing from the doc's stage list"
        );
    }
}

#[test]
fn span_tree_diagram_matches_a_real_trace() {
    let promised = doc_stage_names();
    assert_eq!(
        promised.first().map(String::as_str),
        Some("request"),
        "the diagram roots at `request`: {promised:?}"
    );

    let service = service();
    let outcome = service
        .submit(&QueryRequest::text(QUERY).with_trace())
        .unwrap();
    let trace = outcome.trace.expect("with_trace records a trace");
    assert_eq!(trace.spans[0].name, "request");

    let recorded: BTreeSet<&str> = trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(0))
        .map(|s| s.name.as_ref())
        .collect();
    // Every stage the diagram promises shows up in a real cold text-query
    // trace (a text request exercises `parse`; a cache miss runs every
    // engine stage)...
    for name in promised.iter().skip(1) {
        assert!(
            recorded.contains(name.as_str()),
            "doc promises a `{name}` span under request; recorded: {recorded:?}"
        );
    }
    // ...and the engine records no top-level stage the diagram omits.
    for name in &recorded {
        assert!(
            promised.iter().any(|p| p == name),
            "recorded span `{name}` is missing from the doc's tree diagram"
        );
    }
}
