//! # gtpq — Generalized Tree Pattern Queries over graph-structured data
//!
//! A reproduction of *"Adding Logical Operators to Tree Pattern Queries on
//! Graph-Structured Data"* (Zeng, Jiang, Zhuge; 2012): tree pattern queries
//! whose structural constraints are full propositional formulas
//! (AND / OR / NOT) evaluated over general directed, attributed graphs, plus
//! the GTEA evaluation algorithm built on a 3-hop reachability index,
//! two-round pruning and a graph representation of intermediate results.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `gtpq-graph` | attributed data graphs, SCC condensation, traversal |
//! | [`logic`] | `gtpq-logic` | propositional formulas, transforms, DPLL SAT |
//! | [`query`] | `gtpq-query` | the GTPQ model, structural predicates, naive oracle |
//! | [`reach`] | `gtpq-reach` | transitive closure, chain cover, 3-hop, interval, SSPI |
//! | [`sim`] | `gtpq-sim` | pivot-based vector-similarity filtering (block-and-verify) |
//! | [`analysis`] | `gtpq-analysis` | satisfiability, containment, minimization |
//! | [`engine`] | `gtpq-core` | the GTEA evaluation engine |
//! | [`baselines`] | `gtpq-baselines` | TwigStack, Twig2Stack, TwigStackD, HGJoin, decompose-and-merge |
//! | [`datagen`] | `gtpq-datagen` | XMark-like / arXiv-like / DBLP-like generators and query workloads |
//! | [`obs`] | `gtpq-obs` | tracing spans, log-bucketed latency histograms, Prometheus text encoder |
//! | [`service`] | `gtpq-service` | concurrent query service: shared index, result cache, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use gtpq::prelude::*;
//!
//! // A tiny bibliography-like graph.
//! let mut b = GraphBuilder::new();
//! let paper = b.add_node_with_label("inproceedings");
//! let alice = b.add_node_with_attrs([("label", "author".into()), ("value", "Alice".into())]);
//! let title = b.add_node_with_label("title");
//! b.add_edge(paper, alice);
//! b.add_edge(paper, title);
//! let graph = b.build();
//!
//! // Papers by Alice, returning their title element.
//! let mut q = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
//! let root = q.root_id();
//! let author = q.predicate_child(
//!     root,
//!     EdgeKind::Child,
//!     AttrPredicate::label("author").and("value", CmpOp::Eq, "Alice".into()),
//! );
//! let title_node = q.backbone_child(root, EdgeKind::Child, AttrPredicate::label("title"));
//! q.set_structural(root, BoolExpr::Var(author.var()));
//! q.mark_output(title_node);
//! let query = q.build().unwrap();
//!
//! let engine = GteaEngine::new(&graph);
//! let answer = engine.evaluate(&query);
//! assert_eq!(answer.len(), 1);
//! ```

pub use gtpq_analysis as analysis;
pub use gtpq_baselines as baselines;
pub use gtpq_core as engine;
pub use gtpq_datagen as datagen;
pub use gtpq_graph as graph;
pub use gtpq_logic as logic;
pub use gtpq_obs as obs;
pub use gtpq_query as query;
pub use gtpq_reach as reach;
pub use gtpq_service as service;
pub use gtpq_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use gtpq_core::{
        CancelToken, EvalStats, ExecCtl, ExecOptions, Execution, GteaEngine, GteaOptions,
        Interrupt, MatchStream, Planner, QueryPlan,
    };
    pub use gtpq_graph::{AttrValue, DataGraph, GraphBuilder, NodeId};
    pub use gtpq_logic::BoolExpr;
    pub use gtpq_query::{
        parse_query, AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder, ParseError, QueryNodeId,
        ResultSet, TextSpan,
    };
    pub use gtpq_reach::{select_backend, BackendKind, Reachability};
    pub use gtpq_service::{QueryError, QueryOutcome, QueryRequest, QueryService, ServiceConfig};
}
