//! Pivot-based vector-similarity filtering, in the style of PEXESO.
//!
//! Similarity predicates ask for the data vectors within an L2 radius of a
//! query vector (or above a cosine-similarity threshold, which reduces to a
//! conservative L2 radius — see [`cosine_radius`]).  Computing the exact
//! distance to every vector is O(n · dim); this crate implements the
//! *block-and-verify* scheme that prunes most of those computations with the
//! triangle inequality:
//!
//! 1. pick a small set of *pivots* `p_1 … p_k` from the data
//!    ([`select_pivots`], seeded farthest-point so the pivots spread out),
//! 2. precompute the distance table `d(x_i, p_j)` ([`pivot_distances`]),
//! 3. at query time compute the k distances `d(q, p_j)`; any entry with
//!    `|d(q, p_j) − d(x_i, p_j)| > r` for some pivot cannot lie within `r`
//!    of `q` ([`PivotFilter::candidates_within`]), so only the survivors are
//!    *verified* with an exact distance computation.
//!
//! The filter is complete (no false negatives): the triangle inequality
//! guarantees every true answer survives every pivot test.  Selectivity —
//! how few entries survive — is what the pivot-selection quality buys.
//!
//! The crate is pure math over `&[f32]` slices and plain indices; the graph
//! storage layer owns the persistent (owned-or-mapped) representation.

#![warn(missing_docs)]

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
/// Panics when the lengths differ.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// L2 distance between two equal-length vectors.
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a vector.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity of two equal-length vectors; `0.0` when either vector
/// has zero norm (nothing points nowhere).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// A conservative L2 radius `r` such that `cos(x, q) ≥ t` implies
/// `‖x − q‖ ≤ r` for every vector `x` with `‖x‖ ∈ [norm_min, norm_max]`.
///
/// From `‖x − q‖² = ‖x‖² + ‖q‖² − 2‖x‖‖q‖·cos(x, q)`, the similarity bound
/// gives `‖x − q‖² ≤ f(‖x‖)` with `f(s) = s² − 2s‖q‖t + ‖q‖²` — a parabola
/// in `s`, so its maximum over the interval is at an endpoint.  The returned
/// radius therefore lets a cosine predicate ride the L2 pivot filter without
/// false negatives; survivors still need exact cosine verification.
pub fn cosine_radius(q_norm: f32, t: f32, norm_min: f32, norm_max: f32) -> f32 {
    let f = |s: f32| s * s - 2.0 * s * q_norm * t + q_norm * q_norm;
    f(norm_min).max(f(norm_max)).max(0.0).sqrt()
}

/// Selects `k` pivot entries from `data` (row-major, `dim` floats per entry)
/// by seeded farthest-point traversal: the first pivot is the seed-chosen
/// entry, each further pivot is the entry maximizing its distance to the
/// nearest already-chosen pivot.  Deterministic for a given `(data, seed)`.
///
/// Returns at most `min(k, entries)` distinct entry indices.
///
/// # Panics
/// Panics when `dim` is zero or does not divide `data.len()`.
pub fn select_pivots(data: &[f32], dim: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    let n = data.len() / dim;
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let row = |i: usize| &data[i * dim..(i + 1) * dim];
    let first = (seed % n as u64) as usize;
    let mut pivots = vec![first];
    // min_d[i] = distance from entry i to its nearest chosen pivot.
    let mut min_d: Vec<f32> = (0..n).map(|i| l2_sq(row(i), row(first))).collect();
    while pivots.len() < k {
        let (next, &best) = min_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("n > 0");
        if best == 0.0 {
            break; // every remaining entry coincides with a pivot
        }
        pivots.push(next);
        for (i, d) in min_d.iter_mut().enumerate() {
            *d = d.min(l2_sq(row(i), row(next)));
        }
    }
    pivots
}

/// Precomputes the row-major `entries × pivots` distance table
/// `out[i * k + j] = ‖x_i − p_j‖` consumed by [`PivotFilter`].
///
/// # Panics
/// Panics when `dim` is zero or does not divide either slice length.
pub fn pivot_distances(data: &[f32], dim: usize, pivots: &[f32]) -> Vec<f32> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    assert_eq!(
        pivots.len() % dim,
        0,
        "pivot length must be a multiple of dim"
    );
    let n = data.len() / dim;
    let k = pivots.len() / dim;
    let mut out = Vec::with_capacity(n * k);
    for i in 0..n {
        let x = &data[i * dim..(i + 1) * dim];
        for j in 0..k {
            out.push(l2(x, &pivots[j * dim..(j + 1) * dim]));
        }
    }
    out
}

/// The outcome of one [`PivotFilter::candidates_within`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterResult {
    /// Surviving entry indices, ascending.
    pub candidates: Vec<u32>,
    /// Entries the pivot tests pruned (`table len − candidates`).
    pub pruned: u64,
}

/// The block half of block-and-verify: borrowed pivot vectors plus the
/// precomputed entry-to-pivot distance table.
///
/// Both slices typically live inside a mapped snapshot section; the filter
/// itself holds no allocation.
#[derive(Clone, Copy, Debug)]
pub struct PivotFilter<'a> {
    dim: usize,
    k: usize,
    pivots: &'a [f32],
    dists: &'a [f32],
}

impl<'a> PivotFilter<'a> {
    /// Wraps `pivots` (`k × dim`, row-major) and the distance table `dists`
    /// (`entries × k`, row-major, as produced by [`pivot_distances`]).
    ///
    /// # Panics
    /// Panics when `dim` is zero, `dim` does not divide `pivots.len()`, or
    /// `k > 0` and `k` does not divide `dists.len()`.
    pub fn new(dim: usize, pivots: &'a [f32], dists: &'a [f32]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            pivots.len() % dim,
            0,
            "pivot length must be a multiple of dim"
        );
        let k = pivots.len() / dim;
        if k > 0 {
            assert_eq!(
                dists.len() % k,
                0,
                "distance table length must be a multiple of the pivot count"
            );
        } else {
            assert!(dists.is_empty(), "distance table without pivots");
        }
        Self {
            dim,
            k,
            pivots,
            dists,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of pivots.
    pub fn pivot_count(&self) -> usize {
        self.k
    }

    /// Number of entries covered by the distance table.
    pub fn len(&self) -> usize {
        self.dists.len().checked_div(self.k).unwrap_or(0)
    }

    /// Whether the filter covers no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The query's distance to every pivot — the per-query precomputation
    /// shared by all entry tests.
    ///
    /// # Panics
    /// Panics when `query.len() != dim`.
    pub fn query_pivot_dists(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        (0..self.k)
            .map(|j| l2(query, &self.pivots[j * self.dim..(j + 1) * self.dim]))
            .collect()
    }

    /// Whether entry `i` survives every pivot test for a query whose pivot
    /// distances are `qd` (from [`query_pivot_dists`](Self::query_pivot_dists)):
    /// `|qd[j] − d(x_i, p_j)| ≤ radius` for all `j`, with early exit on the
    /// first violated pivot.
    #[inline]
    pub fn survives(&self, i: usize, qd: &[f32], radius: f32) -> bool {
        let row = &self.dists[i * self.k..(i + 1) * self.k];
        row.iter().zip(qd).all(|(d, q)| (d - q).abs() <= radius)
    }

    /// The block step: every entry whose pivot distances are all compatible
    /// with lying within `radius` of `query`.  Guaranteed a superset of the
    /// exact within-radius answer (triangle inequality); callers verify the
    /// survivors with an exact distance computation.
    ///
    /// A non-finite or negative radius yields no candidates.
    ///
    /// # Panics
    /// Panics when `query.len() != dim`.
    pub fn candidates_within(&self, query: &[f32], radius: f32) -> FilterResult {
        let n = self.len();
        if !radius.is_finite() || radius < 0.0 {
            return FilterResult {
                candidates: Vec::new(),
                pruned: n as u64,
            };
        }
        let qd = self.query_pivot_dists(query);
        let mut candidates = Vec::new();
        for i in 0..n {
            if self.survives(i, &qd, radius) {
                candidates.push(i as u32);
            }
        }
        let pruned = (n - candidates.len()) as u64;
        FilterResult { candidates, pruned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random vectors without any RNG dependency.
    fn lcg_vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits to [-1, 1).
            out.push(((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0);
        }
        out
    }

    #[test]
    fn distances_and_cosine() {
        assert_eq!(l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_sq(&[1.0], &[4.0]), 9.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn pivot_selection_is_deterministic_and_spread() {
        let data = lcg_vectors(50, 4, 7);
        let a = select_pivots(&data, 4, 5, 3);
        let b = select_pivots(&data, 4, 5, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "pivots are distinct entries");
        // More pivots than entries: capped, still distinct.
        let tiny = lcg_vectors(3, 4, 1);
        assert_eq!(select_pivots(&tiny, 4, 10, 0).len(), 3);
        // All-identical data: one pivot, no spin.
        let flat = vec![1.0f32; 6 * 4];
        assert_eq!(select_pivots(&flat, 4, 3, 2).len(), 1);
    }

    #[test]
    fn filter_has_no_false_negatives() {
        for seed in 0..8u64 {
            let dim = 6;
            let data = lcg_vectors(80, dim, seed);
            let idx = select_pivots(&data, dim, 4, seed);
            let pivots: Vec<f32> = idx
                .iter()
                .flat_map(|&i| data[i * dim..(i + 1) * dim].to_vec())
                .collect();
            let dists = pivot_distances(&data, dim, &pivots);
            let filter = PivotFilter::new(dim, &pivots, &dists);
            assert_eq!(filter.len(), 80);
            let query = &lcg_vectors(1, dim, seed + 100)[..];
            for radius in [0.1f32, 0.5, 1.0, 2.0] {
                let result = filter.candidates_within(query, radius);
                assert_eq!(
                    result.pruned as usize + result.candidates.len(),
                    filter.len()
                );
                // Sorted, and a superset of the exact answer.
                assert!(result.candidates.windows(2).all(|w| w[0] < w[1]));
                for i in 0..80 {
                    let exact = l2(&data[i * dim..(i + 1) * dim], query) <= radius;
                    if exact {
                        assert!(
                            result.candidates.contains(&(i as u32)),
                            "seed {seed} radius {radius}: entry {i} is a false negative"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn filter_prunes_far_entries() {
        // Two tight clusters far apart: querying one cluster's center must
        // prune the other cluster entirely.
        let dim = 3;
        let mut data = Vec::new();
        for i in 0..20 {
            let eps = i as f32 * 1e-3;
            data.extend_from_slice(&[eps, 0.0, 0.0]);
        }
        for i in 0..20 {
            let eps = i as f32 * 1e-3;
            data.extend_from_slice(&[100.0 + eps, 0.0, 0.0]);
        }
        let idx = select_pivots(&data, dim, 2, 0);
        let pivots: Vec<f32> = idx
            .iter()
            .flat_map(|&i| data[i * dim..(i + 1) * dim].to_vec())
            .collect();
        let dists = pivot_distances(&data, dim, &pivots);
        let filter = PivotFilter::new(dim, &pivots, &dists);
        let result = filter.candidates_within(&[0.0, 0.0, 0.0], 1.0);
        assert_eq!(result.candidates.len(), 20);
        assert_eq!(result.pruned, 20);
    }

    #[test]
    fn degenerate_radii_yield_no_candidates() {
        let data = lcg_vectors(10, 2, 0);
        let pivots = data[0..2].to_vec();
        let dists = pivot_distances(&data, 2, &pivots);
        let filter = PivotFilter::new(2, &pivots, &dists);
        for r in [-1.0f32, f32::NAN, f32::INFINITY] {
            let result = filter.candidates_within(&[0.0, 0.0], r);
            assert!(result.candidates.is_empty(), "radius {r}");
        }
    }

    #[test]
    fn cosine_radius_is_sound() {
        let data = lcg_vectors(60, 5, 11);
        let query = &lcg_vectors(1, 5, 99)[..];
        let norms: Vec<f32> = (0..60).map(|i| norm(&data[i * 5..(i + 1) * 5])).collect();
        let (lo, hi) = norms.iter().fold((f32::INFINITY, 0.0f32), |(lo, hi), &n| {
            (lo.min(n), hi.max(n))
        });
        for t in [-0.5f32, 0.0, 0.3, 0.8, 0.99] {
            let r = cosine_radius(norm(query), t, lo, hi);
            for i in 0..60 {
                let x = &data[i * 5..(i + 1) * 5];
                if cosine(x, query) >= t {
                    assert!(
                        l2(x, query) <= r + 1e-4,
                        "t={t}: cos match at distance {} outside radius {r}",
                        l2(x, query)
                    );
                }
            }
        }
    }
}
