//! Formula transformations: substitution, renaming, simplification, NNF, CNF.
//!
//! These are the building blocks of the paper's §3 machinery:
//! * `fs(u')[p_u/x]` — substituting a constant for a variable (independently
//!   constraint node test, minimization algorithm lines 6, 11, 18),
//! * `f[u1 ↦ u2]` — renaming variables (similarity and homomorphism checks),
//! * substituting whole formulas for variables (transitive structural
//!   predicates `ftr`), and
//! * CNF conversion (used to quantify the B-twig OR-block blow-up).

use std::collections::HashMap;

use crate::expr::{BoolExpr, VarId};

/// Substitutes the constant `value` for every occurrence of `var`.
///
/// This is the paper's `f[p_u / x]` notation.
pub fn substitute_const(expr: &BoolExpr, var: VarId, value: bool) -> BoolExpr {
    substitute(expr, &|v| {
        if v == var {
            Some(if value {
                BoolExpr::True
            } else {
                BoolExpr::False
            })
        } else {
            None
        }
    })
}

/// Substitutes formulas for variables according to `map`; variables not in the
/// map are left untouched.
pub fn substitute_map(expr: &BoolExpr, map: &HashMap<VarId, BoolExpr>) -> BoolExpr {
    substitute(expr, &|v| map.get(&v).cloned())
}

/// Renames variables according to `map` (the paper's `f[u1 ↦ u2]`).
pub fn rename_vars(expr: &BoolExpr, map: &HashMap<VarId, VarId>) -> BoolExpr {
    substitute(expr, &|v| map.get(&v).map(|&nv| BoolExpr::Var(nv)))
}

/// Generic substitution: `lookup` returns the replacement formula for a
/// variable, or `None` to keep it.  Rebuilds with the smart constructors so
/// constants fold away.
pub fn substitute<F>(expr: &BoolExpr, lookup: &F) -> BoolExpr
where
    F: Fn(VarId) -> Option<BoolExpr>,
{
    match expr {
        BoolExpr::True => BoolExpr::True,
        BoolExpr::False => BoolExpr::False,
        BoolExpr::Var(v) => lookup(*v).unwrap_or(BoolExpr::Var(*v)),
        BoolExpr::Not(e) => BoolExpr::not(substitute(e, lookup)),
        BoolExpr::And(items) => BoolExpr::and(items.iter().map(|e| substitute(e, lookup))),
        BoolExpr::Or(items) => BoolExpr::or(items.iter().map(|e| substitute(e, lookup))),
    }
}

/// Light simplification: constant folding, double-negation removal, flattening
/// of nested conjunctions/disjunctions, removal of duplicate operands and
/// detection of complementary literal pairs (`p ∧ ¬p → 0`, `p ∨ ¬p → 1`).
pub fn simplify(expr: &BoolExpr) -> BoolExpr {
    match expr {
        BoolExpr::True | BoolExpr::False | BoolExpr::Var(_) => expr.clone(),
        BoolExpr::Not(e) => BoolExpr::not(simplify(e)),
        BoolExpr::And(items) => {
            let simplified = BoolExpr::and(items.iter().map(simplify));
            dedup_connective(simplified, true)
        }
        BoolExpr::Or(items) => {
            let simplified = BoolExpr::or(items.iter().map(simplify));
            dedup_connective(simplified, false)
        }
    }
}

fn dedup_connective(expr: BoolExpr, is_and: bool) -> BoolExpr {
    let items = match expr {
        BoolExpr::And(items) if is_and => items,
        BoolExpr::Or(items) if !is_and => items,
        other => return other,
    };
    let mut kept: Vec<BoolExpr> = Vec::with_capacity(items.len());
    for item in items {
        if kept.contains(&item) {
            continue;
        }
        // Complementary pair check over literals.
        let complement = BoolExpr::not(item.clone());
        if kept.contains(&complement) {
            return if is_and {
                BoolExpr::False
            } else {
                BoolExpr::True
            };
        }
        kept.push(item);
    }
    if is_and {
        BoolExpr::and(kept)
    } else {
        BoolExpr::or(kept)
    }
}

/// Negation normal form: negation is pushed down to variables.
pub fn to_nnf(expr: &BoolExpr) -> BoolExpr {
    nnf_inner(expr, false)
}

fn nnf_inner(expr: &BoolExpr, negated: bool) -> BoolExpr {
    match expr {
        BoolExpr::True => {
            if negated {
                BoolExpr::False
            } else {
                BoolExpr::True
            }
        }
        BoolExpr::False => {
            if negated {
                BoolExpr::True
            } else {
                BoolExpr::False
            }
        }
        BoolExpr::Var(v) => {
            if negated {
                BoolExpr::Not(Box::new(BoolExpr::Var(*v)))
            } else {
                BoolExpr::Var(*v)
            }
        }
        BoolExpr::Not(e) => nnf_inner(e, !negated),
        BoolExpr::And(items) => {
            let converted = items.iter().map(|e| nnf_inner(e, negated));
            if negated {
                BoolExpr::or(converted)
            } else {
                BoolExpr::and(converted)
            }
        }
        BoolExpr::Or(items) => {
            let converted = items.iter().map(|e| nnf_inner(e, negated));
            if negated {
                BoolExpr::and(converted)
            } else {
                BoolExpr::or(converted)
            }
        }
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The variable.
    pub var: VarId,
    /// `false` when the literal is the negation of the variable.
    pub positive: bool,
}

impl Literal {
    /// The complementary literal.
    pub fn negated(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A CNF formula: a conjunction of clauses, each a disjunction of literals.
///
/// `clauses` empty means `true`; an empty clause means `false`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// The clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl Cnf {
    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses (the formula `true`).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Total number of literal occurrences; the "size" of the CNF, used to
    /// demonstrate the exponential OR-block blow-up of B-twig normalisation.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }
}

/// Converts a formula to CNF by NNF + distribution.
///
/// Worst-case exponential, exactly like the OR-block construction the paper
/// criticises; GTPQ evaluation never calls this, only the analysis of
/// competing query representations does.
pub fn to_cnf(expr: &BoolExpr) -> Cnf {
    let nnf = to_nnf(&simplify(expr));
    let clauses = cnf_clauses(&nnf);
    let mut normalized: Vec<Vec<Literal>> = Vec::new();
    'outer: for mut clause in clauses {
        clause.sort_unstable();
        clause.dedup();
        // Drop tautological clauses containing p and !p.
        for lit in &clause {
            if clause.contains(&lit.negated()) {
                continue 'outer;
            }
        }
        if !normalized.contains(&clause) {
            normalized.push(clause);
        }
    }
    Cnf {
        clauses: normalized,
    }
}

fn cnf_clauses(expr: &BoolExpr) -> Vec<Vec<Literal>> {
    match expr {
        BoolExpr::True => vec![],
        BoolExpr::False => vec![vec![]],
        BoolExpr::Var(v) => vec![vec![Literal {
            var: *v,
            positive: true,
        }]],
        BoolExpr::Not(inner) => match **inner {
            BoolExpr::Var(v) => vec![vec![Literal {
                var: v,
                positive: false,
            }]],
            _ => unreachable!("input must be in NNF"),
        },
        BoolExpr::And(items) => items.iter().flat_map(cnf_clauses).collect(),
        BoolExpr::Or(items) => {
            let mut result: Vec<Vec<Literal>> = vec![vec![]];
            for item in items {
                let item_clauses = cnf_clauses(item);
                let mut next = Vec::with_capacity(result.len() * item_clauses.len().max(1));
                for r in &result {
                    for c in &item_clauses {
                        let mut merged = r.clone();
                        merged.extend_from_slice(c);
                        next.push(merged);
                    }
                }
                result = next;
                if result.is_empty() {
                    // One disjunct was `true`: the whole disjunction is true.
                    return vec![];
                }
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sat::{brute_force_equivalent, equivalent};

    use super::*;

    fn sample() -> BoolExpr {
        // (p1 & !p2) | (p3 & (p1 | p2))
        BoolExpr::or2(
            BoolExpr::and2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(2))),
            BoolExpr::and2(
                BoolExpr::var(3),
                BoolExpr::or2(BoolExpr::var(1), BoolExpr::var(2)),
            ),
        )
    }

    #[test]
    fn substitute_const_folds() {
        let e = BoolExpr::and2(
            BoolExpr::var(1),
            BoolExpr::or2(BoolExpr::var(2), BoolExpr::var(3)),
        );
        assert_eq!(substitute_const(&e, VarId(1), false), BoolExpr::False);
        assert_eq!(
            substitute_const(&e, VarId(2), true),
            BoolExpr::var(1),
            "p1 & (1 | p3) simplifies to p1"
        );
    }

    #[test]
    fn rename_and_map_substitution() {
        let e = BoolExpr::and2(BoolExpr::var(1), BoolExpr::var(2));
        let mut rename = HashMap::new();
        rename.insert(VarId(1), VarId(9));
        assert_eq!(
            rename_vars(&e, &rename),
            BoolExpr::and2(BoolExpr::var(9), BoolExpr::var(2))
        );
        let mut map = HashMap::new();
        map.insert(VarId(2), BoolExpr::or2(BoolExpr::var(5), BoolExpr::var(6)));
        let sub = substitute_map(&e, &map);
        assert_eq!(
            sub,
            BoolExpr::and2(
                BoolExpr::var(1),
                BoolExpr::or2(BoolExpr::var(5), BoolExpr::var(6))
            )
        );
    }

    #[test]
    fn simplify_removes_duplicates_and_complements() {
        let e = BoolExpr::And(vec![BoolExpr::var(1), BoolExpr::var(1), BoolExpr::var(2)]);
        assert_eq!(
            simplify(&e),
            BoolExpr::and2(BoolExpr::var(1), BoolExpr::var(2))
        );
        let contradiction = BoolExpr::And(vec![BoolExpr::var(1), BoolExpr::not(BoolExpr::var(1))]);
        assert_eq!(simplify(&contradiction), BoolExpr::False);
        let tautology = BoolExpr::Or(vec![BoolExpr::var(1), BoolExpr::not(BoolExpr::var(1))]);
        assert_eq!(simplify(&tautology), BoolExpr::True);
    }

    #[test]
    fn nnf_pushes_negation_to_variables() {
        let e = BoolExpr::not(BoolExpr::and2(
            BoolExpr::var(1),
            BoolExpr::not(BoolExpr::var(2)),
        ));
        let nnf = to_nnf(&e);
        assert_eq!(
            nnf,
            BoolExpr::or2(BoolExpr::not(BoolExpr::var(1)), BoolExpr::var(2))
        );
        assert!(equivalent(&e, &nnf));
    }

    #[test]
    fn transformations_preserve_equivalence() {
        let e = sample();
        assert!(brute_force_equivalent(&e, &simplify(&e)));
        assert!(brute_force_equivalent(&e, &to_nnf(&e)));
    }

    #[test]
    fn cnf_is_equivalent_and_clausal() {
        let e = sample();
        let cnf = to_cnf(&e);
        assert!(!cnf.is_empty());
        // Rebuild a BoolExpr from the CNF and compare.
        let rebuilt = BoolExpr::and(cnf.clauses.iter().map(|clause| {
            BoolExpr::or(clause.iter().map(|lit| {
                if lit.positive {
                    BoolExpr::Var(lit.var)
                } else {
                    BoolExpr::not(BoolExpr::Var(lit.var))
                }
            }))
        }));
        assert!(brute_force_equivalent(&e, &rebuilt));
        assert!(cnf.literal_count() >= cnf.len());
    }

    #[test]
    fn cnf_of_constants() {
        assert!(to_cnf(&BoolExpr::True).is_empty());
        let f = to_cnf(&BoolExpr::False);
        assert_eq!(f.clauses, vec![Vec::<Literal>::new()]);
    }

    #[test]
    fn cnf_blowup_is_observable() {
        // (a1 & b1) | (a2 & b2) | ... : CNF has 2^k clauses.
        let k = 4;
        let dnf = BoolExpr::or(
            (0..k).map(|i| BoolExpr::and2(BoolExpr::var(2 * i), BoolExpr::var(2 * i + 1))),
        );
        let cnf = to_cnf(&dnf);
        assert_eq!(cnf.len(), 1 << k);
    }
}
