//! A tiny parser for propositional formulas.
//!
//! Grammar (standard precedence `!` > `&` > `|`):
//!
//! ```text
//! expr    := or
//! or      := and ( '|' and )*
//! and     := unary ( '&' unary )*
//! unary   := '!' unary | atom
//! atom    := '1' | '0' | ident | '(' expr ')'
//! ident   := 'p'? [0-9]+  |  name           (names resolved by a callback)
//! ```
//!
//! Numeric identifiers (`p3` or `3`) map directly to [`VarId`]s; symbolic
//! names are resolved through a user-supplied lookup so the query DSL can use
//! query-node names (`bidder | seller`).

use crate::expr::{BoolExpr, VarId};

/// Error produced by the formula parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula whose variables are numeric (`p1`, `2`, ...).
pub fn parse(input: &str) -> Result<BoolExpr, ParseError> {
    parse_with(input, &mut |name, pos| {
        Err(ParseError {
            position: pos,
            message: format!("unknown variable name `{name}` (only numeric variables allowed)"),
        })
    })
}

/// Parses a formula, resolving non-numeric identifiers through `resolve`.
pub fn parse_with<F>(input: &str, resolve: &mut F) -> Result<BoolExpr, ParseError>
where
    F: FnMut(&str, usize) -> Result<VarId, ParseError>,
{
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let expr = parser.parse_or(resolve)?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(ParseError {
            position: parser.pos,
            message: "unexpected trailing input".to_owned(),
        });
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn parse_or<F>(&mut self, resolve: &mut F) -> Result<BoolExpr, ParseError>
    where
        F: FnMut(&str, usize) -> Result<VarId, ParseError>,
    {
        let mut items = vec![self.parse_and(resolve)?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            items.push(self.parse_and(resolve)?);
        }
        Ok(BoolExpr::or(items))
    }

    fn parse_and<F>(&mut self, resolve: &mut F) -> Result<BoolExpr, ParseError>
    where
        F: FnMut(&str, usize) -> Result<VarId, ParseError>,
    {
        let mut items = vec![self.parse_unary(resolve)?];
        while self.peek() == Some(b'&') {
            self.pos += 1;
            items.push(self.parse_unary(resolve)?);
        }
        Ok(BoolExpr::and(items))
    }

    fn parse_unary<F>(&mut self, resolve: &mut F) -> Result<BoolExpr, ParseError>
    where
        F: FnMut(&str, usize) -> Result<VarId, ParseError>,
    {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(BoolExpr::not(self.parse_unary(resolve)?))
            }
            _ => self.parse_atom(resolve),
        }
    }

    fn parse_atom<F>(&mut self, resolve: &mut F) -> Result<BoolExpr, ParseError>
    where
        F: FnMut(&str, usize) -> Result<VarId, ParseError>,
    {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_or(resolve)?;
                if self.peek() != Some(b')') {
                    return Err(ParseError {
                        position: self.pos,
                        message: "expected `)`".to_owned(),
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_alphanumeric()
                        || self.input[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let token = std::str::from_utf8(&self.input[start..self.pos])
                    .expect("ascii slice is valid utf8");
                match token {
                    "1" | "true" => Ok(BoolExpr::True),
                    "0" | "false" => Ok(BoolExpr::False),
                    _ => {
                        // `p<digits>` or bare digits are numeric variables.
                        let numeric = token.strip_prefix('p').unwrap_or(token);
                        if !numeric.is_empty() && numeric.bytes().all(|b| b.is_ascii_digit()) {
                            let id: u32 = numeric.parse().map_err(|_| ParseError {
                                position: start,
                                message: format!("variable id `{numeric}` out of range"),
                            })?;
                            Ok(BoolExpr::Var(VarId(id)))
                        } else {
                            resolve(token, start).map(BoolExpr::Var)
                        }
                    }
                }
            }
            other => Err(ParseError {
                position: self.pos,
                message: format!("expected formula atom, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence_correctly() {
        let e = parse("p1 | p2 & !p3").unwrap();
        assert_eq!(
            e,
            BoolExpr::or2(
                BoolExpr::var(1),
                BoolExpr::and2(BoolExpr::var(2), BoolExpr::not(BoolExpr::var(3)))
            )
        );
    }

    #[test]
    fn parses_parentheses_and_constants() {
        let e = parse("(p1 | p2) & 1 & !0").unwrap();
        assert_eq!(e, BoolExpr::or2(BoolExpr::var(1), BoolExpr::var(2)));
        assert_eq!(parse("1").unwrap(), BoolExpr::True);
        assert_eq!(parse("false").unwrap(), BoolExpr::False);
    }

    #[test]
    fn bare_digits_are_variables_unless_constant() {
        assert_eq!(parse("5").unwrap(), BoolExpr::var(5));
        assert_eq!(parse("p12").unwrap(), BoolExpr::var(12));
    }

    #[test]
    fn named_variables_need_resolver() {
        assert!(parse("bidder | seller").is_err());
        let e = parse_with("bidder | seller", &mut |name, _| {
            Ok(VarId(if name == "bidder" { 10 } else { 20 }))
        })
        .unwrap();
        assert_eq!(e, BoolExpr::or2(BoolExpr::var(10), BoolExpr::var(20)));
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = parse("p1 &").unwrap_err();
        assert!(err.position >= 4);
        let err = parse("(p1").unwrap_err();
        assert!(err.message.contains(")"));
        let err = parse("p1 p2").unwrap_err();
        assert!(err.message.contains("trailing"));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn round_trips_display() {
        let original = "(p1 | !p2) & p3";
        let parsed = parse(original).unwrap();
        assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
    }
}
