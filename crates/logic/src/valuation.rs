//! Truth assignments and formula evaluation.

use crate::expr::{BoolExpr, VarId};

/// A (possibly partial) truth assignment to propositional variables.
///
/// Variables are dense (they are query-node ids), so the assignment is a
/// plain vector indexed by [`VarId`].  Unassigned variables evaluate as
/// `false`, matching the paper's valuation `val[p] := 0` initialisation in
/// `PruneDownward`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    values: Vec<bool>,
}

impl Valuation {
    /// Creates an all-false valuation able to hold `n` variables.
    pub fn new(n: usize) -> Self {
        Self {
            values: vec![false; n],
        }
    }

    /// Creates a valuation from an explicit vector of truth values.
    pub fn from_vec(values: Vec<bool>) -> Self {
        Self { values }
    }

    /// Sets variable `var` to `value`, growing the assignment if needed.
    pub fn set(&mut self, var: VarId, value: bool) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, false);
        }
        self.values[var.index()] = value;
    }

    /// The value of `var` (false when unassigned).
    #[inline]
    pub fn get(&self, var: VarId) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Resets every variable to false, keeping the capacity.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = false);
    }

    /// Number of variables with capacity in this valuation.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the valuation holds no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluates `expr` under this valuation.
    pub fn eval(&self, expr: &BoolExpr) -> bool {
        match expr {
            BoolExpr::True => true,
            BoolExpr::False => false,
            BoolExpr::Var(v) => self.get(*v),
            BoolExpr::Not(e) => !self.eval(e),
            BoolExpr::And(items) => items.iter().all(|e| self.eval(e)),
            BoolExpr::Or(items) => items.iter().any(|e| self.eval(e)),
        }
    }
}

/// Evaluates `expr` under the assignment given by `lookup`.
///
/// Convenience for callers that already have truth values in another
/// structure (for example `val[p_u']` computed from reachability checks).
pub fn eval_with<F: Fn(VarId) -> bool>(expr: &BoolExpr, lookup: &F) -> bool {
    match expr {
        BoolExpr::True => true,
        BoolExpr::False => false,
        BoolExpr::Var(v) => lookup(*v),
        BoolExpr::Not(e) => !eval_with(e, lookup),
        BoolExpr::And(items) => items.iter().all(|e| eval_with(e, lookup)),
        BoolExpr::Or(items) => items.iter().any(|e| eval_with(e, lookup)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_connectives() {
        let mut v = Valuation::new(3);
        v.set(VarId(0), true);
        v.set(VarId(2), true);
        let e = BoolExpr::and2(
            BoolExpr::var(0),
            BoolExpr::or2(BoolExpr::var(1), BoolExpr::var(2)),
        );
        assert!(v.eval(&e));
        let e2 = BoolExpr::and2(BoolExpr::var(0), BoolExpr::var(1));
        assert!(!v.eval(&e2));
        assert!(v.eval(&BoolExpr::not(BoolExpr::var(1))));
        assert!(v.eval(&BoolExpr::True));
        assert!(!v.eval(&BoolExpr::False));
    }

    #[test]
    fn unassigned_variables_default_to_false() {
        let v = Valuation::new(0);
        assert!(!v.get(VarId(7)));
        assert!(!v.eval(&BoolExpr::var(7)));
    }

    #[test]
    fn set_grows_and_clear_resets() {
        let mut v = Valuation::new(1);
        v.set(VarId(5), true);
        assert!(v.get(VarId(5)));
        assert_eq!(v.len(), 6);
        v.clear();
        assert!(!v.get(VarId(5)));
        assert!(!v.is_empty());
    }

    #[test]
    fn eval_with_closure() {
        let e = BoolExpr::or2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(2)));
        assert!(eval_with(&e, &|v| v == VarId(1)));
        assert!(!eval_with(&e, &|v| v == VarId(2)));
    }
}
