//! Propositional formula AST.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a propositional variable.
///
/// In GTPQ structural predicates, variable `VarId(i)` is the variable `p_u`
/// of the query node with id `i`, so the mapping between query nodes and
/// variables is the identity and needs no table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A propositional formula over [`VarId`] variables.
///
/// Connectives are n-ary conjunction and disjunction plus negation, which is
/// exactly the propositional language of GTPQ structural predicates.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolExpr {
    /// The constant `1` (true). `fs(u) = 1` for nodes with no predicate children.
    True,
    /// The constant `0` (false).
    False,
    /// A propositional variable.
    Var(VarId),
    /// Negation.
    Not(Box<BoolExpr>),
    /// N-ary conjunction. An empty conjunction is `True`.
    And(Vec<BoolExpr>),
    /// N-ary disjunction. An empty disjunction is `False`.
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// Variable constructor.
    pub fn var(id: u32) -> Self {
        BoolExpr::Var(VarId(id))
    }

    /// Negation with light simplification of constants and double negation.
    ///
    /// Deliberately an associated constructor (like [`var`](Self::var)), not
    /// the `std::ops::Not` trait: it consumes an operand by value.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: BoolExpr) -> Self {
        match e {
            BoolExpr::True => BoolExpr::False,
            BoolExpr::False => BoolExpr::True,
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Conjunction of an iterator of formulas with constant folding.
    pub fn and<I: IntoIterator<Item = BoolExpr>>(items: I) -> Self {
        let mut out = Vec::new();
        for item in items {
            match item {
                BoolExpr::True => {}
                BoolExpr::False => return BoolExpr::False,
                BoolExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolExpr::True,
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::And(out),
        }
    }

    /// Disjunction of an iterator of formulas with constant folding.
    pub fn or<I: IntoIterator<Item = BoolExpr>>(items: I) -> Self {
        let mut out = Vec::new();
        for item in items {
            match item {
                BoolExpr::False => {}
                BoolExpr::True => return BoolExpr::True,
                BoolExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BoolExpr::False,
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::Or(out),
        }
    }

    /// Binary conjunction.
    pub fn and2(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::and([a, b])
    }

    /// Binary disjunction.
    pub fn or2(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::or([a, b])
    }

    /// Material implication `a → b` as `¬a ∨ b`.
    pub fn implies(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::or2(BoolExpr::not(a), b)
    }

    /// Exclusive or `a ⊕ b` as `(a ∧ ¬b) ∨ (¬a ∧ b)`.
    pub fn xor(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::or2(
            BoolExpr::and2(a.clone(), BoolExpr::not(b.clone())),
            BoolExpr::and2(BoolExpr::not(a), b),
        )
    }

    /// The set of variables occurring in the formula, sorted.
    pub fn variables(&self) -> Vec<VarId> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::Var(v) => {
                out.insert(*v);
            }
            BoolExpr::Not(e) => e.collect_vars(out),
            BoolExpr::And(items) | BoolExpr::Or(items) => {
                for item in items {
                    item.collect_vars(out);
                }
            }
        }
    }

    /// Whether the variable occurs in the formula.
    pub fn contains_var(&self, var: VarId) -> bool {
        match self {
            BoolExpr::True | BoolExpr::False => false,
            BoolExpr::Var(v) => *v == var,
            BoolExpr::Not(e) => e.contains_var(var),
            BoolExpr::And(items) | BoolExpr::Or(items) => items.iter().any(|e| e.contains_var(var)),
        }
    }

    /// Whether the formula contains no negation (union-conjunctive check).
    pub fn is_negation_free(&self) -> bool {
        match self {
            BoolExpr::True | BoolExpr::False | BoolExpr::Var(_) => true,
            BoolExpr::Not(_) => false,
            BoolExpr::And(items) | BoolExpr::Or(items) => {
                items.iter().all(BoolExpr::is_negation_free)
            }
        }
    }

    /// Whether the formula uses only conjunction over variables/constants
    /// (conjunctive GTPQ check).
    pub fn is_conjunctive(&self) -> bool {
        match self {
            BoolExpr::True | BoolExpr::False | BoolExpr::Var(_) => true,
            BoolExpr::Not(_) | BoolExpr::Or(_) => false,
            BoolExpr::And(items) => items.iter().all(BoolExpr::is_conjunctive),
        }
    }

    /// Number of AST nodes; a rough size measure used in tests and stats.
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::True | BoolExpr::False | BoolExpr::Var(_) => 1,
            BoolExpr::Not(e) => 1 + e.size(),
            BoolExpr::And(items) | BoolExpr::Or(items) => {
                1 + items.iter().map(BoolExpr::size).sum::<usize>()
            }
        }
    }
}

/// Adapter returned by [`BoolExpr::display_with`]: renders a formula with a
/// caller-supplied variable renderer while keeping the operator precedence
/// and parenthesization rules of the plain [`Display`](fmt::Display) output.
pub struct DisplayWith<'e, F> {
    expr: &'e BoolExpr,
    atom: F,
}

impl<F> DisplayWith<'_, F>
where
    F: Fn(VarId, &mut fmt::Formatter<'_>) -> fmt::Result,
{
    // Or never nests directly inside Or (the smart constructors flatten it),
    // so the only parenthesization needed is around Or-in-And and around
    // compound operands of Not.
    fn fmt_prec(&self, e: &BoolExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            BoolExpr::True => write!(f, "1"),
            BoolExpr::False => write!(f, "0"),
            BoolExpr::Var(v) => (self.atom)(*v, f),
            BoolExpr::Not(inner) => {
                write!(f, "!")?;
                match **inner {
                    BoolExpr::And(_) | BoolExpr::Or(_) => {
                        write!(f, "(")?;
                        self.fmt_prec(inner, f)?;
                        write!(f, ")")
                    }
                    _ => self.fmt_prec(inner, f),
                }
            }
            BoolExpr::And(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    match item {
                        BoolExpr::Or(_) => {
                            write!(f, "(")?;
                            self.fmt_prec(item, f)?;
                            write!(f, ")")?;
                        }
                        _ => self.fmt_prec(item, f)?,
                    }
                }
                Ok(())
            }
            BoolExpr::Or(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    self.fmt_prec(item, f)?;
                }
                Ok(())
            }
        }
    }
}

impl<F> fmt::Display for DisplayWith<'_, F>
where
    F: Fn(VarId, &mut fmt::Formatter<'_>) -> fmt::Result,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.expr, f)
    }
}

impl BoolExpr {
    /// Renders the formula with a custom variable renderer, reusing the
    /// precedence and parenthesization machinery of the [`fmt::Display`]
    /// implementation.
    ///
    /// The GTPQ query language uses this to print structural predicates with
    /// each variable expanded into the pattern of the predicate child it
    /// stands for.  The renderer is a `Fn` (not `FnMut`) because formatting
    /// takes `&self`; stateful renderers can capture a
    /// [`RefCell`](std::cell::RefCell).
    ///
    /// ```
    /// use gtpq_logic::BoolExpr;
    /// let e = BoolExpr::or2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(2)));
    /// let text = format!("{}", e.display_with(|v, f| write!(f, "<{}>", v.0)));
    /// assert_eq!(text, "<1> | !<2>");
    /// ```
    pub fn display_with<F>(&self, atom: F) -> DisplayWith<'_, F>
    where
        F: Fn(VarId, &mut fmt::Formatter<'_>) -> fmt::Result,
    {
        DisplayWith { expr: self, atom }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.display_with(|v, f| write!(f, "{v}")).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(
            BoolExpr::and([BoolExpr::True, BoolExpr::var(1)]),
            BoolExpr::var(1)
        );
        assert_eq!(
            BoolExpr::and([BoolExpr::False, BoolExpr::var(1)]),
            BoolExpr::False
        );
        assert_eq!(
            BoolExpr::or([BoolExpr::False, BoolExpr::var(2)]),
            BoolExpr::var(2)
        );
        assert_eq!(
            BoolExpr::or([BoolExpr::True, BoolExpr::var(2)]),
            BoolExpr::True
        );
        assert_eq!(BoolExpr::and(Vec::<BoolExpr>::new()), BoolExpr::True);
        assert_eq!(BoolExpr::or(Vec::<BoolExpr>::new()), BoolExpr::False);
    }

    #[test]
    fn nested_connectives_are_flattened() {
        let e = BoolExpr::and([
            BoolExpr::and([BoolExpr::var(1), BoolExpr::var(2)]),
            BoolExpr::var(3),
        ]);
        assert_eq!(
            e,
            BoolExpr::And(vec![BoolExpr::var(1), BoolExpr::var(2), BoolExpr::var(3)])
        );
    }

    #[test]
    fn double_negation_is_removed() {
        let e = BoolExpr::not(BoolExpr::not(BoolExpr::var(5)));
        assert_eq!(e, BoolExpr::var(5));
    }

    #[test]
    fn variables_are_sorted_and_deduplicated() {
        let e = BoolExpr::or2(
            BoolExpr::and2(BoolExpr::var(3), BoolExpr::var(1)),
            BoolExpr::var(3),
        );
        assert_eq!(e.variables(), vec![VarId(1), VarId(3)]);
        assert!(e.contains_var(VarId(1)));
        assert!(!e.contains_var(VarId(2)));
    }

    #[test]
    fn classification_predicates() {
        let conj = BoolExpr::and2(BoolExpr::var(1), BoolExpr::var(2));
        let disj = BoolExpr::or2(BoolExpr::var(1), BoolExpr::var(2));
        let neg = BoolExpr::not(BoolExpr::var(1));
        assert!(conj.is_conjunctive() && conj.is_negation_free());
        assert!(!disj.is_conjunctive() && disj.is_negation_free());
        assert!(!neg.is_negation_free() && !neg.is_conjunctive());
    }

    #[test]
    fn display_is_readable() {
        let e = BoolExpr::and2(
            BoolExpr::or2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(2))),
            BoolExpr::var(3),
        );
        assert_eq!(e.to_string(), "(p1 | !p2) & p3");
    }

    #[test]
    fn size_counts_ast_nodes() {
        let e = BoolExpr::and2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(2)));
        assert_eq!(e.size(), 4);
    }
}
