//! Propositional logic engine for GTPQ structural predicates.
//!
//! Structural predicates of the paper (§2) are propositional formulas over
//! variables `p_u` associated with query nodes, built from conjunction,
//! disjunction and negation.  The fundamental-problem algorithms (§3) need
//! substitution, implication/tautology checking and satisfiability, and the
//! baseline comparison needs CNF conversion (the B-twig "OR-block"
//! normalisation).  This crate provides all of that:
//!
//! * [`BoolExpr`] — the formula AST with smart constructors,
//! * [`Valuation`] — truth assignments and evaluation,
//! * [`transform`] — substitution, renaming, simplification, NNF, CNF,
//! * [`sat`] — a DPLL SAT solver plus tautology / implication / equivalence
//!   checks (and a brute-force reference used in tests),
//! * [`parser`] — a tiny text syntax (`"p1 & (!p2 | p3)"`) used by examples
//!   and the query DSL.

pub mod expr;
pub mod parser;
pub mod sat;
pub mod transform;
pub mod valuation;

pub use expr::{BoolExpr, DisplayWith, VarId};
pub use parser::{parse, ParseError};
pub use sat::{brute_force_satisfiable, equivalent, implies, is_satisfiable, is_tautology};
pub use valuation::Valuation;
