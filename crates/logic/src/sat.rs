//! Satisfiability and derived decision procedures.
//!
//! The paper reduces GTPQ satisfiability, containment and minimization to
//! propositional SAT / tautology checks (Theorems 1–6) and notes that query
//! sizes are small in practice, so an exact solver is appropriate.  We use a
//! DPLL solver with unit propagation and pure-literal elimination over the
//! CNF produced by [`transform::to_cnf`](crate::transform::to_cnf); a
//! brute-force truth-table check is kept as a cross-validation oracle.

use std::collections::HashMap;

use crate::expr::{BoolExpr, VarId};
use crate::transform::{to_cnf, Cnf, Literal};
use crate::valuation::Valuation;

/// Whether `expr` is satisfiable.
pub fn is_satisfiable(expr: &BoolExpr) -> bool {
    satisfying_assignment(expr).is_some()
}

/// Returns a satisfying assignment of `expr`, if one exists.
///
/// Only the variables occurring in `expr` are meaningful in the returned
/// valuation; all others are false.
pub fn satisfying_assignment(expr: &BoolExpr) -> Option<Valuation> {
    let cnf = to_cnf(expr);
    let mut assignment: HashMap<VarId, bool> = HashMap::new();
    if dpll(cnf.clauses.clone(), &mut assignment) {
        let mut v = Valuation::new(0);
        for (var, value) in assignment {
            v.set(var, value);
        }
        Some(v)
    } else {
        None
    }
}

/// Whether `expr` is a tautology.
pub fn is_tautology(expr: &BoolExpr) -> bool {
    !is_satisfiable(&BoolExpr::not(expr.clone()))
}

/// Whether `a → b` is a tautology.
pub fn implies(a: &BoolExpr, b: &BoolExpr) -> bool {
    !is_satisfiable(&BoolExpr::and2(a.clone(), BoolExpr::not(b.clone())))
}

/// Whether `a` and `b` are logically equivalent.
pub fn equivalent(a: &BoolExpr, b: &BoolExpr) -> bool {
    implies(a, b) && implies(b, a)
}

/// Whether the CNF is satisfiable (entry point when a caller already has CNF).
pub fn cnf_satisfiable(cnf: &Cnf) -> bool {
    let mut assignment = HashMap::new();
    dpll(cnf.clauses.clone(), &mut assignment)
}

/// DPLL with unit propagation and pure-literal elimination.
fn dpll(mut clauses: Vec<Vec<Literal>>, assignment: &mut HashMap<VarId, bool>) -> bool {
    loop {
        if clauses.is_empty() {
            return true;
        }
        if clauses.iter().any(Vec::is_empty) {
            return false;
        }
        // Unit propagation.
        if let Some(unit) = clauses.iter().find(|c| c.len() == 1).map(|c| c[0]) {
            assignment.insert(unit.var, unit.positive);
            clauses = assign(&clauses, unit);
            continue;
        }
        // Pure literal elimination.
        if let Some(pure) = find_pure_literal(&clauses) {
            assignment.insert(pure.var, pure.positive);
            clauses = assign(&clauses, pure);
            continue;
        }
        break;
    }

    // Branch on the most frequent variable.
    let var = most_frequent_var(&clauses).expect("non-empty clauses have variables");
    for &value in &[true, false] {
        let lit = Literal {
            var,
            positive: value,
        };
        let mut local = assignment.clone();
        local.insert(var, value);
        if dpll(assign(&clauses, lit), &mut local) {
            *assignment = local;
            return true;
        }
    }
    false
}

/// Applies a literal assignment: satisfied clauses are dropped, the
/// complementary literal is removed from the remaining clauses.
fn assign(clauses: &[Vec<Literal>], lit: Literal) -> Vec<Vec<Literal>> {
    let mut out = Vec::with_capacity(clauses.len());
    for clause in clauses {
        if clause.contains(&lit) {
            continue;
        }
        let filtered: Vec<Literal> = clause
            .iter()
            .copied()
            .filter(|l| *l != lit.negated())
            .collect();
        out.push(filtered);
    }
    out
}

fn find_pure_literal(clauses: &[Vec<Literal>]) -> Option<Literal> {
    let mut polarity: HashMap<VarId, (bool, bool)> = HashMap::new();
    for clause in clauses {
        for lit in clause {
            let entry = polarity.entry(lit.var).or_insert((false, false));
            if lit.positive {
                entry.0 = true;
            } else {
                entry.1 = true;
            }
        }
    }
    polarity
        .into_iter()
        .find(|(_, (pos, neg))| pos != neg)
        .map(|(var, (pos, _))| Literal { var, positive: pos })
}

fn most_frequent_var(clauses: &[Vec<Literal>]) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    for clause in clauses {
        for lit in clause {
            *counts.entry(lit.var).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
        .map(|(var, _)| var)
}

/// Brute-force satisfiability over all `2^n` assignments.
///
/// Test oracle only; panics if the formula has more than 24 variables.
pub fn brute_force_satisfiable(expr: &BoolExpr) -> bool {
    let vars = expr.variables();
    assert!(vars.len() <= 24, "brute force limited to 24 variables");
    let mut v = Valuation::new(0);
    for mask in 0u32..(1u32 << vars.len()) {
        for (i, &var) in vars.iter().enumerate() {
            v.set(var, mask & (1 << i) != 0);
        }
        if v.eval(expr) {
            return true;
        }
    }
    vars.is_empty() && v.eval(expr)
}

/// Brute-force logical equivalence (test oracle).
pub fn brute_force_equivalent(a: &BoolExpr, b: &BoolExpr) -> bool {
    let mut vars = a.variables();
    vars.extend(b.variables());
    vars.sort_unstable();
    vars.dedup();
    assert!(vars.len() <= 24, "brute force limited to 24 variables");
    let mut v = Valuation::new(0);
    for mask in 0u32..(1u32 << vars.len()) {
        for (i, &var) in vars.iter().enumerate() {
            v.set(var, mask & (1 << i) != 0);
        }
        if v.eval(a) != v.eval(b) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sat_and_unsat() {
        let sat = BoolExpr::and2(
            BoolExpr::var(1),
            BoolExpr::or2(BoolExpr::var(2), BoolExpr::var(3)),
        );
        assert!(is_satisfiable(&sat));
        let unsat = BoolExpr::and2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(1)));
        assert!(!is_satisfiable(&unsat));
        assert!(is_satisfiable(&BoolExpr::True));
        assert!(!is_satisfiable(&BoolExpr::False));
    }

    #[test]
    fn satisfying_assignment_satisfies() {
        let e = BoolExpr::and2(
            BoolExpr::or2(BoolExpr::var(1), BoolExpr::var(2)),
            BoolExpr::and2(BoolExpr::not(BoolExpr::var(1)), BoolExpr::var(3)),
        );
        let v = satisfying_assignment(&e).expect("satisfiable");
        assert!(v.eval(&e));
        assert!(satisfying_assignment(&BoolExpr::False).is_none());
    }

    #[test]
    fn tautology_and_implication() {
        let taut = BoolExpr::or2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(1)));
        assert!(is_tautology(&taut));
        assert!(!is_tautology(&BoolExpr::var(1)));
        let a = BoolExpr::and2(BoolExpr::var(1), BoolExpr::var(2));
        let b = BoolExpr::var(1);
        assert!(implies(&a, &b));
        assert!(!implies(&b, &a));
        assert!(equivalent(
            &a,
            &BoolExpr::and2(BoolExpr::var(2), BoolExpr::var(1))
        ));
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_fixed_formulas() {
        let formulas = vec![
            BoolExpr::and([
                BoolExpr::or2(BoolExpr::var(0), BoolExpr::var(1)),
                BoolExpr::or2(BoolExpr::not(BoolExpr::var(0)), BoolExpr::var(2)),
                BoolExpr::or2(
                    BoolExpr::not(BoolExpr::var(1)),
                    BoolExpr::not(BoolExpr::var(2)),
                ),
            ]),
            BoolExpr::and([
                BoolExpr::var(0),
                BoolExpr::or2(BoolExpr::not(BoolExpr::var(0)), BoolExpr::var(1)),
                BoolExpr::not(BoolExpr::var(1)),
            ]),
            BoolExpr::xor(BoolExpr::var(3), BoolExpr::var(4)),
        ];
        for f in formulas {
            assert_eq!(is_satisfiable(&f), brute_force_satisfiable(&f), "{f}");
        }
    }

    #[test]
    fn cnf_satisfiable_entry_point() {
        let e = BoolExpr::and2(BoolExpr::var(1), BoolExpr::not(BoolExpr::var(1)));
        let cnf = to_cnf(&e);
        assert!(!cnf_satisfiable(&cnf));
    }
}
