//! Ablation of GTEA's design decisions (upward pruning, contour merging,
//! prime-subtree shrinking) plus HGJoin+ vs HGJoin* — the graph-vs-tuple
//! intermediate representation comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{HgJoin, TpqAlgorithm};
use gtpq_bench::workloads::xmark_graph;
use gtpq_core::{GteaEngine, GteaOptions};
use gtpq_datagen::xmark_q3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = xmark_graph(1.0);
    let q = xmark_q3(0, 3, 7);
    for (name, options) in [
        ("full", GteaOptions::default()),
        ("no-upward-pruning", GteaOptions::without_upward_pruning()),
        ("no-contours", GteaOptions::without_contours()),
        ("no-shrinking", GteaOptions::without_shrinking()),
    ] {
        let engine = GteaEngine::with_options(&g, options);
        group.bench_with_input(BenchmarkId::new("GTEA", name), &q, |b, q| {
            b.iter(|| engine.evaluate(q))
        });
    }
    let plus = HgJoin::tuple_based(&g);
    let star = HgJoin::graph_based(&g);
    group.bench_with_input(BenchmarkId::new("HGJoin", "tuple"), &q, |b, q| {
        b.iter(|| plus.evaluate(q))
    });
    group.bench_with_input(BenchmarkId::new("HGJoin", "graph"), &q, |b, q| {
        b.iter(|| star.evaluate(q))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
