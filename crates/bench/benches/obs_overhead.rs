//! Overhead of the observability subsystem on the service's hot path.
//!
//! Three configurations of the same cold (cache-bypassing) workload:
//!
//! * `baseline` — tracing off.  Every request still feeds the latency and
//!   stage histograms (they are always on), so this measures the default
//!   production cost.
//! * `traced` — every request records a full span tree
//!   ([`QueryRequest::with_trace`]); the acceptance bar is < 5% over
//!   `baseline`.
//! * `snapshot` — the cost of one [`MetricsSnapshot`] plus its Prometheus
//!   rendering, the scrape-endpoint hot path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::arxiv_graph;
use gtpq_datagen::{random_queries, RandomQueryConfig};
use gtpq_query::Gtpq;
use gtpq_service::{QueryRequest, QueryService, ServiceConfig};

fn service() -> (QueryService, Vec<Gtpq>) {
    // The full arXiv graph with size-6 queries: per-query engine time in
    // the hundreds of microseconds, the regime the <5% tracing-overhead
    // acceptance bar is judged against (a span costs a fixed few hundred
    // nanoseconds, so toy queries would measure the allocator, not the
    // subsystem).
    let graph = Arc::new(arxiv_graph());
    let queries = random_queries(&graph, &RandomQueryConfig::with_size(6));
    let service = QueryService::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            threads: 1,
            cache_capacity: 0, // every query runs the engine
            ..ServiceConfig::default()
        },
    );
    (service, queries)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    if std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0") {
        group.sample_size(3);
        group.warm_up_time(std::time::Duration::from_millis(50));
        group.measurement_time(std::time::Duration::from_millis(200));
    } else {
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(800));
    }
    let (service, queries) = service();

    let untraced: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("submit", "baseline"),
        &untraced,
        |b, reqs| {
            b.iter(|| {
                reqs.iter()
                    .map(|r| service.submit(r).expect("workload is satisfiable"))
                    .collect::<Vec<_>>()
            })
        },
    );

    let traced: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()).with_trace())
        .collect();
    group.bench_with_input(BenchmarkId::new("submit", "traced"), &traced, |b, reqs| {
        b.iter(|| {
            reqs.iter()
                .map(|r| service.submit(r).expect("workload is satisfiable"))
                .collect::<Vec<_>>()
        })
    });

    group.bench_function(BenchmarkId::new("metrics", "snapshot"), |b| {
        b.iter(|| {
            let snapshot = service.metrics();
            snapshot.render_prometheus().len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
