//! Fig. 8(a): Q1 evaluation time versus XMark data size, per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{HgJoin, TpqAlgorithm, Twig2Stack, TwigStack, TwigStackD};
use gtpq_bench::workloads::xmark_graph;
use gtpq_core::GteaEngine;
use gtpq_datagen::xmark_q1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_xmark_scale");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let q = xmark_q1(0);
    for &scale in &[0.5, 1.0, 2.0] {
        let g = xmark_graph(scale);
        let engine = GteaEngine::new(&g);
        group.bench_with_input(BenchmarkId::new("GTEA", scale), &q, |b, q| {
            b.iter(|| engine.evaluate(q))
        });
        let twig_d = TwigStackD::new(&g);
        group.bench_with_input(BenchmarkId::new("TwigStackD", scale), &q, |b, q| {
            b.iter(|| twig_d.evaluate(q))
        });
        let hg = HgJoin::tuple_based(&g);
        group.bench_with_input(BenchmarkId::new("HGJoin+", scale), &q, |b, q| {
            b.iter(|| hg.evaluate(q))
        });
        let twig = TwigStack::new(&g);
        group.bench_with_input(BenchmarkId::new("TwigStack", scale), &q, |b, q| {
            b.iter(|| twig.evaluate(q))
        });
        let twig2 = Twig2Stack::new(&g);
        group.bench_with_input(BenchmarkId::new("Twig2Stack", scale), &q, |b, q| {
            b.iter(|| twig2.evaluate(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
