//! Fig. 9(b)/(c): random-query evaluation time on the arXiv-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{HgJoin, TpqAlgorithm, TwigStackD};
use gtpq_bench::workloads::arxiv_graph_small;
use gtpq_core::GteaEngine;
use gtpq_datagen::{random_queries, RandomQueryConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_arxiv_queries");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = arxiv_graph_small();
    let engine = GteaEngine::new(&g);
    let twig_d = TwigStackD::new(&g);
    let hg_star = HgJoin::graph_based(&g);
    for &size in &[5usize, 9, 13] {
        let queries = random_queries(
            &g,
            &RandomQueryConfig {
                count: 5,
                ..RandomQueryConfig::with_size(size)
            },
        );
        group.bench_with_input(BenchmarkId::new("GTEA", size), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| engine.evaluate(q).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("HGJoin*", size), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| hg_star.evaluate(q).0.len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("TwigStackD", size), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| twig_d.evaluate(q).0.len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
