//! Mixed read/write workload over a live graph: epoch-commit latency
//! (incremental maintenance vs forced full rebuild) and service throughput
//! while a writer commits between read batches.
//!
//! A correctness pre-pass runs before any timing: the mutated graph must
//! answer queries exactly like the naive semantic evaluator, and the
//! outcome must report the committed epoch — a benchmark over wrong
//! answers measures nothing.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::xmark_graph;
use gtpq_datagen::{
    apply_ops, random_queries, update_stream, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig,
    UpdateOp, UpdateStreamConfig,
};
use gtpq_graph::{DataGraph, GraphHandle, MutationConfig};
use gtpq_query::{naive, Gtpq};
use gtpq_service::{QueryRequest, QueryService, ServiceConfig};

fn workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(4)));
    queries
}

fn requests(queries: &[Gtpq]) -> Vec<QueryRequest> {
    queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect()
}

/// The mutated graph must agree with the naive evaluator and the service
/// must answer for the committed generation.
fn correctness_prepass(base: &DataGraph, epoch_ops: &[UpdateOp], queries: &[Gtpq]) {
    let handle = Arc::new(GraphHandle::new(base.clone()));
    apply_ops(&handle, epoch_ops);
    handle.commit();
    let service = QueryService::live(Arc::clone(&handle));
    for q in queries.iter().take(4) {
        let outcome = service
            .submit(&QueryRequest::query(q.clone()).with_stats())
            .expect("workload is satisfiable");
        let expected = naive::evaluate(q, &service.graph());
        assert!(
            outcome.rows.same_answer(&expected),
            "mutated graph diverged from the naive oracle"
        );
        assert_eq!(outcome.stats.expect("stats requested").graph_epoch, 1);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_workload");
    if std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0") {
        group.sample_size(3);
        group.warm_up_time(std::time::Duration::from_millis(50));
        group.measurement_time(std::time::Duration::from_millis(200));
    } else {
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(800));
    }

    let base = xmark_graph(0.3);
    let queries = workload(&base);
    let reqs = requests(&queries);
    let epoch_ops = update_stream(
        &base,
        &UpdateStreamConfig {
            seed: 11,
            epochs: 1,
            ops_per_epoch: 256,
            ..UpdateStreamConfig::default()
        },
    )
    .remove(0);

    correctness_prepass(&base, &epoch_ops, &queries);

    // Commit latency: the incremental sorted-run merges vs forced full
    // rebuilds of CSR / inverted index on the same 256-op epoch.  The gap
    // is the payoff of the incremental maintenance path.
    for (name, ratio) in [("incremental", 1e9), ("full_rebuild", 0.0)] {
        group.bench_with_input(
            BenchmarkId::new("epoch_commit", name),
            &epoch_ops,
            |b, ops| {
                b.iter(|| {
                    let handle = GraphHandle::with_config(
                        base.clone(),
                        MutationConfig {
                            auto_commit_ops: None,
                            full_rebuild_ratio: ratio,
                        },
                    );
                    apply_ops(&handle, ops);
                    handle.commit()
                })
            },
        );
    }

    // Read-only reference over a live (but quiescent) service: the cost of
    // the generation bookkeeping alone, cache disabled so every request
    // runs the engine.
    let read_handle = Arc::new(GraphHandle::new(base.clone()));
    let read_service = QueryService::live_with_config(
        Arc::clone(&read_handle),
        ServiceConfig {
            threads: 4,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    group.bench_with_input(
        BenchmarkId::new("read_batch", "quiescent"),
        &reqs,
        |b, reqs| b.iter(|| read_service.submit_batch(reqs)),
    );

    // The mixed case: every iteration commits one 32-op epoch, then a
    // 4-thread batch of reads answers over the fresh generation (rotation,
    // cache invalidation and backend rebuild included).
    let write_epochs = update_stream(
        &base,
        &UpdateStreamConfig {
            seed: 12,
            epochs: 256,
            ops_per_epoch: 32,
            ..UpdateStreamConfig::default()
        },
    );
    let mixed_handle = Arc::new(GraphHandle::new(base.clone()));
    let mixed_service = QueryService::live_with_config(
        Arc::clone(&mixed_handle),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let mut next = 0usize;
    group.bench_with_input(
        BenchmarkId::new("read_batch", "after_commit"),
        &reqs,
        |b, reqs| {
            b.iter(|| {
                // Wrapping re-applies old ops; their node ids still exist,
                // so the replay stays valid as the graph grows.
                apply_ops(&mixed_handle, &write_epochs[next % write_epochs.len()]);
                next += 1;
                mixed_handle.commit();
                mixed_service.submit_batch(reqs)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
