//! Fig. 12(b)-(d) / Tables 4-5: GTPQs with disjunction and negation —
//! GTEA versus decompose-and-merge over the conjunctive baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{evaluate_gtpq_with, TwigStack, TwigStackD};
use gtpq_bench::workloads::xmark_graph;
use gtpq_core::GteaEngine;
use gtpq_datagen::{fig11_gtpq, Fig11Predicate};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12bcd_gtpq_logic");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = xmark_graph(0.5);
    let engine = GteaEngine::new(&g);
    let twig = TwigStack::new(&g);
    let twig_d = TwigStackD::new(&g);
    for (name, variant) in [
        ("DIS1", Fig11Predicate::Dis1),
        ("NEG1", Fig11Predicate::Neg1),
        ("DIS_NEG2", Fig11Predicate::DisNeg2),
    ] {
        let q = fig11_gtpq(variant, 0, 3);
        group.bench_with_input(BenchmarkId::new("GTEA", name), &q, |b, q| {
            b.iter(|| engine.evaluate(q))
        });
        group.bench_with_input(BenchmarkId::new("TwigStack+dm", name), &q, |b, q| {
            b.iter(|| evaluate_gtpq_with(&twig, q).0)
        });
        group.bench_with_input(BenchmarkId::new("TwigStackD+dm", name), &q, |b, q| {
            b.iter(|| evaluate_gtpq_with(&twig_d, q).0)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
