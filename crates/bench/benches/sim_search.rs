//! Similarity search: exact verify-all scan vs. the pivot block-and-verify
//! filter.
//!
//! The embedded-text workload plants near-duplicate clusters whose ground
//! truth is provable from the generator parameters alone
//! (`gtpq_datagen::generate_embed`): a radius query at a cluster center with
//! `EmbedConfig::recall_radius` retrieves exactly that cluster's members.
//! The verify-all path computes the exact L2 distance to every indexed
//! vector (O(n · dim) per query — the only path a similarity-blind engine
//! has); the pivot path runs `SimTable::within_l2`, which discards most
//! entries with a handful of triangle-inequality tests per entry and only
//! verifies the survivors.  Both paths are asserted to return the planted
//! cluster — bit-identical postings — before any sampling starts.
//!
//! Set `GTPQ_BENCH_QUICK=1` for the CI smoke run (fewer samples, smaller
//! corpus); the recorded baseline lives in
//! `crates/bench/baselines/BENCH_sim_search.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_datagen::{generate_embed, EmbedConfig};
use gtpq_graph::{NodeId, SimTable};

fn quick() -> bool {
    std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn config() -> EmbedConfig {
    if quick() {
        EmbedConfig {
            clusters: 16,
            cluster_size: 8,
            dim: 16,
            ..EmbedConfig::default()
        }
    } else {
        // 1024 documents at dim 32 — large enough that per-query work
        // dominates, small enough to build in milliseconds.
        EmbedConfig::default()
    }
}

/// The exact-only path: L2 distance to every indexed vector, no filter.
/// Uses the same `gtpq_sim::l2` kernel as the verify step, so the two paths
/// differ only in how many exact distances they pay for.
fn verify_all(table: &SimTable, query: &[f32], radius: f32) -> Vec<NodeId> {
    (0..table.len())
        .filter(|&i| gtpq_sim::l2(table.vector(i), query) < radius)
        .map(|i| table.indexed_nodes()[i])
        .collect()
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let graph = generate_embed(&cfg);
    let table = graph.sim_table("emb").expect("docs carry `emb` vectors");
    let radius = cfg.recall_radius();
    let centers = cfg.centers();

    // Correctness pre-pass: at every cluster center both paths must return
    // exactly the planted cluster — recall and precision by construction.
    for (cluster, center) in centers.iter().enumerate() {
        let expected: Vec<NodeId> = (0..cfg.cluster_size)
            .map(|m| NodeId((cfg.topics + cluster * cfg.cluster_size + m) as u32))
            .collect();
        let exact = verify_all(table, center, radius);
        assert_eq!(exact, expected, "verify-all misses cluster {cluster}");
        let filtered = table.within_l2(center, radius, false);
        assert_eq!(
            filtered.nodes, expected,
            "pivot filter misses cluster {cluster}"
        );
        assert_eq!(
            filtered.pruned + filtered.verified,
            table.len() as u64,
            "cluster {cluster}: pruning accounting"
        );
    }

    let mut group = c.benchmark_group("sim_search");
    if quick() {
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(200));
    } else {
        group.sample_size(20);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    let queries: Vec<&[f32]> = centers.iter().map(Vec::as_slice).collect();
    group.bench_with_input(
        BenchmarkId::new("verify_all", "embed"),
        &queries,
        |b, queries| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| verify_all(table, q, radius).len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("pivot_filter", "embed"),
        &queries,
        |b, queries| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| table.within_l2(q, radius, false).nodes.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
