//! Intra-query parallelism: serial vs morsel-parallel execution of a single
//! query, on the arXiv full-materialization workload (enumeration-bound —
//! where partitioned streams should approach linear speedup) and its
//! limit-10 window (setup-bound — where parallel prune rounds carry the
//! tail-latency win).
//!
//! One measurement per parallelism degree: `serial` (threads = 1), then
//! `t2`, `t4` and `tN` (N = the machine's available parallelism, skipped
//! when it duplicates 2 or 4).
//!
//! A correctness pre-pass asserts that every parallel degree returns
//! **bit-for-bit** the serial answer (full and windowed) before anything is
//! timed, and — on machines with at least 4 cores — that the 4-thread full
//! materialization beats serial by the acceptance ratio recorded in
//! `crates/bench/baselines/BENCH_intra_query_parallelism.json`.  On smaller
//! machines the speedup check is skipped (the workers would just time-slice
//! one core) but the equivalence contract still runs.
//!
//! Set `GTPQ_BENCH_QUICK=1` for the CI smoke run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::arxiv_graph_small;
use gtpq_core::{ExecCtl, ExecOptions, GteaEngine, QueryPlan};
use gtpq_graph::{AttrValue, DataGraph};
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder};

fn quick() -> bool {
    std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The acceptance bar: 4-thread full materialization over serial, asserted
/// only on machines with >= 4 cores.
const MIN_SPEEDUP_AT_4: f64 = 2.5;

/// Broad two-output citation joins — the `streaming_latency` arXiv workload:
/// tens of thousands of result rows, so enumeration dominates the full run.
fn arxiv_workload() -> Vec<Gtpq> {
    let mut queries = Vec::new();
    for (lo, hi) in [(1990, 1999), (1995, 2004), (1992, 2002)] {
        let mut b = GtpqBuilder::new(
            AttrPredicate::any()
                .and("year", CmpOp::Ge, AttrValue::int(lo))
                .and("year", CmpOp::Le, AttrValue::int(hi)),
        );
        let root = b.root_id();
        let cited = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any().and("year", CmpOp::Ge, AttrValue::int(lo - 5)),
        );
        b.mark_output(root);
        b.mark_output(cited);
        queries.push(b.build().expect("arxiv parallelism query is well formed"));
    }
    queries
}

fn options(limit: Option<usize>, threads: usize) -> ExecOptions {
    ExecOptions {
        limit,
        offset: 0,
        ctl: ExecCtl::unbounded(),
        threads,
    }
}

/// Full materialization at the given degree; returns total rows.
fn run_full(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)], threads: usize) -> usize {
    work.iter()
        .map(|(q, plan)| {
            engine
                .execute(q, plan, options(None, threads))
                .expect("unbounded execution cannot be interrupted")
                .results
                .len()
        })
        .sum()
}

/// Limit-10 window at the given degree; returns total rows.
fn run_limit10(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)], threads: usize) -> usize {
    work.iter()
        .map(|(q, plan)| {
            engine
                .execute(q, plan, options(Some(10), threads))
                .expect("unbounded execution cannot be interrupted")
                .results
                .len()
        })
        .sum()
}

/// Pre-pass 1: every degree returns bit-for-bit the serial answer, full and
/// windowed, and the parallel telemetry actually reports fan-out.
fn assert_equivalence(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)], degrees: &[usize]) {
    for (q, plan) in work {
        let serial = engine
            .execute(q, plan, options(None, 1))
            .expect("unbounded execution cannot be interrupted");
        let serial_window = engine
            .execute(q, plan, options(Some(10), 1))
            .expect("unbounded execution cannot be interrupted");
        for &threads in degrees {
            let full = engine
                .execute(q, plan, options(None, threads))
                .expect("unbounded execution cannot be interrupted");
            assert_eq!(
                full.results, serial.results,
                "{threads}-thread full answer diverged from serial"
            );
            if threads > 1 {
                assert!(
                    full.stats.parallel_workers > 1,
                    "{threads}-thread run reported no fan-out"
                );
                assert!(full.stats.morsels_dispatched > 0);
            }
            let window = engine
                .execute(q, plan, options(Some(10), threads))
                .expect("unbounded execution cannot be interrupted");
            assert_eq!(
                window.results, serial_window.results,
                "{threads}-thread limit-10 window diverged from serial"
            );
            assert_eq!(window.truncated, serial_window.truncated);
        }
    }
}

/// Pre-pass 2 (machines with >= 4 cores only): 4-thread full materialization
/// must beat serial by the acceptance ratio.
fn assert_speedup(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) {
    let samples = if quick() { 3 } else { 7 };
    let measure = |threads: usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            run_full(engine, work, threads);
            best = best.min(start.elapsed());
        }
        best
    };
    let serial = measure(1);
    let parallel = measure(4);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(f64::EPSILON);
    assert!(
        speedup >= MIN_SPEEDUP_AT_4,
        "4-thread full materialization speedup {speedup:.2}x is below the \
         {MIN_SPEEDUP_AT_4}x acceptance bar (serial {serial:?}, 4-thread {parallel:?})"
    );
    eprintln!("intra_query_parallelism: 4-thread speedup {speedup:.2}x over serial");
}

fn prepare(graph: &DataGraph, queries: Vec<Gtpq>) -> Vec<(Gtpq, QueryPlan)> {
    queries
        .into_iter()
        .map(|q| {
            let plan = gtpq_core::Planner::new(graph).plan(&q);
            (q, plan)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_query_parallelism");
    if quick() {
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(200));
    } else {
        group.sample_size(15);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    let graph = arxiv_graph_small();
    let engine = GteaEngine::new(&graph);
    let work = prepare(&graph, arxiv_workload());

    let n = cores();
    let mut degrees = vec![1usize, 2, 4];
    if !degrees.contains(&n) {
        degrees.push(n);
    }
    assert_equivalence(&engine, &work, &degrees);
    if n >= 4 {
        assert_speedup(&engine, &work);
    } else {
        eprintln!(
            "intra_query_parallelism: {n} core(s) available — speedup bar \
             ({MIN_SPEEDUP_AT_4}x at 4 threads) skipped, equivalence still asserted"
        );
    }

    for &threads in &degrees {
        let label = if threads == 1 {
            "serial".to_owned()
        } else {
            format!("t{threads}")
        };
        group.bench_with_input(BenchmarkId::new("full", &label), &work, |b, work| {
            b.iter(|| run_full(&engine, work, threads))
        });
        group.bench_with_input(BenchmarkId::new("limit10", &label), &work, |b, work| {
            b.iter(|| run_limit10(&engine, work, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
