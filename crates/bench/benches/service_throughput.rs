//! Throughput of the query service front end: batched vs. sequential
//! evaluation and cold vs. warm result cache over an XMark workload.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::xmark_graph;
use gtpq_datagen::{random_queries, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig};
use gtpq_graph::DataGraph;
use gtpq_query::Gtpq;
use gtpq_service::{QueryRequest, QueryService, ServiceConfig};

fn workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(4)));
    queries
}

fn requests(queries: &[Gtpq]) -> Vec<QueryRequest> {
    queries
        .iter()
        .map(|q| QueryRequest::query(q.clone()))
        .collect()
}

fn cold_service(graph: &Arc<DataGraph>, threads: usize) -> QueryService {
    QueryService::with_config(
        Arc::clone(graph),
        ServiceConfig {
            threads,
            cache_capacity: 0, // every query runs the engine
            ..ServiceConfig::default()
        },
    )
}

fn warm_service(graph: &Arc<DataGraph>, threads: usize, queries: &[Gtpq]) -> QueryService {
    let service = QueryService::with_config(
        Arc::clone(graph),
        ServiceConfig {
            threads,
            ..ServiceConfig::default()
        },
    );
    for q in queries {
        let _ = service.submit(&QueryRequest::query(q.clone())); // prime the cache
    }
    service
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    if std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0") {
        group.sample_size(3);
        group.warm_up_time(std::time::Duration::from_millis(50));
        group.measurement_time(std::time::Duration::from_millis(200));
    } else {
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(800));
    }
    let graph = Arc::new(xmark_graph(0.5));
    let queries = workload(&graph);
    let reqs = requests(&queries);
    let threads = 4;

    let sequential_cold = cold_service(&graph, 1);
    group.bench_with_input(BenchmarkId::new("sequential", "cold"), &reqs, |b, reqs| {
        b.iter(|| {
            reqs.iter()
                .map(|r| sequential_cold.submit(r).expect("workload is satisfiable"))
                .collect::<Vec<_>>()
        })
    });

    let batched_cold = cold_service(&graph, threads);
    group.bench_with_input(BenchmarkId::new("batched", "cold"), &reqs, |b, reqs| {
        b.iter(|| batched_cold.submit_batch(reqs))
    });

    let sequential_warm = warm_service(&graph, 1, &queries);
    group.bench_with_input(BenchmarkId::new("sequential", "warm"), &reqs, |b, reqs| {
        b.iter(|| {
            reqs.iter()
                .map(|r| sequential_warm.submit(r).expect("workload is satisfiable"))
                .collect::<Vec<_>>()
        })
    });

    let batched_warm = warm_service(&graph, threads, &queries);
    group.bench_with_input(BenchmarkId::new("batched", "warm"), &reqs, |b, reqs| {
        b.iter(|| batched_warm.submit_batch(reqs))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
