//! Micro-benchmark of the textual query language front end: tokenising +
//! parsing query texts of growing size, printing the canonical form, and the
//! full parse → display → parse round trip.
//!
//! Parsing sits on the hot path of `QueryService::evaluate_text`, so it must
//! stay negligible next to evaluation (microseconds against the engine's
//! milliseconds).  Set `GTPQ_BENCH_QUICK=1` for the CI smoke run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_datagen::random_text_query;
use gtpq_query::{parse_query, Gtpq};

/// Deterministic corpus of canonical query texts around `target` nodes.
fn corpus(target: usize) -> Vec<String> {
    (0..16u64)
        .map(|seed| random_text_query(seed.wrapping_mul(7919) + target as u64, target).to_string())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_parse");
    if std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0") {
        group.sample_size(3);
        group.warm_up_time(std::time::Duration::from_millis(50));
        group.measurement_time(std::time::Duration::from_millis(200));
    } else {
        group.sample_size(20);
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.measurement_time(std::time::Duration::from_millis(600));
    }

    for target in [4usize, 16, 64] {
        let texts = corpus(target);
        let queries: Vec<Gtpq> = texts.iter().map(|t| parse_query(t).unwrap()).collect();
        let total_bytes: usize = texts.iter().map(String::len).sum();
        group.bench_with_input(
            BenchmarkId::new("parse", format!("{target}n/{total_bytes}B")),
            &texts,
            |b, texts| {
                b.iter(|| {
                    texts
                        .iter()
                        .map(|t| parse_query(t).expect("corpus parses").size())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("display", format!("{target}n")),
            &queries,
            |b, queries| b.iter(|| queries.iter().map(|q| q.to_string().len()).sum::<usize>()),
        );
        group.bench_with_input(
            BenchmarkId::new("round_trip", format!("{target}n")),
            &queries,
            |b, queries| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| parse_query(&q.to_string()).expect("canonical text").size())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
