//! Fig. 8(b): evaluation time of Q1/Q2/Q3 on the smallest XMark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{TpqAlgorithm, TwigStack, TwigStackD};
use gtpq_bench::workloads::xmark_graph;
use gtpq_core::GteaEngine;
use gtpq_datagen::{xmark_q1, xmark_q2, xmark_q3};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_xmark_queries");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = xmark_graph(0.5);
    let engine = GteaEngine::new(&g);
    let twig = TwigStack::new(&g);
    let twig_d = TwigStackD::new(&g);
    let queries = [
        ("Q1", xmark_q1(0)),
        ("Q2", xmark_q2(0, 3)),
        ("Q3", xmark_q3(0, 3, 7)),
    ];
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::new("GTEA", name), q, |b, q| {
            b.iter(|| engine.evaluate(q))
        });
        group.bench_with_input(BenchmarkId::new("TwigStack", name), q, |b, q| {
            b.iter(|| twig.evaluate(q))
        });
        group.bench_with_input(BenchmarkId::new("TwigStackD", name), q, |b, q| {
            b.iter(|| twig_d.evaluate(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
