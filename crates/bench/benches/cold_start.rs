//! Cold start to first query row: text parse vs zero-copy snapshot load.
//!
//! The scenario is a process that owns no graph yet and must answer one
//! query: load an arXiv-tier dataset from disk, stand up a service and
//! stream the first result row.  Three load paths compete:
//!
//! * `text_parse` — read the text serialization, parse it, intern symbols,
//!   build the CSRs, the attribute index and the condensation (Tarjan),
//! * `mmap` — map the `.gtpq` binary snapshot and serve every big run
//!   straight from the mapping: start-up is O(page-fault),
//! * `heap` — read the same snapshot into an aligned heap buffer with full
//!   checksum verification (the portable fallback).
//!
//! A correctness pre-pass runs before any timing: the snapshot written by
//! the streamed writer must load to exactly the graph the text file
//! describes, and all three paths must return the same first row — a
//! benchmark over divergent answers measures nothing.  After timing, the
//! bench reports the resident-set delta of one text load vs one mapped
//! load (Linux only), making the "index pages stay on disk until touched"
//! claim visible.
//!
//! The dataset tier defaults to `ArxivConfig::tier(10)` (~95k nodes) and
//! can be raised with `GTPQ_COLD_TIER=100` (~950k nodes) for baseline
//! recording; `GTPQ_BENCH_QUICK` drops to the small unit-test config.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_datagen::{generate_arxiv, write_arxiv_snapshot, ArxivConfig};
use gtpq_graph::{io, GraphSnapshot};
use gtpq_reach::BackendKind;
use gtpq_service::{QueryRequest, QueryService, ServiceConfig};

/// The probe query: a selective indexed label equality with `limit 1`
/// pushed down — answered entirely from the inverted index, so the measured
/// time is dominated by *loading*, not matching, and the lazy attribute
/// columns of a mapped snapshot are never materialized.  (`paper3` exists
/// at every datagen tier.)
fn first_row_request() -> QueryRequest {
    QueryRequest::text("[label = paper3]*").with_limit(1)
}

/// Service configuration shared by every path: the backend is pinned to
/// SSPI — the cheapest build at O(V+E) — so auto-selection cannot swamp
/// the load-path difference.  A pinned backend is deferred until the first
/// reachability probe, and the probe query never asks one: neither path
/// pays an index construction before its first row.
fn service_config() -> ServiceConfig {
    ServiceConfig {
        backend: Some(BackendKind::Sspi),
        ..ServiceConfig::default()
    }
}

/// Cold start from the text serialization: parse + build + first row.
fn first_row_from_text(path: &std::path::Path) -> usize {
    let text = std::fs::read_to_string(path).expect("text file readable");
    let graph = io::from_text(&text).expect("text file parses");
    let service = QueryService::with_config(Arc::new(graph), service_config());
    let outcome = service
        .submit(&first_row_request())
        .expect("probe query runs");
    outcome.rows.len()
}

/// Cold start from the binary snapshot in the given mode.
fn first_row_from_snapshot(path: &std::path::Path, mmap: bool) -> usize {
    let snapshot = if mmap {
        GraphSnapshot::open_mmap(path)
    } else {
        GraphSnapshot::open_heap(path)
    }
    .expect("snapshot loads");
    let service = QueryService::from_snapshot(Arc::new(snapshot), service_config());
    let outcome = service
        .submit(&first_row_request())
        .expect("probe query runs");
    outcome.rows.len()
}

/// Resident-set size in bytes from `/proc/self/statm`; `None` off Linux.
fn resident_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// All three load paths must answer the probe identically, and the heap
/// load (full verification) must reconstruct exactly the text-described
/// graph.
fn correctness_prepass(text_path: &std::path::Path, snap_path: &std::path::Path) {
    let text = std::fs::read_to_string(text_path).expect("text file readable");
    let parsed = io::from_text(&text).expect("text file parses");
    let loaded = GraphSnapshot::open_heap(snap_path).expect("snapshot loads verified");
    assert_eq!(
        *loaded.graph().as_ref(),
        parsed,
        "snapshot diverged from the text serialization"
    );
    let request = first_row_request();
    let from_text = QueryService::with_config(Arc::new(parsed), service_config())
        .submit(&request)
        .expect("text path answers");
    for mmap in [true, false] {
        let snapshot = if mmap {
            GraphSnapshot::open_mmap(snap_path)
        } else {
            GraphSnapshot::open_heap(snap_path)
        }
        .expect("snapshot loads");
        let outcome = QueryService::from_snapshot(Arc::new(snapshot), service_config())
            .submit(&request)
            .expect("snapshot path answers");
        assert_eq!(outcome.rows.output, from_text.rows.output);
        assert_eq!(outcome.rows.tuples, from_text.rows.tuples);
        assert!(!outcome.rows.is_empty(), "probe query must match data");
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0");
    let mut group = c.benchmark_group("cold_start");
    let (config, tier) = if quick {
        group.sample_size(3);
        group.warm_up_time(std::time::Duration::from_millis(50));
        group.measurement_time(std::time::Duration::from_millis(300));
        (ArxivConfig::small(), "small".to_owned())
    } else {
        group.sample_size(5);
        group.warm_up_time(std::time::Duration::from_millis(100));
        group.measurement_time(std::time::Duration::from_secs(60));
        let scale: u32 = std::env::var("GTPQ_COLD_TIER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        (ArxivConfig::tier(scale), format!("tier{scale}"))
    };

    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("gtpq-cold-start-{}.gtpq", std::process::id()));
    let text_path = dir.join(format!("gtpq-cold-start-{}.txt", std::process::id()));

    // The snapshot comes from the streamed writer (never materializes the
    // graph); the text file needs the built graph once, then drops it.
    let stats = write_arxiv_snapshot(&config, &snap_path).expect("streamed snapshot write");
    {
        let g = generate_arxiv(&config);
        std::fs::write(&text_path, io::to_text(&g)).expect("text file written");
    }
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    let text_bytes = std::fs::metadata(&text_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "cold_start/{tier}: {} nodes, {} edges; snapshot {snap_bytes} bytes, text {text_bytes} bytes",
        stats.nodes, stats.edges
    );

    correctness_prepass(&text_path, &snap_path);

    group.bench_with_input(BenchmarkId::new("first_row", "text_parse"), &(), |b, ()| {
        b.iter(|| first_row_from_text(&text_path))
    });
    group.bench_with_input(BenchmarkId::new("first_row", "mmap"), &(), |b, ()| {
        b.iter(|| first_row_from_snapshot(&snap_path, true))
    });
    group.bench_with_input(BenchmarkId::new("first_row", "heap"), &(), |b, ()| {
        b.iter(|| first_row_from_snapshot(&snap_path, false))
    });

    // Resident-set delta of one cold load per path (informational; the
    // mapped load should grow RSS by the touched pages only).
    if let Some(before) = resident_bytes() {
        let rows = first_row_from_snapshot(&snap_path, true);
        let after_mmap = resident_bytes().unwrap_or(before);
        assert_eq!(rows, 1);
        let rows = first_row_from_text(&text_path);
        let after_text = resident_bytes().unwrap_or(after_mmap);
        assert_eq!(rows, 1);
        println!(
            "cold_start/{tier}: rss delta mmap {} KiB, text parse {} KiB",
            after_mmap.saturating_sub(before) / 1024,
            after_text.saturating_sub(after_mmap) / 1024,
        );
    }

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&text_path).ok();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
