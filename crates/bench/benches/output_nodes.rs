//! Fig. 12(a) / Table 3: GTEA time as the output-node set grows (Q4-Q8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::xmark_graph;
use gtpq_core::GteaEngine;
use gtpq_datagen::fig11_output_variant;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_output_nodes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = xmark_graph(1.0);
    let engine = GteaEngine::new(&g);
    for which in 4..=8u32 {
        let q = fig11_output_variant(which, 0, 3);
        group.bench_with_input(BenchmarkId::new("GTEA", format!("Q{which}")), &q, |b, q| {
            b.iter(|| engine.evaluate(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
