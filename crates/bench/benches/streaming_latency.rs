//! Streaming latency: time-to-first-row and limit-10 latency vs full
//! materialization on the arXiv and XMark workloads.
//!
//! Three measurements per workload:
//!
//! * `full` — `GteaEngine::execute` with no limit (materializes the whole
//!   answer through the streaming enumerator),
//! * `limit10` — `GteaEngine::execute` with `limit = 10` pushed down (the
//!   enumerator stops after 10 rows plus one look-ahead row),
//! * `first_row` — `GteaEngine::match_stream` + one `next_row` call (the
//!   latency until a caller sees the first row).
//!
//! The acceptance bar (recorded in
//! `crates/bench/baselines/BENCH_streaming_latency.json`): `limit10` must be
//! measurably faster than `full`, and a correctness pre-pass asserts that
//! the limited rows are exactly the first 10 rows of the full materialized
//! order and that `EvalStats::enumerated_rows ≤ 11` under the limit.
//!
//! Set `GTPQ_BENCH_QUICK=1` for the CI smoke run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::{arxiv_graph_small, xmark_graph};
use gtpq_core::{ExecCtl, ExecOptions, GteaEngine, QueryPlan};
use gtpq_datagen::{xmark_q1, xmark_q2, xmark_q3};
use gtpq_graph::{AttrValue, DataGraph};
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder};

fn quick() -> bool {
    std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Broad two-output join queries: many result rows, so limit pushdown has
/// real work to skip.
fn arxiv_workload() -> Vec<Gtpq> {
    let mut queries = Vec::new();
    // Every 1990s paper with any citation, returning (paper, cited).
    for (lo, hi) in [(1990, 1999), (1995, 2004), (1992, 2002)] {
        let mut b = GtpqBuilder::new(
            AttrPredicate::any()
                .and("year", CmpOp::Ge, AttrValue::int(lo))
                .and("year", CmpOp::Le, AttrValue::int(hi)),
        );
        let root = b.root_id();
        let cited = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any().and("year", CmpOp::Ge, AttrValue::int(lo - 5)),
        );
        b.mark_output(root);
        b.mark_output(cited);
        queries.push(b.build().expect("arxiv streaming query is well formed"));
    }
    queries
}

fn xmark_workload() -> Vec<Gtpq> {
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    // Broad joins: every person paired with every reachable profile /
    // address leaf, per label group — thousands of result rows.
    for group in 0..3u32 {
        let mut b = GtpqBuilder::new(AttrPredicate::label("people"));
        let root = b.root_id();
        let person = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("person{group}")),
        );
        let leaf = b.backbone_child(person, EdgeKind::Descendant, AttrPredicate::any());
        b.mark_output(person);
        b.mark_output(leaf);
        queries.push(b.build().expect("xmark streaming query is well formed"));
    }
    // Cross-component products: `site` has a single candidate, so shrinking
    // splits the two output subtrees into separate components whose answers
    // combine by Cartesian product — the worst case for materialization and
    // the best case for the ranked product stream.
    for group in 0..3u32 {
        let mut b = GtpqBuilder::new(AttrPredicate::label("site"));
        let root = b.root_id();
        let person = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("person{group}")),
        );
        let item = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("item{}", group + 3)),
        );
        b.mark_output(person);
        b.mark_output(item);
        queries.push(b.build().expect("xmark product query is well formed"));
    }
    queries
}

/// Full materialization through the streaming executor.
fn run_full(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) -> usize {
    work.iter()
        .map(|(q, plan)| {
            engine
                .execute(q, plan, ExecOptions::unbounded())
                .expect("unbounded execution cannot be interrupted")
                .results
                .len()
        })
        .sum()
}

/// Limit-10 pushdown: enumeration stops after 10 rows per query.
fn run_limit10(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) -> usize {
    work.iter()
        .map(|(q, plan)| {
            engine
                .execute(q, plan, ExecOptions::unbounded().with_limit(10))
                .expect("unbounded execution cannot be interrupted")
                .results
                .len()
        })
        .sum()
}

/// Time to first row: build the stream, pull one row.
fn run_first_row(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) -> usize {
    work.iter()
        .map(|(q, plan)| {
            let (mut stream, _) = engine
                .match_stream(q, plan, ExecCtl::unbounded())
                .expect("unbounded execution cannot be interrupted");
            stream
                .next_row()
                .expect("unbounded streams cannot be interrupted")
                .map(|_| 1)
                .unwrap_or(0)
        })
        .sum()
}

/// Pre-pass: limited windows must be prefixes of the full order, truncation
/// must bound enumeration, and the workload must be big enough to matter.
fn assert_pushdown_contract(name: &str, engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) {
    let mut total_rows = 0usize;
    for (q, plan) in work {
        let full = engine
            .execute(q, plan, ExecOptions::unbounded())
            .expect("unbounded");
        total_rows += full.results.len();
        let limited = engine
            .execute(q, plan, ExecOptions::unbounded().with_limit(10))
            .expect("unbounded");
        let expected: Vec<_> = full.results.iter().take(10).cloned().collect();
        let got: Vec<_> = limited.results.iter().cloned().collect();
        assert_eq!(
            got, expected,
            "{name}: limited rows must prefix the full order"
        );
        assert!(
            limited.stats.enumerated_rows <= 11,
            "{name}: limit 10 enumerated {} rows",
            limited.stats.enumerated_rows
        );
        assert_eq!(limited.truncated, full.results.len() > 10, "{name}");
        assert!(
            limited.stats.enumerated_rows <= full.stats.enumerated_rows,
            "{name}: pushdown must not enumerate more than full evaluation"
        );
    }
    assert!(
        total_rows > 100,
        "{name}: workload too small ({total_rows} rows) for limit pushdown to matter"
    );
}

fn prepare(graph: &DataGraph, queries: Vec<Gtpq>) -> Vec<(Gtpq, QueryPlan)> {
    queries
        .into_iter()
        .map(|q| {
            let plan = gtpq_core::Planner::new(graph).plan(&q);
            (q, plan)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_latency");
    if quick() {
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(200));
    } else {
        group.sample_size(15);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    let workloads = [
        ("arxiv", arxiv_graph_small(), arxiv_workload()),
        ("xmark", xmark_graph(0.5), xmark_workload()),
    ];
    for (name, graph, queries) in workloads {
        let engine = GteaEngine::new(&graph);
        let work = prepare(&graph, queries);
        assert_pushdown_contract(name, &engine, &work);
        group.bench_with_input(BenchmarkId::new("full", name), &work, |b, work| {
            b.iter(|| run_full(&engine, work))
        });
        group.bench_with_input(BenchmarkId::new("limit10", name), &work, |b, work| {
            b.iter(|| run_limit10(&engine, work))
        });
        group.bench_with_input(BenchmarkId::new("first_row", name), &work, |b, work| {
            b.iter(|| run_first_row(&engine, work))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
