//! Plan quality: planner overhead and planned-vs-fixed-pipeline latency.
//!
//! Three measurements per workload (arXiv and XMark, the graphs of §5.2):
//!
//! * `plan` — building the cost-based plan alone (the planner overhead a
//!   query pays on a plan-cache miss),
//! * `fixed` — executing the seed's hard-wired pipeline
//!   (`QueryPlan::fixed_pipeline`: id-ordered pruning, no planning),
//! * `planned` — `evaluate_with_stats`, i.e. plan *and* execute.
//!
//! The acceptance bar (recorded in
//! `crates/bench/baselines/BENCH_plan_quality.json`) is that `planned` stays
//! within noise of `fixed` — selectivity-ordered pruning must at least pay
//! for the planner.  Both variants run on the same engine and backend, so
//! the delta isolates the plan layer.  A correctness pre-pass asserts the
//! two pipelines return identical answers on every workload query.
//!
//! Set `GTPQ_BENCH_QUICK=1` for the CI smoke run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::{arxiv_graph_small, xmark_graph};
use gtpq_core::{GteaEngine, QueryPlan};
use gtpq_datagen::{random_queries, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig};
use gtpq_graph::{AttrValue, DataGraph};
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder};

fn quick() -> bool {
    std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Selective label + year-range queries with a couple of branches — the
/// shape whose prune ordering the planner can actually influence.
fn arxiv_workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = Vec::new();
    for i in 0..8u32 {
        let mut b = GtpqBuilder::new(
            AttrPredicate::label(&format!("paper{}", i * 17 % 900))
                .and("year", CmpOp::Ge, AttrValue::int(1996))
                .and("year", CmpOp::Le, AttrValue::int(2004)),
        );
        let root = b.root_id();
        let cited = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("paper{}", i * 29 % 900)),
        );
        let _author = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("auth{}", i * 11 % 230)),
        );
        b.mark_output(cited);
        queries.push(b.build().expect("arxiv bench query is well formed"));
    }
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(5)));
    queries
}

fn xmark_workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(4)));
    queries
}

/// Executes every query through its pre-built fixed-pipeline plan.
fn run_fixed(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) -> usize {
    work.iter()
        .map(|(q, fixed)| engine.evaluate_planned(q, fixed).0.len())
        .sum()
}

/// Plans and executes every query (planner overhead included).
fn run_planned(engine: &GteaEngine<'_>, work: &[(Gtpq, QueryPlan)]) -> usize {
    work.iter()
        .map(|(q, _)| engine.evaluate_with_stats(q).0.len())
        .sum()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_quality");
    if quick() {
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(200));
    } else {
        group.sample_size(15);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    let workloads = [("arxiv", arxiv_graph_small()), ("xmark", xmark_graph(0.5))];
    for (name, graph) in workloads {
        let queries = if name == "arxiv" {
            arxiv_workload(&graph)
        } else {
            xmark_workload(&graph)
        };
        let engine = GteaEngine::new(&graph);
        let work: Vec<(Gtpq, QueryPlan)> = queries
            .into_iter()
            .map(|q| {
                let fixed = QueryPlan::fixed_pipeline(&q);
                (q, fixed)
            })
            .collect();
        // Both pipelines must return identical answers before timing them.
        for (q, fixed) in &work {
            let planned = engine.evaluate(q);
            let fixed_run = engine.evaluate_planned(q, fixed).0;
            assert!(
                planned.same_answer(&fixed_run),
                "planned/fixed answer mismatch on {name}"
            );
        }
        group.bench_with_input(BenchmarkId::new("plan", name), &work, |b, work| {
            b.iter(|| {
                work.iter()
                    .map(|(q, _)| engine.plan(q).estimated_probes as usize)
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed", name), &work, |b, work| {
            b.iter(|| run_fixed(&engine, work))
        });
        group.bench_with_input(BenchmarkId::new("planned", name), &work, |b, work| {
            b.iter(|| run_planned(&engine, work))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
