//! Fig. 9(d): GTEA's two-round pruning time vs TwigStackD's pre-filtering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_baselines::{BaselineStats, TwigStackD};
use gtpq_bench::workloads::arxiv_graph_small;
use gtpq_core::GteaEngine;
use gtpq_datagen::{random_queries, RandomQueryConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9d_pruning");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = arxiv_graph_small();
    let engine = GteaEngine::new(&g);
    let twig_d = TwigStackD::new(&g);
    for &size in &[5usize, 9, 13] {
        let queries = random_queries(
            &g,
            &RandomQueryConfig {
                count: 5,
                ..RandomQueryConfig::with_size(size)
            },
        );
        group.bench_with_input(BenchmarkId::new("GTEA-pruning", size), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|q| engine.evaluate_with_stats(q).1.filtering_time())
                    .sum::<std::time::Duration>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("TwigStackD-prefilter", size),
            &queries,
            |b, qs| {
                b.iter(|| {
                    qs.iter()
                        .map(|q| {
                            let mut stats = BaselineStats::default();
                            let mut mat: Vec<Vec<gtpq_graph::NodeId>> = q
                                .node_ids()
                                .map(|u| q.candidates(twig_d_graph(&twig_d), u))
                                .collect();
                            twig_d.prefilter(q, &mut mat, &mut stats);
                            stats.filtering_time
                        })
                        .sum::<std::time::Duration>()
                })
            },
        );
    }
    group.finish();
}

fn twig_d_graph<'g>(t: &'g TwigStackD<'g>) -> &'g gtpq_graph::DataGraph {
    use gtpq_baselines::TpqAlgorithm;
    t.graph()
}

criterion_group!(benches, bench);
criterion_main!(benches);
