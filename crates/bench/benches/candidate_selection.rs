//! Candidate selection: full node scan vs. the attribute inverted index.
//!
//! For every query node of a workload the scan path tests each data node
//! against the attribute predicate (`Gtpq::candidates`, O(|V|·|fa|)), while
//! the indexed path intersects posting lists (`Gtpq::candidates_indexed`).
//! The arXiv workload (≈10k nodes, ≈1.1k labels) is where the paper's
//! selective predicates live — the indexed path touches a few posting
//! entries per query node instead of the whole node table.
//!
//! Set `GTPQ_BENCH_QUICK=1` for the CI smoke run (fewer samples, smaller
//! budget); the recorded baseline lives in
//! `crates/bench/baselines/BENCH_candidate_selection.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpq_bench::workloads::{arxiv_graph, xmark_graph};
use gtpq_datagen::{random_queries, xmark_q1, xmark_q2, xmark_q3, RandomQueryConfig};
use gtpq_graph::{AttrValue, DataGraph};
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder};

fn quick() -> bool {
    std::env::var("GTPQ_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Representative arXiv queries: selective label equalities plus a
/// label-and-year-range conjunction per query.
fn arxiv_workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = Vec::new();
    for i in 0..10u32 {
        let mut b = GtpqBuilder::new(
            AttrPredicate::label(&format!("paper{}", i * 13 % 900))
                .and("year", CmpOp::Ge, AttrValue::int(1996))
                .and("year", CmpOp::Le, AttrValue::int(2002)),
        );
        let root = b.root_id();
        let cited = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("paper{}", i * 31 % 900)),
        );
        let _author = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label(&format!("auth{}", i * 7 % 230)),
        );
        b.mark_output(cited);
        queries.push(b.build().expect("arxiv bench query is well formed"));
    }
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(5)));
    queries
}

fn xmark_workload(g: &DataGraph) -> Vec<Gtpq> {
    let mut queries = vec![xmark_q1(0), xmark_q2(0, 3), xmark_q3(0, 3, 7)];
    queries.extend(random_queries(g, &RandomQueryConfig::with_size(4)));
    queries
}

/// Sum of candidate-set sizes through the full scan.
fn scan_all(g: &DataGraph, queries: &[Gtpq]) -> usize {
    let mut total = 0;
    for q in queries {
        for u in q.node_ids() {
            total += q.candidates(g, u).len();
        }
    }
    total
}

/// Sum of candidate-set sizes through the inverted index.
fn index_all(g: &DataGraph, queries: &[Gtpq]) -> usize {
    let mut total = 0;
    for q in queries {
        for u in q.node_ids() {
            total += q.candidates_indexed(g, u).nodes.len();
        }
    }
    total
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_selection");
    if quick() {
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(50));
        group.measurement_time(Duration::from_millis(200));
    } else {
        group.sample_size(20);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    let workloads = [("arxiv", arxiv_graph()), ("xmark", xmark_graph(0.5))];
    for (name, graph) in workloads {
        let queries = if name == "arxiv" {
            arxiv_workload(&graph)
        } else {
            xmark_workload(&graph)
        };
        // The two paths must select identical candidate sets.
        for q in &queries {
            for u in q.node_ids() {
                assert_eq!(
                    q.candidates_indexed(&graph, u).nodes,
                    q.candidates(&graph, u),
                    "index/scan mismatch on {name}"
                );
            }
        }
        group.bench_with_input(BenchmarkId::new("scan", name), &queries, |b, queries| {
            b.iter(|| scan_all(&graph, queries))
        });
        group.bench_with_input(BenchmarkId::new("index", name), &queries, |b, queries| {
            b.iter(|| index_all(&graph, queries))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
