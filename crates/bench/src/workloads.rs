//! Workload construction shared by the experiment binary and the benches.
//!
//! Scales here are deliberately small (the generators scale the paper's
//! datasets down ~50×, see DESIGN.md) so the full experiment suite runs in
//! minutes on a laptop while preserving the relative shapes.

use gtpq_datagen::{generate_arxiv, generate_xmark, ArxivConfig, XmarkConfig};
use gtpq_graph::DataGraph;

/// XMark scale factors used by the Table 1 / Fig. 8(a) sweep.
pub const XMARK_SCALES: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 4.0];

/// Query sizes used by the arXiv experiments (Fig. 9).
pub const ARXIV_QUERY_SIZES: [usize; 5] = [5, 7, 9, 11, 13];

/// Generates the XMark-like graph for a paper scale factor, scaled down so the
/// whole sweep stays laptop sized.
pub fn xmark_graph(paper_scale: f64) -> DataGraph {
    generate_xmark(&XmarkConfig::with_scale(paper_scale * 0.2))
}

/// Generates the arXiv-like graph used by §5.2.
pub fn arxiv_graph() -> DataGraph {
    generate_arxiv(&ArxivConfig::default())
}

/// A small arXiv-like graph for quick benches.
pub fn arxiv_graph_small() -> DataGraph {
    generate_arxiv(&ArxivConfig::small())
}

/// Ten person/item label-group pairs, mirroring the paper's "ten random
/// queries per type" methodology with a fixed, reproducible choice.
pub fn label_groups() -> Vec<(u32, u32, u32)> {
    (0..10).map(|i| (i, (i + 3) % 10, (i + 7) % 10)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_constructors_produce_data() {
        let g = xmark_graph(0.5);
        assert!(g.node_count() > 500);
        let a = arxiv_graph_small();
        assert!(a.node_count() > 500);
        assert_eq!(label_groups().len(), 10);
    }
}
