//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p gtpq-bench --release --bin experiments -- all
//! cargo run -p gtpq-bench --release --bin experiments -- fig8a table2
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: experiments <table1|table2|fig8a|fig8b|fig9a|fig9b|fig9c|fig9d|fig10|fig12a|fig12b|fig12c|fig12d|ablation|all> ..."
        );
        std::process::exit(2);
    }
    for id in &args {
        if let Err(message) = gtpq_bench::run_experiment(id) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        println!();
    }
}
