//! Shared harness code for the experiment binary and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation maps to one function in
//! [`experiments`]; the `experiments` binary prints the corresponding rows
//! and the Criterion benches re-measure the hot paths with statistical
//! rigour.  DESIGN.md §3 is the index from paper artefact to the code here.

pub mod experiments;
pub mod workloads;

pub use experiments::run_experiment;
