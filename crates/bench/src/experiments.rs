//! Regenerates every table and figure of the paper's evaluation.
//!
//! Each experiment prints the same rows/series the paper reports (per-query
//! processing times per algorithm, result counts, I/O-cost counters).  The
//! absolute numbers differ from the paper — the datasets are scaled-down
//! synthetic stand-ins and the machine is different — but the *shapes*
//! (orderings, ratios, crossovers) are the reproduction target and are
//! recorded in EXPERIMENTS.md.

use std::time::{Duration, Instant};

use gtpq_baselines::{evaluate_gtpq_with, HgJoin, TpqAlgorithm, Twig2Stack, TwigStack, TwigStackD};
use gtpq_core::{GteaEngine, GteaOptions};
use gtpq_datagen::{
    fig11_gtpq, fig11_output_variant, random_queries, xmark_q1, xmark_q2, xmark_q3, Fig11Predicate,
    RandomQueryConfig,
};
use gtpq_graph::{DataGraph, GraphStats};
use gtpq_query::Gtpq;

use crate::workloads::{arxiv_graph, label_groups, xmark_graph, ARXIV_QUERY_SIZES, XMARK_SCALES};

/// Runs the experiment named `id` ("table1", "fig8a", ..., or "all"),
/// printing its rows to stdout.  Unknown ids return an error message listing
/// the available experiments.
pub fn run_experiment(id: &str) -> Result<(), String> {
    match id {
        "table1" => table1(),
        "table2" => table2(),
        "fig8a" => fig8a(),
        "fig8b" => fig8b(),
        "fig9a" => fig9a(),
        "fig9b" => fig9bc(false),
        "fig9c" => fig9bc(true),
        "fig9d" => fig9d(),
        "fig10" => fig10(),
        "fig12a" => fig12a(),
        "fig12b" => fig12bcd("DIS"),
        "fig12c" => fig12bcd("NEG"),
        "fig12d" => fig12bcd("DIS_NEG"),
        "ablation" => ablation(),
        "all" => {
            for id in [
                "table1", "table2", "fig8a", "fig8b", "fig9a", "fig9b", "fig9c", "fig9d", "fig10",
                "fig12a", "fig12b", "fig12c", "fig12d", "ablation",
            ] {
                run_experiment(id)?;
                println!();
            }
            Ok(())
        }
        other => Err(format!(
            "unknown experiment `{other}`; available: table1 table2 fig8a fig8b fig9a fig9b \
             fig9c fig9d fig10 fig12a fig12b fig12c fig12d ablation all"
        )),
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times one closure, returning (result, milliseconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, millis(start.elapsed()))
}

/// Table 1: statistics of the XMark-like datasets per scale factor.
fn table1() -> Result<(), String> {
    println!("== Table 1: XMark dataset statistics (scaled-down generator) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8}",
        "scale", "nodes", "edges", "size(MB)", "labels"
    );
    for &scale in &XMARK_SCALES {
        let g = xmark_graph(scale);
        let s = GraphStats::compute(&g);
        println!(
            "{:>6} {:>12} {:>12} {:>10.2} {:>8}",
            scale,
            s.nodes,
            s.edges,
            s.approx_megabytes(),
            s.distinct_labels
        );
    }
    Ok(())
}

/// Table 2: average result sizes of Q1–Q3 on every XMark scale.
fn table2() -> Result<(), String> {
    println!("== Table 2: average result sizes of Q1-Q3 on XMark ==");
    println!("{:>6} {:>10} {:>10} {:>10}", "scale", "Q1", "Q2", "Q3");
    for &scale in &XMARK_SCALES {
        let g = xmark_graph(scale);
        let engine = GteaEngine::new(&g);
        let mut sums = [0f64; 3];
        let groups = label_groups();
        for &(p, i, s) in &groups {
            sums[0] += engine.evaluate(&xmark_q1(p)).len() as f64;
            sums[1] += engine.evaluate(&xmark_q2(p, i)).len() as f64;
            sums[2] += engine.evaluate(&xmark_q3(p, i, s)).len() as f64;
        }
        let n = groups.len() as f64;
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1}",
            scale,
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
    }
    Ok(())
}

/// Runs every algorithm on one conjunctive query, returning (name, ms) pairs.
fn run_all_algorithms(g: &DataGraph, q: &Gtpq) -> Vec<(&'static str, f64)> {
    let mut rows = Vec::new();
    let engine = GteaEngine::new(g);
    let (_, t) = timed(|| engine.evaluate(q));
    rows.push(("GTEA", t));
    let twig_d = TwigStackD::new(g);
    let (_, t) = timed(|| twig_d.evaluate(q));
    rows.push(("TwigStackD", t));
    let hg_plus = HgJoin::tuple_based(g);
    let (_, t) = timed(|| hg_plus.evaluate(q));
    rows.push(("HGJoin+", t));
    let twig = TwigStack::new(g);
    let (_, t) = timed(|| twig.evaluate(q));
    rows.push(("TwigStack", t));
    let twig2 = Twig2Stack::new(g);
    let (_, t) = timed(|| twig2.evaluate(q));
    rows.push(("Twig2Stack", t));
    rows
}

/// Fig. 8(a): query time of Q1 per algorithm, varying the XMark scale.
fn fig8a() -> Result<(), String> {
    println!("== Fig. 8(a): Q1 query time (ms) vs data size ==");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "scale", "GTEA", "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack"
    );
    for &scale in &XMARK_SCALES {
        let g = xmark_graph(scale);
        let groups = label_groups();
        let mut totals = [0f64; 5];
        for &(p, _, _) in groups.iter().take(3) {
            let q = xmark_q1(p);
            for (i, (_, t)) in run_all_algorithms(&g, &q).into_iter().enumerate() {
                totals[i] += t;
            }
        }
        let n = 3.0;
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>12.2}",
            scale,
            totals[0] / n,
            totals[1] / n,
            totals[2] / n,
            totals[3] / n,
            totals[4] / n
        );
    }
    Ok(())
}

/// Fig. 8(b): query time per query (Q1, Q2, Q3) on the smallest XMark scale.
fn fig8b() -> Result<(), String> {
    println!("== Fig. 8(b): query time (ms) per query on XMark scale 0.5 ==");
    let g = xmark_graph(0.5);
    println!(
        "{:>4} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "Q", "GTEA", "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack"
    );
    let groups = label_groups();
    for (qi, make) in [
        (
            "Q1",
            Box::new(|(p, _, _): (u32, u32, u32)| xmark_q1(p)) as Box<dyn Fn(_) -> Gtpq>,
        ),
        ("Q2", Box::new(|(p, i, _)| xmark_q2(p, i))),
        ("Q3", Box::new(|(p, i, s)| xmark_q3(p, i, s))),
    ] {
        let mut totals = [0f64; 5];
        for &grp in groups.iter().take(3) {
            let q = make(grp);
            for (i, (_, t)) in run_all_algorithms(&g, &q).into_iter().enumerate() {
                totals[i] += t;
            }
        }
        let n = 3.0;
        println!(
            "{:>4} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>12.2}",
            qi,
            totals[0] / n,
            totals[1] / n,
            totals[2] / n,
            totals[3] / n,
            totals[4] / n
        );
    }
    Ok(())
}

fn arxiv_query_groups(g: &DataGraph, size: usize) -> (Vec<Gtpq>, Vec<Gtpq>) {
    // Generate a pool and split it into small-result and large-result groups
    // by evaluating with GTEA, mirroring the paper's two result-size buckets.
    let engine = GteaEngine::new(g);
    let pool = random_queries(
        g,
        &RandomQueryConfig {
            count: 30,
            ..RandomQueryConfig::with_size(size)
        },
    );
    let mut small = Vec::new();
    let mut large = Vec::new();
    for q in pool {
        let n = engine.evaluate(&q).len();
        if n == 0 {
            continue;
        }
        if n <= 50 && small.len() < 15 {
            small.push(q);
        } else if n > 50 && large.len() < 15 {
            large.push(q);
        }
    }
    (small, large)
}

/// Fig. 9(a): distribution of the result sizes of the random arXiv queries.
fn fig9a() -> Result<(), String> {
    println!("== Fig. 9(a): result-size distribution of random arXiv queries ==");
    let g = arxiv_graph();
    let engine = GteaEngine::new(&g);
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "size", "#queries", "avg-small", "avg-large"
    );
    for &size in &ARXIV_QUERY_SIZES {
        let (small, large) = arxiv_query_groups(&g, size);
        let avg = |qs: &[Gtpq]| {
            if qs.is_empty() {
                0.0
            } else {
                qs.iter()
                    .map(|q| engine.evaluate(q).len() as f64)
                    .sum::<f64>()
                    / qs.len() as f64
            }
        };
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1}",
            size,
            small.len() + large.len(),
            avg(&small),
            avg(&large)
        );
    }
    Ok(())
}

/// Fig. 9(b)/(c): query time vs query size on the arXiv graph for the
/// small-result (`false`) or large-result (`true`) group.
fn fig9bc(large_group: bool) -> Result<(), String> {
    let label = if large_group {
        "(c) large results"
    } else {
        "(b) small results"
    };
    println!("== Fig. 9{label}: query time (ms) vs query size on arXiv ==");
    let g = arxiv_graph();
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "size", "GTEA", "HGJoin*", "HGJoin+", "TwigStackD"
    );
    let engine = GteaEngine::new(&g);
    let hg_star = HgJoin::graph_based(&g);
    let hg_plus = HgJoin::tuple_based(&g);
    let twig_d = TwigStackD::new(&g);
    for &size in &ARXIV_QUERY_SIZES {
        let (small, large) = arxiv_query_groups(&g, size);
        let queries = if large_group { large } else { small };
        if queries.is_empty() {
            println!("{size:>6}  (no queries in this bucket)");
            continue;
        }
        let mut totals = [0f64; 4];
        for q in &queries {
            totals[0] += timed(|| engine.evaluate(q)).1;
            totals[1] += timed(|| hg_star.evaluate(q)).1;
            totals[2] += timed(|| hg_plus.evaluate(q)).1;
            totals[3] += timed(|| twig_d.evaluate(q)).1;
        }
        let n = queries.len() as f64;
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
            size,
            totals[0] / n,
            totals[1] / n,
            totals[2] / n,
            totals[3] / n
        );
    }
    Ok(())
}

/// Fig. 9(d): GTEA's pruning time vs TwigStackD's pre-filtering time.
fn fig9d() -> Result<(), String> {
    println!("== Fig. 9(d): filtering time (ms) vs query size on arXiv ==");
    let g = arxiv_graph();
    let engine = GteaEngine::new(&g);
    let twig_d = TwigStackD::new(&g);
    println!(
        "{:>6} {:>12} {:>12} {:>16} {:>16}",
        "size", "GTEA-small", "GTEA-large", "TwigStackD-small", "TwigStackD-large"
    );
    for &size in &ARXIV_QUERY_SIZES {
        let (small, large) = arxiv_query_groups(&g, size);
        let gtea_filter = |qs: &[Gtpq]| -> f64 {
            if qs.is_empty() {
                return 0.0;
            }
            qs.iter()
                .map(|q| millis(engine.evaluate_with_stats(q).1.filtering_time()))
                .sum::<f64>()
                / qs.len() as f64
        };
        let twig_filter = |qs: &[Gtpq]| -> f64 {
            if qs.is_empty() {
                return 0.0;
            }
            qs.iter()
                .map(|q| millis(twig_d.evaluate(q).1.filtering_time))
                .sum::<f64>()
                / qs.len() as f64
        };
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>16.3} {:>16.3}",
            size,
            gtea_filter(&small),
            gtea_filter(&large),
            twig_filter(&small),
            twig_filter(&large)
        );
    }
    Ok(())
}

/// Fig. 10: I/O-cost metrics of Q3 on the mid-sized XMark graph.
fn fig10() -> Result<(), String> {
    println!("== Fig. 10: I/O cost of Q3 on XMark scale 1.5 ==");
    let g = xmark_graph(1.5);
    // Pick the first label-group combination with a non-empty answer so the
    // intermediate-result comparison is not degenerate.
    let probe = GteaEngine::new(&g);
    // Wildcard person/seller groups (10) keep the instance representative of
    // the paper's Q3 while guaranteeing a non-degenerate number of matches on
    // the scaled-down data; the specific-group instances are tried first.
    let mut candidates: Vec<Gtpq> = label_groups()
        .into_iter()
        .map(|(p, i, s)| xmark_q3(p, i, s))
        .collect();
    candidates.push(xmark_q3(10, 3, 10));
    candidates.push(xmark_q3(10, 10, 10));
    let q = candidates
        .iter()
        .find(|q| probe.evaluate(q).len() >= 5)
        .or_else(|| candidates.iter().find(|q| !probe.evaluate(q).is_empty()))
        .cloned()
        .unwrap_or_else(|| xmark_q1(0));
    println!(
        "{:>12} {:>12} {:>16} {:>12}",
        "algorithm", "#input", "#intermediate", "#index"
    );
    let engine = GteaEngine::new(&g);
    let (_, s) = engine.evaluate_with_stats(&q);
    println!(
        "{:>12} {:>12} {:>16} {:>12}",
        "GTEA", s.input_nodes, s.intermediate_size, s.index_lookups
    );
    for (name, stats) in [
        ("HGJoin+", HgJoin::tuple_based(&g).evaluate(&q).1),
        ("TwigStackD", TwigStackD::new(&g).evaluate(&q).1),
        ("TwigStack", TwigStack::new(&g).evaluate(&q).1),
        ("Twig2Stack", Twig2Stack::new(&g).evaluate(&q).1),
    ] {
        println!(
            "{:>12} {:>12} {:>16} {:>12}",
            name, stats.input_nodes, stats.intermediate_results, stats.index_lookups
        );
    }
    Ok(())
}

/// Table 3 + Fig. 12(a): GTEA time varying the number of output nodes.
fn fig12a() -> Result<(), String> {
    println!("== Fig. 12(a)/Table 3: GTEA time (ms) varying output nodes (Q4-Q8) ==");
    let g = xmark_graph(2.0);
    let engine = GteaEngine::new(&g);
    println!(
        "{:>4} {:>10} {:>10} {:>10}",
        "Q", "#outputs", "results", "time(ms)"
    );
    for which in 4..=8u32 {
        let q = fig11_output_variant(which, 10, 3);
        let (res, t) = timed(|| engine.evaluate(&q));
        println!(
            "{:>4} {:>10} {:>10} {:>10.2}",
            format!("Q{which}"),
            q.output_nodes().len(),
            res.len(),
            t
        );
    }
    Ok(())
}

/// Table 4/5 + Fig. 12(b)-(d): GTPQs with disjunction and/or negation,
/// comparing GTEA with the decompose-and-merge baselines.
fn fig12bcd(prefix: &str) -> Result<(), String> {
    println!("== Fig. 12 ({prefix}*): GTPQ processing time (ms) and result counts ==");
    let g = xmark_graph(1.0);
    let engine = GteaEngine::new(&g);
    let twig = TwigStack::new(&g);
    let twig_d = TwigStackD::new(&g);
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>14}",
        "query", "results", "GTEA", "TwigStack+dm", "TwigStackD+dm"
    );
    for (name, variant) in Fig11Predicate::table4_suite() {
        // Fig. 12(b) covers DIS*, (c) NEG*, (d) DIS_NEG*.
        let matches_prefix = match prefix {
            "DIS" => name.starts_with("DIS") && !name.starts_with("DIS_NEG"),
            "NEG" => name.starts_with("NEG"),
            _ => name.starts_with("DIS_NEG"),
        };
        if !matches_prefix {
            continue;
        }
        let q = fig11_gtpq(variant, 0, 3);
        let (res, t_gtea) = timed(|| engine.evaluate(&q));
        let (res_ts, t_ts) = timed(|| evaluate_gtpq_with(&twig, &q).0);
        let (res_tsd, t_tsd) = timed(|| evaluate_gtpq_with(&twig_d, &q).0);
        assert!(res.same_answer(&res_ts), "{name}: TwigStack+dm disagrees");
        assert!(res.same_answer(&res_tsd), "{name}: TwigStackD+dm disagrees");
        println!(
            "{:>10} {:>8} {:>10.2} {:>14.2} {:>14.2}",
            name,
            res.len(),
            t_gtea,
            t_ts,
            t_tsd
        );
    }
    Ok(())
}

/// Ablation of GTEA's design decisions (DESIGN.md §3): upward pruning,
/// contour merging, prime-subtree shrinking.
fn ablation() -> Result<(), String> {
    println!("== Ablation: GTEA design decisions on XMark scale 1.0, Q3 ==");
    let g = xmark_graph(1.0);
    let q = xmark_q3(0, 3, 7);
    println!(
        "{:>24} {:>10} {:>14}",
        "configuration", "time(ms)", "#intermediate"
    );
    for (name, options) in [
        ("full", GteaOptions::default()),
        ("no upward pruning", GteaOptions::without_upward_pruning()),
        ("no contour merging", GteaOptions::without_contours()),
        ("no subtree shrinking", GteaOptions::without_shrinking()),
    ] {
        let engine = GteaEngine::with_options(&g, options);
        let ((_, stats), t) = timed(|| engine.evaluate_with_stats(&q));
        println!("{:>24} {:>10.2} {:>14}", name, t, stats.intermediate_size);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let err = run_experiment("nope").unwrap_err();
        assert!(err.contains("unknown experiment"));
    }

    #[test]
    fn small_experiments_run() {
        run_experiment("table1").unwrap();
        run_experiment("fig12a").unwrap();
        run_experiment("ablation").unwrap();
    }
}
