//! Prometheus text-format (version 0.0.4) exposition helpers.
//!
//! [`PromText`] accumulates `# HELP`/`# TYPE` headers plus sample lines for
//! counters, gauges and histograms; the service's
//! `MetricsSnapshot::render_prometheus` composes its whole scrape page out of
//! these.  Histograms recorded in nanoseconds are exported in seconds (the
//! Prometheus base-unit convention) with cumulative `le` buckets computed
//! from the snapshot's log-bucket layout.

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;

/// Default `le` bounds (in seconds) for nanosecond-fed latency histograms:
/// 1µs to 10s, one per decade, plus `+Inf`.
pub const LATENCY_BOUNDS_SECONDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Accumulates a Prometheus text-format scrape page.
///
/// ```
/// use gtpq_obs::PromText;
///
/// let mut page = PromText::new();
/// page.counter("gtpq_queries_total", "Queries answered.", 42.0);
/// page.gauge("gtpq_cache_hit_ratio", "Cache hit fraction.", 0.5);
/// let text = page.finish();
/// assert!(text.contains("# TYPE gtpq_queries_total counter"));
/// assert!(text.contains("gtpq_queries_total 42"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name}");
        let _ = writeln!(self.buf, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Appends a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name} {}", fmt_value(value));
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name} {}", fmt_value(value));
    }

    /// Appends a histogram whose samples are *nanoseconds*, exported in
    /// seconds: one cumulative `_bucket` line per bound in `bounds_seconds`
    /// plus `+Inf`, then `_sum` and `_count`.  `labels` are attached to
    /// every line (alongside `le` on the buckets).
    pub fn histogram_seconds(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        bounds_seconds: &[f64],
    ) {
        // One header per metric family; histograms sharing a name across
        // label sets must emit it only once.
        if !self.buf.contains(&format!("# TYPE {name} ")) {
            self.header(name, help, "histogram");
        }
        for &bound in bounds_seconds {
            let le = fmt_value(bound);
            let nanos = (bound * 1e9).min(u64::MAX as f64) as u64;
            let count = snap.cumulative_le(nanos);
            let _ = writeln!(
                self.buf,
                "{name}_bucket{} {count}",
                render_labels(labels, Some(&le))
            );
        }
        let _ = writeln!(
            self.buf,
            "{name}_bucket{} {}",
            render_labels(labels, Some("+Inf")),
            snap.count
        );
        let _ = writeln!(
            self.buf,
            "{name}_sum{} {}",
            render_labels(labels, None),
            fmt_value(snap.sum as f64 / 1e9)
        );
        let _ = writeln!(
            self.buf,
            "{name}_count{} {}",
            render_labels(labels, None),
            snap.count
        );
    }

    /// The accumulated page.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// `{a="x",le="0.1"}`, or the empty string when there is nothing to render.
fn render_labels(labels: &[(&str, &str)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        debug_assert!(valid_label_name(k), "invalid label name {k}");
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Renders a float the Prometheus way: integers without a fraction.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_headers_and_samples() {
        let mut page = PromText::new();
        page.counter("x_total", "Help with\nnewline.", 3.0);
        page.gauge("x_ratio", "A ratio.", 0.25);
        let text = page.finish();
        assert!(text.contains("# HELP x_total Help with\\nnewline.\n"));
        assert!(text.contains("# TYPE x_total counter\nx_total 3\n"));
        assert!(text.contains("# TYPE x_ratio gauge\nx_ratio 0.25\n"));
    }

    #[test]
    fn histograms_expose_cumulative_buckets_in_seconds() {
        let h = LogHistogram::new();
        h.record_duration(Duration::from_micros(5)); // 5e-6 s
        h.record_duration(Duration::from_millis(2)); // 2e-3 s
        let snap = h.snapshot();
        let mut page = PromText::new();
        page.histogram_seconds(
            "lat_seconds",
            "Latency.",
            &[("stage", "candidates")],
            &snap,
            LATENCY_BOUNDS_SECONDS,
        );
        let text = page.finish();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{stage=\"candidates\",le=\"0.000001\"} 0"));
        assert!(text.contains("lat_seconds_bucket{stage=\"candidates\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count{stage=\"candidates\"} 2"));
        // Bucket counts are monotone non-decreasing along the bounds.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        // The 1e-5 bound must already include the 5µs sample (bucket
        // resolution is 12.5%, well under the decade spacing).
        assert!(text.contains("le=\"0.00001\"} 1"));
    }

    #[test]
    fn shared_histogram_family_emits_one_header() {
        let snap = LogHistogram::new().snapshot();
        let mut page = PromText::new();
        page.histogram_seconds("h_seconds", "H.", &[("stage", "a")], &snap, &[1.0]);
        page.histogram_seconds("h_seconds", "H.", &[("stage", "b")], &snap, &[1.0]);
        let text = page.finish();
        assert_eq!(text.matches("# TYPE h_seconds histogram").count(), 1);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("gtpq_queries_total"));
        assert!(valid_metric_name(":ns:x"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }
}
