//! Structured per-request tracing: a span tree recorded by a [`Tracer`],
//! finished into an owned [`Trace`], exportable as Chrome `trace_event` JSON.
//!
//! The design point is *zero cost when disabled*: a disabled tracer is a
//! `None`, [`Tracer::span`] returns an inert guard without reading the clock
//! or converting the name, and the hot path pays two branch instructions.
//! When enabled, spans are appended to a flat `Vec` guarded by a `RefCell`;
//! the tracer is `Rc`-shared (one evaluation runs on one thread — the same
//! contract as the engine's `ExecCtl` poll counter), while the finished
//! [`Trace`] is plain owned data that crosses threads freely.
//!
//! Nesting comes from a stack of open spans: a span created while another is
//! open becomes its child.  Guards may drop out of creation order (the stack
//! self-repairs), but the intended discipline is strict RAII nesting.

use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded span: a named, timed interval in the request's span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Human-readable stage or operator name (`request`, `candidates`,
    /// `prune_down u2`, ...).  Static stage names are borrowed, so opening
    /// a fixed-name span allocates nothing.
    pub name: Cow<'static, str>,
    /// Index of the parent span in [`Trace::spans`]; `None` for roots.
    pub parent: Option<usize>,
    /// Offset from the tracer's creation instant to the span's start.
    pub start: Duration,
    /// Span duration (zero until the guard drops).
    pub dur: Duration,
    /// Attached key/value annotations (operator estimates, row counts, ...).
    pub fields: Vec<(&'static str, String)>,
}

#[derive(Debug, Default)]
struct TraceData {
    spans: Vec<Span>,
    /// Stack of open span indices; the top is the parent of the next span.
    open: Vec<usize>,
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    data: RefCell<TraceData>,
}

/// Records a span tree for one request; cheap to clone and share across the
/// stages of one (single-threaded) evaluation.
///
/// ```
/// use gtpq_obs::Tracer;
///
/// let tracer = Tracer::enabled();
/// {
///     let request = tracer.span("request");
///     let stage = tracer.span("candidates");
///     stage.field("est_rows", 42);
///     drop(stage);
///     drop(request);
/// }
/// let trace = tracer.finish().unwrap();
/// assert_eq!(trace.spans.len(), 2);
/// assert_eq!(trace.spans[1].parent, Some(0));
/// assert!(Tracer::disabled().finish().is_none());
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(
                f,
                "Tracer(enabled, {} spans)",
                inner.data.borrow().spans.len()
            ),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A no-op tracer: every [`span`](Self::span) is inert,
    /// [`finish`](Self::finish) returns `None`.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording tracer; its epoch (span offsets are relative to it) is
    /// the moment of this call.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Rc::new(TracerInner {
                epoch: Instant::now(),
                data: RefCell::new(TraceData {
                    // Typical request traces run a few dozen spans; reserving
                    // up front keeps span recording reallocation-free.
                    spans: Vec::with_capacity(32),
                    open: Vec::with_capacity(8),
                }),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes (and records its duration) when the returned
    /// guard drops.  The currently open span, if any, becomes its parent.
    ///
    /// Disabled tracers return an inert guard without converting `name` or
    /// reading the clock; enabled tracers borrow static names, so fixed-name
    /// spans allocate nothing.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None };
        };
        let start = inner.epoch.elapsed();
        let mut data = inner.data.borrow_mut();
        let parent = data.open.last().copied();
        let idx = data.spans.len();
        data.spans.push(Span {
            name: name.into(),
            parent,
            start,
            dur: Duration::ZERO,
            fields: Vec::new(),
        });
        data.open.push(idx);
        SpanGuard {
            inner: Some((Rc::clone(inner), idx)),
        }
    }

    /// Like [`span`](Self::span) but the name is built lazily — use for
    /// `format!`ed per-operator names so a disabled tracer allocates nothing.
    pub fn span_with(&self, name: impl FnOnce() -> String) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard { inner: None };
        }
        self.span(name())
    }

    /// A recording tracer whose span offsets are relative to an explicit
    /// epoch — how [`SpanCollector::tracer`] aligns worker-thread spans with
    /// the parent trace's timeline.
    fn enabled_at(epoch: Instant) -> Self {
        Self {
            inner: Some(Rc::new(TracerInner {
                epoch,
                data: RefCell::new(TraceData {
                    spans: Vec::with_capacity(8),
                    open: Vec::with_capacity(4),
                }),
            })),
        }
    }

    /// A `Send + Sync` collector that worker threads record spans into, for
    /// later grafting into this tracer via [`adopt`](Self::adopt).
    ///
    /// The collector shares this tracer's epoch, so worker span offsets line
    /// up with the parent timeline.  A disabled tracer returns a disabled
    /// collector (every worker tracer is inert, adoption is a no-op).
    pub fn collector(&self) -> SpanCollector {
        SpanCollector {
            inner: self.inner.as_ref().map(|inner| {
                Arc::new(CollectorInner {
                    epoch: inner.epoch,
                    groups: Mutex::new(Vec::new()),
                })
            }),
        }
    }

    /// Grafts every span group recorded into `collector` under the currently
    /// open span (or as roots when none is open), preserving each group's
    /// internal nesting.  Call after the worker threads that recorded into
    /// the collector have finished.
    pub fn adopt(&self, collector: &SpanCollector) {
        let (Some(inner), Some(collected)) = (&self.inner, &collector.inner) else {
            return;
        };
        let groups = std::mem::take(&mut *collected.groups.lock().expect("collector poisoned"));
        let mut data = inner.data.borrow_mut();
        let graft_parent = data.open.last().copied();
        for group in groups {
            let base = data.spans.len();
            for mut span in group {
                span.parent = match span.parent {
                    Some(local) => Some(local + base),
                    None => graft_parent,
                };
                data.spans.push(span);
            }
        }
    }

    /// Snapshots the recorded spans into an owned [`Trace`] (`None` for a
    /// disabled tracer).  Open spans are closed as of now.
    ///
    /// When this is the last clone of the tracer the spans are moved out
    /// without copying; otherwise they are cloned (the recording keeps
    /// going for the remaining clones).
    pub fn finish(self) -> Option<Trace> {
        let inner = self.inner?;
        let now = inner.epoch.elapsed();
        let mut data = match Rc::try_unwrap(inner) {
            Ok(inner) => inner.data.into_inner(),
            Err(inner) => {
                let data = inner.data.borrow();
                TraceData {
                    spans: data.spans.clone(),
                    open: data.open.clone(),
                }
            }
        };
        for idx in std::mem::take(&mut data.open) {
            let span = &mut data.spans[idx];
            span.dur = now.saturating_sub(span.start);
        }
        Some(Trace { spans: data.spans })
    }
}

/// RAII guard of one open span: records the duration on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    inner: Option<(Rc<TracerInner>, usize)>,
}

impl SpanGuard {
    /// Attaches a key/value annotation to the span (no-op on inert guards).
    pub fn field(&self, name: &'static str, value: impl fmt::Display) {
        if let Some((inner, idx)) = &self.inner {
            inner.data.borrow_mut().spans[*idx]
                .fields
                .push((name, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, idx)) = self.inner.take() {
            let now = inner.epoch.elapsed();
            let mut data = inner.data.borrow_mut();
            let span = &mut data.spans[idx];
            span.dur = now.saturating_sub(span.start);
            // Usually the top of the stack; out-of-order drops close every
            // span opened after this one (their guards record durations on
            // their own drop, parentage is already fixed).
            if let Some(pos) = data.open.iter().rposition(|&i| i == idx) {
                data.open.truncate(pos);
            }
        }
    }
}

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    /// One group per worker submission; group-local parent indices are
    /// re-based when the parent tracer adopts them.
    groups: Mutex<Vec<Vec<Span>>>,
}

/// A `Send + Sync` bridge between worker threads and an `Rc`-based parent
/// [`Tracer`]: each worker records spans through its own thread-local tracer
/// ([`tracer`](Self::tracer)), submits them ([`absorb`](Self::absorb)), and
/// the parent grafts everything into its span tree with [`Tracer::adopt`].
///
/// ```
/// use gtpq_obs::Tracer;
///
/// let parent = Tracer::enabled();
/// let root = parent.span("enumerate");
/// let collector = parent.collector();
/// std::thread::scope(|scope| {
///     scope.spawn(|| {
///         let worker = collector.tracer();
///         drop(worker.span("worker 0"));
///         collector.absorb(worker);
///     });
/// });
/// parent.adopt(&collector);
/// drop(root);
/// let trace = parent.finish().unwrap();
/// assert_eq!(trace.span("worker 0").unwrap().parent, Some(0));
/// ```
#[derive(Clone, Default)]
pub struct SpanCollector {
    inner: Option<Arc<CollectorInner>>,
}

impl fmt::Debug for SpanCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(
                f,
                "SpanCollector(enabled, {} groups)",
                inner.groups.lock().map(|g| g.len()).unwrap_or(0)
            ),
            None => write!(f, "SpanCollector(disabled)"),
        }
    }
}

impl SpanCollector {
    /// Whether spans recorded through this collector will be kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh worker-local tracer sharing the parent's epoch.  Create it on
    /// the worker thread (tracers are `Rc`-based and do not cross threads),
    /// record spans as usual, then hand it back with [`absorb`](Self::absorb).
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            Some(inner) => Tracer::enabled_at(inner.epoch),
            None => Tracer::disabled(),
        }
    }

    /// Finishes a worker tracer and stores its spans as one group (open spans
    /// are closed as of now; no-op for disabled tracers/collectors).
    pub fn absorb(&self, worker: Tracer) {
        let (Some(inner), Some(trace)) = (&self.inner, worker.finish()) else {
            return;
        };
        if trace.spans.is_empty() {
            return;
        }
        inner
            .groups
            .lock()
            .expect("collector poisoned")
            .push(trace.spans);
    }
}

/// A finished span tree: plain owned data, `Send`, attachable to a query
/// outcome and exportable for external viewers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// All recorded spans, in creation order (parents before children).
    pub spans: Vec<Span>,
}

impl Trace {
    /// The first root span (no parent), if any — by convention the
    /// service's `request` span.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// The first span with the given name.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The children of span `idx`, in creation order.
    pub fn children_of(&self, idx: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(idx))
    }

    /// Renders the tree as indented text (one span per line, with duration
    /// and fields) — what the CLI's `:trace` shows.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for (idx, span) in self.spans.iter().enumerate() {
            if span.parent.is_none() {
                self.render_node(idx, 0, &mut out);
            }
        }
        out
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let span = &self.spans[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{} {:?}", span.name, span.dur);
        for (k, v) in &span.fields {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for (child, span) in self.spans.iter().enumerate() {
            if span.parent == Some(idx) {
                self.render_node(child, depth + 1, out);
            }
        }
    }

    /// Exports the tree in Chrome `trace_event` JSON (complete `"X"` events,
    /// microsecond timestamps), loadable in `about:tracing` or Perfetto.
    ///
    /// Every event carries `name`, `ph`, `ts`, `dur`, `pid`, `tid`; span
    /// fields become the event's `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            use std::fmt::Write as _;
            if i > 0 {
                out.push(',');
            }
            let ts = span.start.as_nanos() as f64 / 1000.0;
            let dur = span.dur.as_nanos() as f64 / 1000.0;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"gtpq\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":1",
                escape_json(&span.name)
            );
            if !span.fields.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in span.fields.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", escape_json(k), escape_json(v));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Encodes `s` as a JSON string literal (quotes included).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let guard = tracer.span("anything");
        guard.field("k", 1);
        drop(guard);
        // Lazy names are never built.
        let _ = tracer.span_with(|| unreachable!("disabled tracer must not build names"));
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn spans_nest_by_open_stack() {
        let tracer = Tracer::enabled();
        let root = tracer.span("request");
        let a = tracer.span("a");
        drop(a);
        let b = tracer.span_with(|| "b".to_owned());
        b.field("rows", 7);
        drop(b);
        drop(root);
        let sibling = tracer.span("second_root");
        drop(sibling);
        let trace = tracer.finish().unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(0));
        assert_eq!(trace.spans[3].parent, None);
        assert_eq!(trace.spans[2].fields, vec![("rows", "7".to_owned())]);
        assert_eq!(trace.root().unwrap().name, "request");
        assert_eq!(trace.children_of(0).count(), 2);
        // Children start within the parent and end no later than it does.
        let root = &trace.spans[0];
        for child in trace.children_of(0) {
            assert!(child.start >= root.start);
            assert!(child.start + child.dur <= root.start + root.dur);
        }
    }

    #[test]
    fn out_of_order_drops_self_repair() {
        let tracer = Tracer::enabled();
        let a = tracer.span("a");
        let b = tracer.span("b");
        drop(a); // closes `a` while `b` is still open
        drop(b);
        let c = tracer.span("c");
        drop(c);
        let trace = tracer.finish().unwrap();
        assert_eq!(trace.spans[2].parent, None, "stack was repaired");
    }

    #[test]
    fn finish_closes_open_spans() {
        let tracer = Tracer::enabled();
        let _guard = tracer.span("open");
        std::thread::sleep(Duration::from_millis(1));
        let trace = tracer.finish().unwrap();
        assert!(trace.spans[0].dur >= Duration::from_millis(1));
    }

    #[test]
    fn render_tree_indents_children() {
        let tracer = Tracer::enabled();
        let root = tracer.span("request");
        drop(tracer.span("child"));
        drop(root);
        let rendered = tracer.finish().unwrap().render_tree();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("request "));
        assert!(lines[1].starts_with("  child "));
    }

    #[test]
    fn collector_grafts_worker_spans_under_the_open_span() {
        let parent = Tracer::enabled();
        let root = parent.span("request");
        let stage = parent.span("enumerate");
        let collector = parent.collector();
        assert!(collector.is_enabled());
        std::thread::scope(|scope| {
            for i in 0..2 {
                let collector = &collector;
                scope.spawn(move || {
                    let worker = collector.tracer();
                    let outer = worker.span_with(|| format!("worker {i}"));
                    drop(worker.span("inner"));
                    drop(outer);
                    collector.absorb(worker);
                });
            }
        });
        parent.adopt(&collector);
        // A second adopt of the same (now drained) collector adds nothing:
        // the worker-span count below stays at exactly two.
        parent.adopt(&collector);
        drop(stage);
        drop(root);
        let trace = parent.finish().unwrap();
        let enumerate = trace
            .spans
            .iter()
            .position(|s| s.name == "enumerate")
            .unwrap();
        // Both worker roots graft under `enumerate`; nesting is preserved.
        let workers: Vec<usize> = trace
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name.starts_with("worker "))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_eq!(trace.spans[*w].parent, Some(enumerate));
        }
        let inners: Vec<&Span> = trace.spans.iter().filter(|s| s.name == "inner").collect();
        assert_eq!(inners.len(), 2);
        for inner in inners {
            assert!(workers.contains(&inner.parent.unwrap()));
        }
    }

    #[test]
    fn disabled_collector_is_inert() {
        let collector = Tracer::disabled().collector();
        assert!(!collector.is_enabled());
        let worker = collector.tracer();
        assert!(!worker.is_enabled());
        collector.absorb(worker);
        let enabled = Tracer::enabled();
        enabled.adopt(&collector);
        assert!(enabled.finish().unwrap().spans.is_empty());
        // An enabled collector absorbed into by no one adopts nothing either.
        let parent = Tracer::enabled();
        let empty = parent.collector();
        parent.adopt(&empty);
        assert!(parent.finish().unwrap().spans.is_empty());
    }

    #[test]
    fn chrome_export_has_required_keys_and_escapes() {
        let tracer = Tracer::enabled();
        let span = tracer.span("weird \"name\"\n");
        span.field("est_rows", 3);
        drop(span);
        let json = tracer.finish().unwrap().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"traceEvents\"",
            "\"name\"",
            "\"ph\":\"X\"",
            "\"ts\"",
            "\"dur\"",
            "\"pid\"",
            "\"tid\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("weird \\\"name\\\"\\n"));
        assert!(json.contains("\"args\":{\"est_rows\":\"3\"}"));
    }
}
