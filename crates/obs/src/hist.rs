//! Lock-free log-bucketed latency histograms (HDR-style).
//!
//! Values are `u64`s (the service records nanoseconds) bucketed into a
//! log-linear layout: [`SUB_BITS`] sub-buckets per power of two, giving a
//! bounded relative error of `2^-SUB_BITS` (12.5%) per bucket across the
//! whole `u64` range with a fixed [`BUCKETS`]-slot table.  Recording is one
//! relaxed `fetch_add` plus `fetch_min`/`fetch_max` — no locks, safe to
//! hammer from any number of threads — and a [`HistogramSnapshot`] is a
//! plain copy with percentile and cumulative-count queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power of two is split into `2^SUB_BITS`
/// linear sub-buckets.
pub const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS; // 8

/// Number of buckets covering the whole `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index of `v` (log-linear layout).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (msb as usize - SUB_BITS as usize) * SUB + SUB + sub
}

/// Inclusive upper bound of bucket `index` — every value in the bucket is
/// `<=` this bound, and the bound itself maps back into the bucket.
pub fn bucket_bound(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let i = index - SUB;
    let msb = (i / SUB) as u32 + SUB_BITS;
    let sub = (i % SUB) as u64;
    let low = (1u64 << msb) + (sub << (msb - SUB_BITS));
    low + ((1u64 << (msb - SUB_BITS)) - 1)
}

/// A lock-free log-bucketed histogram of `u64` samples.
///
/// ```
/// use gtpq_obs::LogHistogram;
///
/// let h = LogHistogram::new();
/// for v in [10, 20, 30, 1_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.min, 10);
/// assert_eq!(snap.max, 1_000);
/// assert!(snap.percentile(0.5) >= 20 && snap.percentile(0.5) <= 23);
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed atomics; callable from any thread).
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Point-in-time copy.  Concurrent recorders may skew individual
    /// buckets against the totals by in-flight samples — the usual contract
    /// for service counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: match self.min.load(Ordering::Relaxed) {
                u64::MAX => 0,
                v => v,
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LogHistogram`], with percentile queries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`, clamped into
    /// the recorded `[min, max]`.  Zero when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`percentile`](Self::percentile) as a `Duration` (for histograms fed
    /// by [`LogHistogram::record_duration`]).
    pub fn percentile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.percentile(q))
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples recorded into buckets whose upper bound is
    /// `<= bound` — the Prometheus `le` counter, up to bucket resolution.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_bound(*i) <= bound)
            .map(|(_, &c)| c)
            .sum()
    }

    /// `(bucket upper bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_self_consistent() {
        // Every bucket's bound maps back into the bucket, and the next value
        // starts the next bucket.
        for i in 0..BUCKETS {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound), i, "bound {bound} of bucket {i}");
            if let Some(next) = bound.checked_add(1) {
                assert_eq!(bucket_index(next), i + 1, "value {next}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Relative error is bounded by 2^-SUB_BITS.
        for v in [100u64, 1_000, 123_456, 10_u64.pow(9), u64::MAX / 3] {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!((bound - v) as f64 <= v as f64 / (1 << SUB_BITS) as f64 + 1.0);
        }
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        let p50 = snap.percentile(0.5);
        assert!((450..=575).contains(&p50), "p50 {p50}");
        let p99 = snap.percentile(0.99);
        assert!((980..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snap.percentile(1.0), 1000);
        assert!((snap.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = LogHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.nonzero_buckets().count(), 0);
    }

    #[test]
    fn cumulative_le_counts_below_bound() {
        let h = LogHistogram::new();
        for v in [1u64, 2, 3, 1000, 2000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_le(3), 3);
        assert_eq!(snap.cumulative_le(u64::MAX), 5);
        assert_eq!(snap.cumulative_le(0), 0);
    }

    #[test]
    fn durations_round_trip_in_nanos() {
        let h = LogHistogram::new();
        h.record_duration(Duration::from_micros(250));
        let snap = h.snapshot();
        let p100 = snap.percentile_duration(1.0);
        assert_eq!(p100, Duration::from_nanos(250_000));
    }
}
