//! A minimal JSON parser used to validate exported telemetry.
//!
//! The build environment vendors a no-op `serde`, so the trace exporter
//! hand-writes its JSON; this parser closes the loop — round-trip tests
//! parse [`Trace::to_chrome_json`](crate::Trace::to_chrome_json) output and
//! check the `trace_event` schema, so the export format cannot silently rot.
//! It accepts exactly RFC 8259 JSON (no comments, no trailing commas).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept as-is).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
///
/// ```
/// use gtpq_obs::json::{parse, JsonValue};
///
/// let v = parse(r#"{"events":[{"ts":1.5,"ok":true}]}"#).unwrap();
/// let events = v.get("events").unwrap().as_array().unwrap();
/// assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
/// assert!(parse("{oops}").is_err());
/// ```
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".to_owned())
        );
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn surrogate_pairs_and_unicode_survive() {
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            JsonValue::String("😀".to_owned())
        );
        assert_eq!(
            parse("\"caffè\"").unwrap(),
            JsonValue::String("caffè".to_owned())
        );
        assert!(parse(r#""\ud83d oops""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "\"raw\ncontrol\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("[1, oops]").unwrap_err();
        assert!(err.offset > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Array(vec![]));
    }
}
