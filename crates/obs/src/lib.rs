//! # gtpq-obs — observability primitives for the GTPQ engine and service
//!
//! The evaluation pipeline and the query service need to answer "what is
//! this request doing and where does the time go" without taking locks on
//! the hot path or paying anything when nobody is looking.  This crate is
//! the dependency-free toolbox they share:
//!
//! * [`Tracer`] / [`SpanGuard`] — structured per-request tracing.  A span
//!   tree covers the pipeline stages (plan, candidate selection, both prune
//!   rounds, matching-graph build, per-pull enumeration) with operator
//!   estimates/actuals as span fields; a finished [`Trace`] renders as an
//!   indented tree or exports as Chrome `trace_event` JSON for
//!   `about:tracing` / Perfetto.  Disabled tracers cost two branches per
//!   span site.  [`SpanCollector`] bridges worker threads into a parent
//!   trace: workers record through thread-local tracers sharing the parent
//!   epoch and the parent grafts the results with [`Tracer::adopt`].
//! * [`LogHistogram`] / [`HistogramSnapshot`] — lock-free log-bucketed
//!   (HDR-style) histograms for latency percentiles (p50/p90/p99/p999) over
//!   the full `u64` nanosecond range with ≤ 12.5% bucket error.
//! * [`WindowedCounter`] — per-second ring counters behind "QPS over the
//!   last 30 s" rates, as opposed to since-process-start averages.
//! * [`PromText`] — Prometheus text-format exposition (counters, gauges,
//!   histograms with cumulative `le` buckets in seconds).
//! * [`json`] — a minimal JSON parser so the hand-rolled exporters can be
//!   round-trip-tested without a JSON dependency.
//!
//! See `docs/OBSERVABILITY.md` at the repository root for the span model,
//! bucket layout, metric names and slow-query-log semantics.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod prom;
pub mod trace;
pub mod window;

pub use hist::{bucket_bound, bucket_index, HistogramSnapshot, LogHistogram, BUCKETS, SUB_BITS};
pub use prom::{valid_metric_name, PromText, LATENCY_BOUNDS_SECONDS};
pub use trace::{Span, SpanCollector, SpanGuard, Trace, Tracer};
pub use window::WindowedCounter;
