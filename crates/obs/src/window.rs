//! Windowed event rates: "QPS over the last 30 seconds", not since process
//! start.
//!
//! A [`WindowedCounter`] keeps a ring of per-second slots tagged with the
//! second they count; recording bumps the current second's slot (lazily
//! reclaiming stale slots), and a rate query sums the slots inside the
//! window.  Everything is relaxed atomics — two threads racing a slot across
//! a second boundary can misattribute a handful of events, which is
//! acceptable for a rate gauge and keeps the hot path lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Ring size; rates can be asked over windows up to this many seconds.
const SLOTS: u64 = 64;

/// Tag of a slot that has never been written.
const EMPTY: u64 = u64::MAX;

#[derive(Debug)]
struct Slot {
    /// Which second (since the counter's epoch) this slot currently counts.
    sec: AtomicU64,
    count: AtomicU64,
}

/// A lock-free per-second event counter over a sliding window.
///
/// ```
/// use std::time::Duration;
/// use gtpq_obs::WindowedCounter;
///
/// let c = WindowedCounter::new();
/// c.record();
/// c.record_n(4);
/// assert_eq!(c.sum_window(Duration::from_secs(30)), 5);
/// assert!(c.rate_per_sec(Duration::from_secs(30)) >= 5.0);
/// ```
#[derive(Debug)]
pub struct WindowedCounter {
    epoch: Instant,
    slots: Box<[Slot]>,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedCounter {
    /// A fresh counter; its epoch is the moment of this call.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            slots: (0..SLOTS)
                .map(|_| Slot {
                    sec: AtomicU64::new(EMPTY),
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Records one event at the current second.
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Records `n` events at the current second.
    pub fn record_n(&self, n: u64) {
        let sec = self.epoch.elapsed().as_secs();
        let slot = &self.slots[(sec % SLOTS) as usize];
        let tag = slot.sec.load(Ordering::Relaxed);
        if tag != sec {
            // Reclaim a stale slot; one racing writer wins, the loser's
            // exchange fails and it just adds to the (now current) slot.
            if slot
                .sec
                .compare_exchange(tag, sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total events recorded within the trailing `window` (clamped to the
    /// ring size minus one so a slot being reclaimed is never counted).
    pub fn sum_window(&self, window: Duration) -> u64 {
        let now = self.epoch.elapsed().as_secs();
        let span = window.as_secs().clamp(1, SLOTS - 1);
        self.slots
            .iter()
            .filter_map(|slot| {
                let sec = slot.sec.load(Ordering::Relaxed);
                (sec != EMPTY && now.saturating_sub(sec) < span)
                    .then(|| slot.count.load(Ordering::Relaxed))
            })
            .sum()
    }

    /// Events per second over the trailing `window`.  Young counters divide
    /// by their age (plus the current partial second) instead of the full
    /// window, so early rates are not under-reported.
    pub fn rate_per_sec(&self, window: Duration) -> f64 {
        let now = self.epoch.elapsed().as_secs();
        let span = window.as_secs().clamp(1, SLOTS - 1);
        let effective = span.min(now + 1);
        self.sum_window(window) as f64 / effective as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_window() {
        let c = WindowedCounter::new();
        for _ in 0..10 {
            c.record();
        }
        c.record_n(5);
        assert_eq!(c.sum_window(Duration::from_secs(30)), 15);
        // A young counter divides by its age, not the whole window.
        assert!(c.rate_per_sec(Duration::from_secs(30)) >= 15.0);
    }

    #[test]
    fn empty_counter_reports_zero() {
        let c = WindowedCounter::new();
        assert_eq!(c.sum_window(Duration::from_secs(10)), 0);
        assert_eq!(c.rate_per_sec(Duration::from_secs(10)), 0.0);
    }

    #[test]
    fn oversized_windows_clamp_to_the_ring() {
        let c = WindowedCounter::new();
        c.record();
        assert_eq!(c.sum_window(Duration::from_secs(100_000)), 1);
        assert_eq!(
            c.sum_window(Duration::ZERO),
            1,
            "window floors at one second"
        );
    }

    #[test]
    fn concurrent_recording_is_close_enough() {
        let c = std::sync::Arc::new(WindowedCounter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let sum = c.sum_window(Duration::from_secs(60));
        // The test runs in well under a second, so nothing can have aged out;
        // slot races could only drop events at a second boundary.
        assert!((3900..=4000).contains(&sum), "sum {sum}");
    }
}
