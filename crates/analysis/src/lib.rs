//! Fundamental problems for GTPQs (paper §3): satisfiability, containment,
//! equivalence and minimization.
//!
//! All three decision procedures reduce to propositional reasoning over the
//! derived structural predicates computed in
//! [`gtpq_query::structural`]:
//!
//! * **Satisfiability** (Theorems 1–2): a GTPQ is satisfiable iff the root's
//!   attribute predicate and its *complete structural predicate* `fcs` are
//!   satisfiable.  Union-conjunctive queries are always satisfiable when
//!   their attribute predicates are; with negation the problem is
//!   NP-complete, and we simply hand the formula to the DPLL solver.
//! * **Containment / equivalence** (Theorems 3–4): `Q1 ⊑ Q2` iff there is a
//!   homomorphism from `Q2` to `Q1`; the search enumerates candidate images
//!   for the independently-constraint nodes (queries are small) and checks
//!   the formula implication between the complete predicates.
//! * **Minimization** (Algorithm 1, Theorem 6): removes nodes with
//!   unsatisfiable attribute predicates, non-independently-constraint nodes,
//!   subtrees with unsatisfiable complete predicates, and subtrees subsumed
//!   by similar siblings, rebuilding a smaller equivalent query.

pub mod containment;
pub mod minimize;
pub mod satisfiability;

pub use containment::{contained_in, equivalent, homomorphism_exists};
pub use minimize::minimize;
pub use satisfiability::is_satisfiable;
