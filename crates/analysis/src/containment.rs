//! Containment and equivalence of GTPQs (Theorems 3 and 4).

use std::collections::HashMap;

use gtpq_logic::transform::rename_vars;
use gtpq_logic::{implies, VarId};
use gtpq_query::structural::{independently_constraint_nodes, StructuralAnalysis};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId};

/// Whether `q1 ⊑ q2`: every answer of `q1` on any data graph is also an
/// answer of `q2`.  By Theorem 3 this holds iff there is a homomorphism from
/// `q2` to `q1`.
pub fn contained_in(q1: &Gtpq, q2: &Gtpq) -> bool {
    homomorphism_exists(q2, q1)
}

/// Whether the two queries are equivalent (mutual containment).
pub fn equivalent(q1: &Gtpq, q2: &Gtpq) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

/// Searches for a homomorphism from `from` to `to` in the sense of §3.2:
/// independently-constraint nodes of `from` are mapped into `to` preserving
/// edge kinds and entailment of attribute predicates, output-node sets are
/// aligned, and the complete structural predicate of `to`'s root implies the
/// renamed complete predicate of `from`'s root.
///
/// The search backtracks over *complete* mappings: the output and formula
/// conditions are checked for every candidate assignment, so an unfortunate
/// early image choice cannot mask an existing homomorphism.
pub fn homomorphism_exists(from: &Gtpq, to: &Gtpq) -> bool {
    if from.output_nodes().len() != to.output_nodes().len() {
        return false;
    }
    let from_icn = independently_constraint_nodes(from);
    // Node ids are a pre-order numbering, so parents precede children.
    let nodes: Vec<QueryNodeId> = from.node_ids().filter(|u| from_icn[u.index()]).collect();
    if nodes.first() != Some(&from.root()) {
        // The root is not independently constraint (unsatisfiable predicate).
        return false;
    }
    let from_analysis = StructuralAnalysis::new(from);
    let to_analysis = StructuralAnalysis::new(to);
    let mut mapping: HashMap<QueryNodeId, QueryNodeId> = HashMap::new();
    search(
        from,
        to,
        &nodes,
        0,
        &mut mapping,
        &from_analysis,
        &to_analysis,
    )
}

fn search(
    from: &Gtpq,
    to: &Gtpq,
    nodes: &[QueryNodeId],
    idx: usize,
    mapping: &mut HashMap<QueryNodeId, QueryNodeId>,
    from_analysis: &StructuralAnalysis,
    to_analysis: &StructuralAnalysis,
) -> bool {
    if idx == nodes.len() {
        return check_complete(from, to, mapping, from_analysis, to_analysis);
    }
    let u = nodes[idx];
    if u == from.root() {
        if !from.node(u).attr.entailed_by(&to.node(to.root()).attr) {
            return false;
        }
        mapping.insert(u, to.root());
        if search(
            from,
            to,
            nodes,
            idx + 1,
            mapping,
            from_analysis,
            to_analysis,
        ) {
            return true;
        }
        mapping.remove(&u);
        return false;
    }
    let parent = from.parent(u).expect("non-root nodes have parents");
    let Some(&parent_image) = mapping.get(&parent) else {
        // The parent was left unmapped (a skipped predicate subtree); the whole
        // subtree stays unmapped, which is only allowed for predicate nodes.
        if !from.is_backbone(u) {
            return search(
                from,
                to,
                nodes,
                idx + 1,
                mapping,
                from_analysis,
                to_analysis,
            );
        }
        return false;
    };
    // A PC child must map onto a PC child of the image; an AD child may map
    // onto any descendant (paper §3.2, condition 3a).
    let candidates: Vec<QueryNodeId> = match from.incoming_edge(u) {
        Some(EdgeKind::Child) => to
            .children(parent_image)
            .iter()
            .copied()
            .filter(|c| to.incoming_edge(*c) == Some(EdgeKind::Child))
            .collect(),
        _ => to.descendants(parent_image),
    };
    for cand in candidates {
        if !from.node(u).attr.entailed_by(&to.node(cand).attr) {
            continue;
        }
        mapping.insert(u, cand);
        if search(
            from,
            to,
            nodes,
            idx + 1,
            mapping,
            from_analysis,
            to_analysis,
        ) {
            return true;
        }
        mapping.remove(&u);
    }
    // A predicate node may stay unmapped: its variable is then left free in the
    // final implication check, which is the sound direction (the implication
    // must hold for every value of the free variable).
    if !from.is_backbone(u)
        && search(
            from,
            to,
            nodes,
            idx + 1,
            mapping,
            from_analysis,
            to_analysis,
        )
    {
        return true;
    }
    false
}

fn check_complete(
    from: &Gtpq,
    to: &Gtpq,
    mapping: &HashMap<QueryNodeId, QueryNodeId>,
    from_analysis: &StructuralAnalysis,
    to_analysis: &StructuralAnalysis,
) -> bool {
    // Output nodes must map onto output nodes bijectively.
    let mut mapped_outputs: Vec<QueryNodeId> = Vec::new();
    for o in from.output_nodes() {
        match mapping.get(o) {
            Some(&img) if to.is_output(img) => mapped_outputs.push(img),
            _ => return false,
        }
    }
    mapped_outputs.sort_unstable();
    mapped_outputs.dedup();
    if mapped_outputs.len() != to.output_nodes().len() {
        return false;
    }
    // Formula condition on the complete structural predicates of the roots.
    let rename: HashMap<VarId, VarId> = mapping.iter().map(|(f, t)| (f.var(), t.var())).collect();
    let renamed = rename_vars(from_analysis.root_complete(), &rename);
    implies(to_analysis.root_complete(), &renamed)
}

#[cfg(test)]
mod tests {
    use gtpq_logic::BoolExpr;
    use gtpq_query::{AttrPredicate, CmpOp, GtpqBuilder};

    use super::*;

    fn path_query(labels: &[&str], edge: EdgeKind) -> Gtpq {
        let mut b = GtpqBuilder::new(AttrPredicate::label(labels[0]));
        let mut parent = b.root_id();
        for label in &labels[1..] {
            parent = b.backbone_child(parent, edge, AttrPredicate::label(label));
        }
        b.mark_output(parent);
        b.build().unwrap()
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let q1 = path_query(&["a", "b"], EdgeKind::Descendant);
        let q2 = path_query(&["a", "b"], EdgeKind::Descendant);
        assert!(equivalent(&q1, &q2));
        assert!(contained_in(&q1, &q2));
    }

    #[test]
    fn pc_query_is_contained_in_ad_query() {
        let pc = path_query(&["a", "b"], EdgeKind::Child);
        let ad = path_query(&["a", "b"], EdgeKind::Descendant);
        assert!(contained_in(&pc, &ad), "a/b ⊑ a//b");
        assert!(!contained_in(&ad, &pc), "a//b is strictly larger");
        assert!(!equivalent(&pc, &ad));
    }

    #[test]
    fn narrower_attribute_predicate_is_contained() {
        let build = |max_year: i64| {
            let mut b = GtpqBuilder::new(AttrPredicate::label("paper"));
            let root = b.root_id();
            let year = b.backbone_child(
                root,
                EdgeKind::Descendant,
                AttrPredicate::any().and("year", CmpOp::Le, max_year.into()),
            );
            b.mark_output(year);
            b.build().unwrap()
        };
        let narrow = build(2005);
        let broad = build(2010);
        assert!(contained_in(&narrow, &broad));
        assert!(!contained_in(&broad, &narrow));
    }

    #[test]
    fn different_labels_are_incomparable() {
        let q1 = path_query(&["a", "b"], EdgeKind::Descendant);
        let q2 = path_query(&["a", "c"], EdgeKind::Descendant);
        assert!(!contained_in(&q1, &q2));
        assert!(!contained_in(&q2, &q1));
    }

    #[test]
    fn extra_predicate_constraint_implies_containment() {
        // q1: a//b* with an additional required c descendant of the root;
        // q2: plain a//b*.  q1 is contained in q2 but not conversely.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let out = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let extra = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(root, BoolExpr::Var(extra.var()));
        b.mark_output(out);
        let q1 = b.build().unwrap();
        let q2 = path_query(&["a", "b"], EdgeKind::Descendant);
        assert!(contained_in(&q1, &q2));
        assert!(!contained_in(&q2, &q1));
    }

    #[test]
    fn disjunctive_query_contains_its_disjuncts() {
        // q_or: root a with (b ∨ c) predicate; q_b: root a requiring b.
        let build_or = || {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let pb = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
            let pc = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
            b.set_structural(
                root,
                BoolExpr::or2(BoolExpr::Var(pb.var()), BoolExpr::Var(pc.var())),
            );
            b.mark_output(root);
            b.build().unwrap()
        };
        let build_b = || {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let pb = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
            b.set_structural(root, BoolExpr::Var(pb.var()));
            b.mark_output(root);
            b.build().unwrap()
        };
        let q_or = build_or();
        let q_b = build_b();
        assert!(
            contained_in(&q_b, &q_or),
            "requiring b is stricter than b ∨ c"
        );
        assert!(!contained_in(&q_or, &q_b));
    }
}
