//! GTPQ minimization (Algorithm 1 `minGTPQ`).

use std::collections::HashMap;

use gtpq_logic::transform::{rename_vars, substitute_const};
use gtpq_logic::{implies, is_satisfiable as formula_sat, BoolExpr, VarId};
use gtpq_query::structural::{
    independently_constraint_nodes, subsumed, transitive_predicates, StructuralAnalysis,
};
use gtpq_query::{Gtpq, GtpqBuilder, QueryNodeId};

/// Minimizes a GTPQ: returns an equivalent query with no more nodes.
///
/// Following Algorithm 1, the pass removes (1) subtrees whose attribute
/// predicate is unsatisfiable, (2) non-independently-constraint nodes,
/// (3) subtrees whose complete structural predicate is unsatisfiable, and
/// (4) subtrees that are subsumed by a similar sibling subtree whose variable
/// is implied by the root's complete predicate.  Subtrees containing output
/// nodes are never removed (the paper relocates outputs onto isomorphic
/// subtrees; we keep them in place, which can only make the result larger,
/// never incorrect).
pub fn minimize(q: &Gtpq) -> Gtpq {
    let mut removed = vec![false; q.size()];
    let mut fs: Vec<BoolExpr> = q.node_ids().map(|u| q.fs(u).clone()).collect();

    let protects_output = |q: &Gtpq, u: QueryNodeId| q.subtree(u).iter().any(|&d| q.is_output(d));

    // Step 1: unsatisfiable attribute predicates.
    for u in q.node_ids().skip(1) {
        if !q.node(u).attr.is_satisfiable() && !protects_output(q, u) {
            remove_subtree(q, u, &mut removed, &mut fs, false);
        }
    }

    // Step 2: non-independently-constraint nodes.
    let icn = independently_constraint_nodes(q);
    for u in q.node_ids().skip(1) {
        if !icn[u.index()] && !removed[u.index()] && !protects_output(q, u) {
            remove_subtree(q, u, &mut removed, &mut fs, false);
        }
    }

    // Step 3: unsatisfiable complete structural predicates.
    let analysis = StructuralAnalysis::new(q);
    for u in q.node_ids().skip(1) {
        if removed[u.index()] || protects_output(q, u) {
            continue;
        }
        if !formula_sat(&analysis.complete[u.index()]) {
            remove_subtree(q, u, &mut removed, &mut fs, false);
        }
    }

    // Step 4: subsumed sibling subtrees whose presence is already implied.
    let ftr = transitive_predicates(q, &icn);
    let root_complete = analysis.root_complete();
    for u in q.node_ids().skip(1) {
        if removed[u.index()] {
            continue;
        }
        let implied = implies(root_complete, &BoolExpr::Var(u.var()));
        if !implied {
            continue;
        }
        for candidate in q.node_ids().skip(1) {
            if candidate == u || removed[candidate.index()] || protects_output(q, candidate) {
                continue;
            }
            if subsumed(q, candidate, u, &icn, &ftr) {
                remove_subtree(q, candidate, &mut removed, &mut fs, true);
            }
        }
    }

    rebuild(q, &removed, &fs)
}

/// Marks the subtree rooted at `u` as removed and substitutes its variable in
/// the parent's structural predicate (`true` when the constraint is known to
/// be implied, `false` otherwise).
fn remove_subtree(
    q: &Gtpq,
    u: QueryNodeId,
    removed: &mut [bool],
    fs: &mut [BoolExpr],
    as_true: bool,
) {
    for d in q.subtree(u) {
        removed[d.index()] = true;
    }
    if let Some(parent) = q.parent(u) {
        fs[parent.index()] = substitute_const(&fs[parent.index()], u.var(), as_true);
    }
}

/// Rebuilds a query from the surviving nodes, remapping structural-predicate
/// variables to the new dense ids.
fn rebuild(q: &Gtpq, removed: &[bool], fs: &[BoolExpr]) -> Gtpq {
    let mut b = GtpqBuilder::new(q.node(q.root()).attr.clone());
    let mut mapping: HashMap<QueryNodeId, QueryNodeId> = HashMap::new();
    mapping.insert(q.root(), b.root_id());
    for u in q.node_ids().skip(1) {
        if removed[u.index()] {
            continue;
        }
        let parent_old = q.parent(u).expect("non-root");
        let Some(&parent_new) = mapping.get(&parent_old) else {
            continue;
        };
        let edge = q.incoming_edge(u).expect("non-root");
        let new = if q.is_backbone(u) {
            b.backbone_child(parent_new, edge, q.node(u).attr.clone())
        } else {
            b.predicate_child(parent_new, edge, q.node(u).attr.clone())
        };
        if let Some(name) = &q.node(u).name {
            b.set_name(new, name);
        }
        mapping.insert(u, new);
    }
    let rename: HashMap<VarId, VarId> = mapping.iter().map(|(o, n)| (o.var(), n.var())).collect();
    for (old, new) in &mapping {
        // Drop removed variables that were never substituted (defensive).
        let mut formula = fs[old.index()].clone();
        for var in formula.variables() {
            let old_node = QueryNodeId::from_var(var);
            if removed[old_node.index()] {
                formula = substitute_const(&formula, var, false);
            }
        }
        b.set_structural(*new, rename_vars(&formula, &rename));
    }
    for &o in q.output_nodes() {
        if let Some(&new) = mapping.get(&o) {
            b.mark_output(new);
        }
    }
    b.build().expect("minimized query remains valid")
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_query::{AttrPredicate, CmpOp, EdgeKind};

    use crate::containment::{contained_in, equivalent};

    use super::*;

    #[test]
    fn minimization_preserves_answers_on_the_running_example() {
        let q = example_query();
        let m = minimize(&q);
        // The redundant d1 predicate child (subsumed by the d1 backbone child
        // of the same node) disappears.
        assert!(m.size() < q.size());
        let g = example_graph();
        assert!(naive::evaluate(&m, &g).same_answer(&naive::evaluate(&q, &g)));
        assert!(equivalent(&q, &m));
        assert!(contained_in(&q, &m) && contained_in(&m, &q));
    }

    #[test]
    fn redundant_duplicate_sibling_is_removed() {
        // Root with two identical AD predicate children requiring a `b`
        // descendant, conjoined: one of them is redundant.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(
            root,
            BoolExpr::and2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.size(), 2, "one duplicate predicate child must disappear");
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn non_icn_nodes_are_removed() {
        // fs(root) = (p1 & p2) | (!p1 & p2): p1 (and its subtree) is redundant.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p1c = b.predicate_child(p1, EdgeKind::Descendant, AttrPredicate::label("d"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(
            root,
            BoolExpr::or2(
                BoolExpr::and2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
                BoolExpr::and2(
                    BoolExpr::not(BoolExpr::Var(p1.var())),
                    BoolExpr::Var(p2.var()),
                ),
            ),
        );
        b.set_structural(p1, BoolExpr::Var(p1c.var()));
        b.mark_output(root);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.size(), 2, "p1 and its child must be removed");
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn unsatisfiable_attribute_subtrees_are_removed() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let dead = b.predicate_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any()
                .and("year", CmpOp::Gt, 9.into())
                .and("year", CmpOp::Lt, 1.into()),
        );
        let alive = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(
            root,
            BoolExpr::or2(BoolExpr::Var(dead.var()), BoolExpr::Var(alive.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.size(), 2);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn minimization_is_idempotent() {
        let q = example_query();
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        assert_eq!(m1.size(), m2.size());
    }

    #[test]
    fn output_subtrees_are_never_removed() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let out1 = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let out2 = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.mark_output(out1);
        b.mark_output(out2);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.output_nodes().len(), 2);
        assert_eq!(m.size(), 3, "both output branches must survive");
    }
}
