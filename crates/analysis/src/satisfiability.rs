//! GTPQ satisfiability (Theorems 1 and 2).

use gtpq_logic::sat;
use gtpq_query::structural::StructuralAnalysis;
use gtpq_query::Gtpq;

/// Whether there exists *some* data graph on which the query has a non-empty
/// answer.
///
/// Theorem 1: the query is satisfiable iff the root's attribute predicate and
/// its complete structural predicate `fcs` are satisfiable.  For
/// union-conjunctive queries (no negation) the formula is trivially
/// satisfiable and the check degenerates to the attribute predicates, which
/// is the linear-time case of Theorem 2.
pub fn is_satisfiable(q: &Gtpq) -> bool {
    if !q.node(q.root()).attr.is_satisfiable() {
        return false;
    }
    if q.is_union_conjunctive() {
        // Negation-free: satisfiable as long as every *backbone* node's
        // attribute predicate can hold (predicate nodes can simply be absent).
        return q
            .node_ids()
            .filter(|&u| q.is_backbone(u))
            .all(|u| q.node(u).attr.is_satisfiable());
    }
    let analysis = StructuralAnalysis::new(q);
    sat::is_satisfiable(analysis.root_complete())
}

#[cfg(test)]
mod tests {
    use gtpq_logic::BoolExpr;
    use gtpq_query::fixtures::example_query;
    use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, GtpqBuilder};

    use super::*;

    #[test]
    fn the_running_example_is_satisfiable() {
        assert!(is_satisfiable(&example_query()));
    }

    #[test]
    fn union_conjunctive_queries_are_satisfiable_when_attributes_are() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(
            root,
            BoolExpr::or2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
        );
        b.mark_output(root);
        assert!(is_satisfiable(&b.build().unwrap()));
    }

    #[test]
    fn unsatisfiable_backbone_attribute_predicate() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let child = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any()
                .and("year", CmpOp::Gt, 5.into())
                .and("year", CmpOp::Lt, 3.into()),
        );
        b.mark_output(child);
        assert!(!is_satisfiable(&b.build().unwrap()));
    }

    #[test]
    fn contradictory_structural_requirements_are_unsatisfiable() {
        // Example-4-style contradiction: the root requires a `b` descendant to
        // be absent, but a backbone sibling subtree that is subsumed by that
        // predicate child forces its presence.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let forbidden = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let required = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(root, BoolExpr::not(BoolExpr::Var(forbidden.var())));
        b.mark_output(required);
        let q = b.build().unwrap();
        assert!(
            !is_satisfiable(&q),
            "requiring and forbidding the same descendant cannot be satisfied"
        );
    }

    #[test]
    fn plain_negation_is_satisfiable() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(root, BoolExpr::not(BoolExpr::Var(p.var())));
        b.mark_output(root);
        assert!(is_satisfiable(&b.build().unwrap()));
    }
}
