//! TwigStackD: stack-based twig matching on DAGs with pre-filtering and SSPI.
//!
//! TwigStackD (Chen et al.) generalizes the holistic twig join to DAGs: a
//! *pre-filtering* phase sweeps the candidates twice (once bottom-up, once
//! top-down) to keep only nodes that can participate in a complete match, and
//! the surviving candidates are expanded through per-query-node *pools*,
//! checking every edge condition against the SSPI reachability index.  The
//! pre-filter is what makes the algorithm competitive on tree-like graphs
//! (XMark, Fig. 8) while the pairwise SSPI probes and pool expansion are what
//! make it degrade on denser, deeper graphs (arXiv, Fig. 9) — both behaviours
//! come out of this implementation because the same work is done.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId, ResultSet};
use gtpq_reach::{Reachability, Sspi};

use crate::stats::BaselineStats;
use crate::{restricted_candidates, Assignment, AssignmentMemo, Restrictions, TpqAlgorithm};

/// TwigStackD evaluator.
pub struct TwigStackD<'g> {
    graph: &'g DataGraph,
    sspi: Sspi,
}

impl<'g> TwigStackD<'g> {
    /// Builds the evaluator (and its SSPI index) for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            sspi: Sspi::new(graph),
        }
    }

    fn edge_ok(&self, q: &Gtpq, child: QueryNodeId, v: NodeId, w: NodeId) -> bool {
        match q.incoming_edge(child) {
            Some(EdgeKind::Child) => self.graph.has_edge(v, w),
            _ => self.sspi.reaches(v, w),
        }
    }

    /// The pre-filtering phase: a bottom-up and a top-down sweep over the
    /// candidate lists, using pairwise SSPI probes.
    pub fn prefilter(&self, q: &Gtpq, mat: &mut [Vec<NodeId>], stats: &mut BaselineStats) {
        let start = Instant::now();
        self.sspi.reset_visits();
        // Bottom-up: keep candidates that can reach a candidate of every child.
        for u in q.bottom_up_order() {
            if q.node(u).is_leaf() {
                continue;
            }
            let children = q.children(u).to_vec();
            let candidates = std::mem::take(&mut mat[u.index()]);
            stats.input_nodes += candidates.len() as u64;
            mat[u.index()] = candidates
                .into_iter()
                .filter(|&v| {
                    children.iter().all(|&c| {
                        mat[c.index()].iter().any(|&w| {
                            stats.index_lookups += 1;
                            self.edge_ok(q, c, v, w)
                        })
                    })
                })
                .collect();
        }
        // Top-down: keep candidates reachable from a candidate of the parent.
        for u in q.node_ids() {
            for &child in q.children(u) {
                let candidates = std::mem::take(&mut mat[child.index()]);
                stats.input_nodes += candidates.len() as u64;
                mat[child.index()] = candidates
                    .into_iter()
                    .filter(|&w| {
                        mat[u.index()].iter().any(|&v| {
                            stats.index_lookups += 1;
                            self.edge_ok(q, child, v, w)
                        })
                    })
                    .collect();
            }
        }
        stats.index_lookups += self.sspi.visit_count();
        stats.filtering_time += start.elapsed();
    }
}

impl TpqAlgorithm for TwigStackD<'_> {
    fn name(&self) -> &'static str {
        "TwigStackD"
    }

    fn graph(&self) -> &DataGraph {
        self.graph
    }

    fn evaluate_restricted(
        &self,
        q: &Gtpq,
        restrict: Option<&Restrictions>,
    ) -> (ResultSet, BaselineStats) {
        assert!(
            q.is_conjunctive(),
            "TwigStackD only handles conjunctive TPQs"
        );
        let start = Instant::now();
        let mut stats = BaselineStats::default();
        let mut mat = restricted_candidates(q, self.graph, restrict, &mut stats);
        self.prefilter(q, &mut mat, &mut stats);

        // Pool-based expansion: every surviving candidate goes into the pool of
        // its query node together with links to compatible pool entries of the
        // child nodes (this is where TwigStackD spends its time on dense data).
        let mut pools: HashMap<(QueryNodeId, NodeId), Vec<Vec<NodeId>>> = HashMap::new();
        for u in q.bottom_up_order() {
            if q.node(u).is_leaf() {
                continue;
            }
            let children = q.children(u).to_vec();
            for &v in &mat[u.index()] {
                let lists: Vec<Vec<NodeId>> = children
                    .iter()
                    .map(|&c| {
                        mat[c.index()]
                            .iter()
                            .copied()
                            .filter(|&w| {
                                stats.index_lookups += 1;
                                self.edge_ok(q, c, v, w)
                            })
                            .collect()
                    })
                    .collect();
                stats.intermediate_results += lists.iter().map(|l| l.len() as u64).sum::<u64>();
                pools.insert((u, v), lists);
            }
        }
        stats.intermediate_results += mat.iter().map(|m| m.len() as u64).sum::<u64>();

        // Enumerate answers from the pools.
        let mut results = ResultSet::new(q.output_nodes().to_vec());
        let mut memo: AssignmentMemo = HashMap::new();
        for &v in &mat[q.root().index()] {
            for assignment in expand(q, &pools, q.root(), v, &mut memo).iter() {
                let tuple: Option<Vec<NodeId>> = q
                    .output_nodes()
                    .iter()
                    .map(|u| assignment.iter().find(|(qu, _)| qu == u).map(|&(_, n)| n))
                    .collect();
                if let Some(tuple) = tuple {
                    results.insert(tuple);
                }
            }
        }
        stats.total_time = start.elapsed();
        (results, stats)
    }
}

fn expand(
    q: &Gtpq,
    pools: &HashMap<(QueryNodeId, NodeId), Vec<Vec<NodeId>>>,
    u: QueryNodeId,
    v: NodeId,
    memo: &mut AssignmentMemo,
) -> Rc<Vec<Assignment>> {
    if let Some(cached) = memo.get(&(u, v)) {
        return Rc::clone(cached);
    }
    let own: Vec<(QueryNodeId, NodeId)> = if q.is_output(u) { vec![(u, v)] } else { vec![] };
    let mut partials = vec![own];
    if !q.node(u).is_leaf() {
        match pools.get(&(u, v)) {
            Some(lists) => {
                for (ci, &child) in q.children(u).iter().enumerate() {
                    let mut branch: Vec<Vec<(QueryNodeId, NodeId)>> = Vec::new();
                    for &w in &lists[ci] {
                        branch.extend(expand(q, pools, child, w, memo).iter().cloned());
                    }
                    branch.sort();
                    branch.dedup();
                    let mut next = Vec::with_capacity(partials.len() * branch.len());
                    for base in &partials {
                        for extra in &branch {
                            let mut merged = base.clone();
                            merged.extend_from_slice(extra);
                            merged.sort();
                            next.push(merged);
                        }
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
            }
            None => partials.clear(),
        }
    }
    partials.sort();
    partials.dedup();
    let rc = Rc::new(partials);
    memo.insert((u, v), Rc::clone(&rc));
    rc
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_datagen::{
        generate_arxiv, generate_xmark, random_queries, ArxivConfig, RandomQueryConfig, XmarkConfig,
    };
    use gtpq_datagen::{xmark_q1, xmark_q3};

    use super::*;

    #[test]
    fn agrees_with_gtea_on_xmark() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let engine = GteaEngine::new(&g);
        let twig = TwigStackD::new(&g);
        for group in 0..3 {
            let q = xmark_q1(group);
            assert!(twig.evaluate(&q).0.same_answer(&engine.evaluate(&q)));
        }
        let q3 = xmark_q3(0, 1, 2);
        assert!(twig.evaluate(&q3).0.same_answer(&engine.evaluate(&q3)));
    }

    #[test]
    fn agrees_with_gtea_on_arxiv_random_queries() {
        let g = generate_arxiv(&ArxivConfig::small());
        let engine = GteaEngine::new(&g);
        let twig = TwigStackD::new(&g);
        let queries = random_queries(
            &g,
            &RandomQueryConfig {
                count: 3,
                ..RandomQueryConfig::with_size(5)
            },
        );
        for q in &queries {
            assert!(twig.evaluate(q).0.same_answer(&engine.evaluate(q)));
        }
    }

    #[test]
    fn prefilter_time_is_recorded() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let twig = TwigStackD::new(&g);
        let (_, stats) = twig.evaluate(&xmark_q1(0));
        assert!(stats.filtering_time <= stats.total_time);
        assert!(stats.filtering_time > std::time::Duration::ZERO);
        assert_eq!(twig.name(), "TwigStackD");
    }
}
