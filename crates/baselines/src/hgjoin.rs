//! HGJoin: hash-based structural joins over bipartite query units.
//!
//! HGJoin (Wang et al.) decomposes the query pattern into units — an internal
//! query node together with its children — computes the matches of every unit
//! as explicit tuples, and joins the unit relations according to a plan.  The
//! paper runs every valid plan and reports the best ("HGJoin+"); it also
//! evaluates a revised version ("HGJoin*") in which the intermediate results
//! are represented as a graph rather than as tuples, which is exactly the
//! representation GTEA uses.  Both flavours live here behind one flag.
//!
//! Substitution note (DESIGN.md): unit relations join in the canonical
//! bottom-up order rather than via selectivity-estimated plans, and
//! reachability is answered by the 3-hop index; the tuple-vs-graph
//! intermediate representation — the factor the paper's HGJoin+/HGJoin*
//! comparison isolates — is faithfully reproduced.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId, ResultSet};
use gtpq_reach::{Reachability, ThreeHop};

use crate::stats::BaselineStats;
use crate::{restricted_candidates, Assignment, AssignmentMemo, Restrictions, TpqAlgorithm};

/// Per-unit match graphs: root match → per-child candidate lists.
type UnitGraphs = HashMap<QueryNodeId, HashMap<NodeId, Vec<Vec<NodeId>>>>;

/// HGJoin evaluator.
pub struct HgJoin<'g> {
    graph: &'g DataGraph,
    index: ThreeHop,
    graph_intermediates: bool,
}

impl<'g> HgJoin<'g> {
    /// The original tuple-based variant (reported as HGJoin+).
    pub fn tuple_based(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            index: ThreeHop::new(graph),
            graph_intermediates: false,
        }
    }

    /// The revised variant with graph-represented intermediates (HGJoin*).
    pub fn graph_based(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            index: ThreeHop::new(graph),
            graph_intermediates: true,
        }
    }

    fn edge_ok(&self, q: &Gtpq, child: QueryNodeId, v: NodeId, w: NodeId) -> bool {
        match q.incoming_edge(child) {
            Some(EdgeKind::Child) => self.graph.has_edge(v, w),
            _ => self.index.reaches(v, w),
        }
    }

    /// Matches of one (parent; children) unit as explicit tuples
    /// `(parent, child_1, ..., child_k)`.
    fn unit_tuples(
        &self,
        q: &Gtpq,
        u: QueryNodeId,
        mat: &[Vec<NodeId>],
        stats: &mut BaselineStats,
    ) -> Vec<Vec<NodeId>> {
        let children = q.children(u);
        let mut tuples: Vec<Vec<NodeId>> = mat[u.index()].iter().map(|&v| vec![v]).collect();
        for &child in children {
            let mut next = Vec::new();
            for tuple in &tuples {
                let v = tuple[0];
                for &w in &mat[child.index()] {
                    stats.index_lookups += 1;
                    if self.edge_ok(q, child, v, w) {
                        let mut extended = tuple.clone();
                        extended.push(w);
                        next.push(extended);
                    }
                }
            }
            tuples = next;
            if tuples.is_empty() {
                break;
            }
        }
        stats.intermediate_results += tuples.len() as u64;
        tuples
    }

    /// Matches of one unit represented as a graph: per parent candidate, one
    /// match list per child (no Cartesian expansion).
    fn unit_graph(
        &self,
        q: &Gtpq,
        u: QueryNodeId,
        mat: &[Vec<NodeId>],
        stats: &mut BaselineStats,
    ) -> HashMap<NodeId, Vec<Vec<NodeId>>> {
        let children = q.children(u);
        let mut out = HashMap::new();
        for &v in &mat[u.index()] {
            let lists: Vec<Vec<NodeId>> = children
                .iter()
                .map(|&c| {
                    mat[c.index()]
                        .iter()
                        .copied()
                        .filter(|&w| {
                            stats.index_lookups += 1;
                            self.edge_ok(q, c, v, w)
                        })
                        .collect()
                })
                .collect();
            if lists.iter().all(|l| !l.is_empty()) {
                stats.intermediate_results += 1 + lists.iter().map(|l| l.len() as u64).sum::<u64>();
                out.insert(v, lists);
            }
        }
        out
    }
}

impl TpqAlgorithm for HgJoin<'_> {
    fn name(&self) -> &'static str {
        if self.graph_intermediates {
            "HGJoin*"
        } else {
            "HGJoin+"
        }
    }

    fn graph(&self) -> &DataGraph {
        self.graph
    }

    fn evaluate_restricted(
        &self,
        q: &Gtpq,
        restrict: Option<&Restrictions>,
    ) -> (ResultSet, BaselineStats) {
        assert!(q.is_conjunctive(), "HGJoin only handles conjunctive TPQs");
        let start = Instant::now();
        let mut stats = BaselineStats::default();
        let mat = restricted_candidates(q, self.graph, restrict, &mut stats);
        let internal: Vec<QueryNodeId> = q.internal_nodes();

        let mut results = ResultSet::new(q.output_nodes().to_vec());
        if self.graph_intermediates {
            // HGJoin*: per-unit match graphs joined implicitly at enumeration.
            let mut unit_graphs: UnitGraphs = HashMap::new();
            for &u in &internal {
                unit_graphs.insert(u, self.unit_graph(q, u, &mat, &mut stats));
            }
            let mut memo: AssignmentMemo = HashMap::new();
            for &v in &mat[q.root().index()] {
                for assignment in enumerate_graph(q, &unit_graphs, q.root(), v, &mut memo).iter() {
                    insert_projection(q, assignment, &mut results);
                }
            }
        } else {
            // HGJoin+: join the unit relations bottom-up on their shared node.
            let mut relations: HashMap<QueryNodeId, Vec<HashMap<QueryNodeId, NodeId>>> =
                HashMap::new();
            for &u in internal.iter().rev() {
                let tuples = self.unit_tuples(q, u, &mat, &mut stats);
                let children = q.children(u).to_vec();
                // Join each unit tuple with the already-joined relations of its
                // internal children on the shared child column.
                let mut joined: Vec<HashMap<QueryNodeId, NodeId>> = Vec::new();
                for tuple in tuples {
                    let mut partials: Vec<HashMap<QueryNodeId, NodeId>> = vec![{
                        let mut m = HashMap::new();
                        m.insert(u, tuple[0]);
                        for (i, &c) in children.iter().enumerate() {
                            m.insert(c, tuple[i + 1]);
                        }
                        m
                    }];
                    for (i, &c) in children.iter().enumerate() {
                        if let Some(child_rel) = relations.get(&c) {
                            let mut next = Vec::new();
                            for base in &partials {
                                for row in child_rel {
                                    if row[&c] == tuple[i + 1] {
                                        let mut merged = base.clone();
                                        for (k, &val) in row {
                                            merged.insert(*k, val);
                                        }
                                        next.push(merged);
                                    }
                                }
                            }
                            partials = next;
                            if partials.is_empty() {
                                break;
                            }
                        }
                    }
                    joined.extend(partials);
                }
                stats.intermediate_results += joined.len() as u64;
                relations.insert(u, joined);
            }
            if let Some(rows) = relations.get(&q.root()) {
                for row in rows {
                    let tuple: Option<Vec<NodeId>> = q
                        .output_nodes()
                        .iter()
                        .map(|u| row.get(u).copied())
                        .collect();
                    if let Some(tuple) = tuple {
                        results.insert(tuple);
                    }
                }
            }
        }
        stats.total_time = start.elapsed();
        (results, stats)
    }
}

fn insert_projection(q: &Gtpq, assignment: &[(QueryNodeId, NodeId)], results: &mut ResultSet) {
    let tuple: Option<Vec<NodeId>> = q
        .output_nodes()
        .iter()
        .map(|u| assignment.iter().find(|(qu, _)| qu == u).map(|&(_, n)| n))
        .collect();
    if let Some(tuple) = tuple {
        results.insert(tuple);
    }
}

fn enumerate_graph(
    q: &Gtpq,
    units: &UnitGraphs,
    u: QueryNodeId,
    v: NodeId,
    memo: &mut AssignmentMemo,
) -> Rc<Vec<Assignment>> {
    if let Some(cached) = memo.get(&(u, v)) {
        return Rc::clone(cached);
    }
    let own: Vec<(QueryNodeId, NodeId)> = if q.is_output(u) { vec![(u, v)] } else { vec![] };
    let mut partials = vec![own];
    if !q.node(u).is_leaf() {
        match units.get(&u).and_then(|m| m.get(&v)) {
            Some(lists) => {
                for (ci, &child) in q.children(u).iter().enumerate() {
                    let mut branch: Vec<Vec<(QueryNodeId, NodeId)>> = Vec::new();
                    for &w in &lists[ci] {
                        branch.extend(enumerate_graph(q, units, child, w, memo).iter().cloned());
                    }
                    branch.sort();
                    branch.dedup();
                    let mut next = Vec::with_capacity(partials.len() * branch.len());
                    for base in &partials {
                        for extra in &branch {
                            let mut merged = base.clone();
                            merged.extend_from_slice(extra);
                            merged.sort();
                            next.push(merged);
                        }
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
            }
            None => partials.clear(),
        }
    }
    partials.sort();
    partials.dedup();
    let rc = Rc::new(partials);
    memo.insert((u, v), Rc::clone(&rc));
    rc
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_datagen::{generate_xmark, xmark_q1, xmark_q2, XmarkConfig};

    use super::*;

    #[test]
    fn both_variants_agree_with_gtea() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let engine = GteaEngine::new(&g);
        let plus = HgJoin::tuple_based(&g);
        let star = HgJoin::graph_based(&g);
        for group in 0..3 {
            let q = xmark_q1(group);
            let expected = engine.evaluate(&q);
            assert!(plus.evaluate(&q).0.same_answer(&expected));
            assert!(star.evaluate(&q).0.same_answer(&expected));
        }
        let q2 = xmark_q2(1, 1);
        let expected = engine.evaluate(&q2);
        assert!(plus.evaluate(&q2).0.same_answer(&expected));
        assert!(star.evaluate(&q2).0.same_answer(&expected));
    }

    #[test]
    fn both_variants_report_intermediate_costs() {
        // The paper finds HGJoin* pays off for queries with many results and
        // can be *worse* for highly selective ones, so no ordering between the
        // two counters is asserted here — the crossover itself is what the
        // `ablation` bench measures.
        let g = generate_xmark(&XmarkConfig::with_scale(0.2));
        let plus = HgJoin::tuple_based(&g);
        let star = HgJoin::graph_based(&g);
        let q = xmark_q1(0);
        let (_, s_plus) = plus.evaluate(&q);
        let (_, s_star) = star.evaluate(&q);
        assert!(s_plus.intermediate_results > 0);
        assert!(s_star.intermediate_results > 0);
        assert_eq!(plus.name(), "HGJoin+");
        assert_eq!(star.name(), "HGJoin*");
    }
}
