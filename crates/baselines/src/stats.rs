//! Cost counters shared by the baseline algorithms (Fig. 10 metrics).

use std::time::Duration;

/// Counters collected by a baseline evaluation.
#[derive(Clone, Debug, Default)]
pub struct BaselineStats {
    /// Data nodes accessed (`#input`).
    pub input_nodes: u64,
    /// Reachability-index elements looked up (`#index`).
    pub index_lookups: u64,
    /// Size of the intermediate results (`#intermediate`): path solutions and
    /// join tuples for the tuple-based algorithms, nodes+edges of the match
    /// structure for the graph-based ones.
    pub intermediate_results: u64,
    /// Time spent in pre-filtering (only non-zero for TwigStackD).
    pub filtering_time: Duration,
    /// Total evaluation time.
    pub total_time: Duration,
    /// Number of decomposed subqueries evaluated (only non-zero when driven
    /// through the decompose-and-merge wrapper).
    pub subqueries: u64,
}

impl BaselineStats {
    /// Merges counters from a subquery evaluation (used by decompose-and-merge).
    pub fn absorb(&mut self, other: &BaselineStats) {
        self.input_nodes += other.input_nodes;
        self.index_lookups += other.index_lookups;
        self.intermediate_results += other.intermediate_results;
        self.filtering_time += other.filtering_time;
        self.total_time += other.total_time;
        self.subqueries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = BaselineStats {
            input_nodes: 10,
            index_lookups: 5,
            ..Default::default()
        };
        let b = BaselineStats {
            input_nodes: 7,
            intermediate_results: 3,
            total_time: Duration::from_millis(2),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.input_nodes, 17);
        assert_eq!(a.intermediate_results, 3);
        assert_eq!(a.subqueries, 1);
        assert_eq!(a.total_time, Duration::from_millis(2));
    }
}
