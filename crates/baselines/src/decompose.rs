//! Decompose-and-merge: evaluating general GTPQs with a conjunctive baseline.
//!
//! The baselines only understand conjunctive tree patterns.  To run them on
//! queries with disjunction and negation (the Fig. 12 experiments), the paper
//! decomposes the GTPQ into conjunctive sub-queries and merges/differences
//! their results.  This wrapper implements that strategy: for every query
//! node, the satisfaction set of each child subtree is computed with a small
//! conjunctive probe query executed by the baseline, the node's structural
//! predicate is then evaluated per candidate over those memberships (the
//! merge/difference step), and finally the backbone skeleton of the query is
//! evaluated by the baseline with its candidates restricted to the surviving
//! sets.  The number of baseline invocations grows with the number of query
//! nodes carrying predicates — the overhead the paper attributes to this
//! approach.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use gtpq_graph::NodeId;
use gtpq_logic::valuation::eval_with;
use gtpq_query::{AttrPredicate, Gtpq, GtpqBuilder, QueryNodeId, ResultSet};

use crate::stats::BaselineStats;
use crate::{Restrictions, TpqAlgorithm};

/// Evaluates a general GTPQ through the decompose-and-merge strategy on top
/// of a conjunctive baseline algorithm.
pub fn evaluate_gtpq_with(algo: &dyn TpqAlgorithm, q: &Gtpq) -> (ResultSet, BaselineStats) {
    let start = Instant::now();
    let g = algo.graph();
    let mut stats = BaselineStats::default();

    // Downward satisfaction sets, bottom-up.  Candidate selection goes
    // through the inverted index with the same `#input` accounting as
    // `restricted_candidates`: only individually verified nodes count.
    let mut sat: Vec<HashSet<NodeId>> = vec![HashSet::new(); q.size()];
    for u in q.bottom_up_order() {
        let selection = q.candidates_indexed(g, u);
        stats.input_nodes += selection.verified;
        stats.index_lookups += selection.posting_entries;
        let candidates = selection.nodes;
        if q.node(u).is_leaf() {
            sat[u.index()] = candidates.into_iter().collect();
            continue;
        }
        // Membership sets per child, each obtained from one probe sub-query.
        let mut memberships: HashMap<QueryNodeId, HashSet<NodeId>> = HashMap::new();
        for &child in q.children(u) {
            let (probe, restrictions) = probe_query(q, u, child, &sat[child.index()]);
            let (result, sub_stats) = algo.evaluate_restricted(&probe, Some(&restrictions));
            stats.absorb(&sub_stats);
            let members: HashSet<NodeId> = result.iter().map(|t| t[0]).collect();
            memberships.insert(child, members);
        }
        let fext = q.fext(u);
        sat[u.index()] = candidates
            .into_iter()
            .filter(|&v| {
                eval_with(&fext, &|var| {
                    memberships
                        .get(&QueryNodeId::from_var(var))
                        .is_some_and(|m| m.contains(&v))
                })
            })
            .collect();
    }

    // Backbone skeleton with restricted candidates.
    let (skeleton, mapping) = backbone_skeleton(q);
    let mut restrictions: Restrictions = vec![None; skeleton.size()];
    for (old, new) in &mapping {
        restrictions[new.index()] = Some(sat[old.index()].iter().copied().collect());
    }
    let (skeleton_results, sub_stats) = algo.evaluate_restricted(&skeleton, Some(&restrictions));
    stats.absorb(&sub_stats);

    // Map the skeleton's output coordinates back to the original query nodes.
    let mut results = ResultSet::new(q.output_nodes().to_vec());
    let reverse: HashMap<QueryNodeId, QueryNodeId> =
        mapping.iter().map(|&(old, new)| (new, old)).collect();
    for tuple in skeleton_results.iter() {
        let mut assignment: HashMap<QueryNodeId, NodeId> = HashMap::new();
        for (pos, new_node) in skeleton_results.output.iter().enumerate() {
            assignment.insert(reverse[new_node], tuple[pos]);
        }
        let projected: Vec<NodeId> = q.output_nodes().iter().map(|u| assignment[u]).collect();
        results.insert(projected);
    }
    stats.total_time = start.elapsed();
    (results, stats)
}

/// Builds the 2-node probe query "candidates of `u` that have a matching
/// `child`" together with the restriction pinning the child's candidates to
/// the already-computed satisfaction set.
fn probe_query(
    q: &Gtpq,
    u: QueryNodeId,
    child: QueryNodeId,
    child_sat: &HashSet<NodeId>,
) -> (Gtpq, Restrictions) {
    let mut b = GtpqBuilder::new(q.node(u).attr.clone());
    let root = b.root_id();
    let edge = q
        .incoming_edge(child)
        .expect("children have incoming edges");
    let probe_child = b.backbone_child(root, edge, AttrPredicate::any());
    b.mark_output(root);
    let probe = b.build().expect("probe queries are valid");
    let mut restrictions: Restrictions = vec![None; probe.size()];
    restrictions[probe_child.index()] = Some(child_sat.iter().copied().collect());
    (probe, restrictions)
}

/// Extracts the backbone skeleton of `q` (backbone nodes only, trivial
/// structural predicates, the original output nodes), returning the query and
/// the mapping from original to skeleton node ids.
fn backbone_skeleton(q: &Gtpq) -> (Gtpq, Vec<(QueryNodeId, QueryNodeId)>) {
    let mut b = GtpqBuilder::new(q.node(q.root()).attr.clone());
    let mut mapping: Vec<(QueryNodeId, QueryNodeId)> = vec![(q.root(), b.root_id())];
    for u in q.node_ids().skip(1) {
        if !q.is_backbone(u) {
            continue;
        }
        let parent_old = q.parent(u).expect("non-root");
        let parent_new = mapping
            .iter()
            .find(|(old, _)| *old == parent_old)
            .map(|&(_, new)| new)
            .expect("backbone parents precede their children");
        let new = b.backbone_child(
            parent_new,
            q.incoming_edge(u).expect("non-root"),
            q.node(u).attr.clone(),
        );
        mapping.push((u, new));
    }
    for &o in q.output_nodes() {
        let new = mapping
            .iter()
            .find(|(old, _)| *old == o)
            .map(|&(_, new)| new)
            .expect("output nodes are backbone nodes");
        b.mark_output(new);
    }
    (b.build().expect("skeletons are valid"), mapping)
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_datagen::{fig11_gtpq, generate_xmark, Fig11Predicate, XmarkConfig};
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;

    use crate::twig_stack::TwigStack;
    use crate::twigstack_d::TwigStackD;

    use super::*;

    #[test]
    fn decomposed_twigstack_matches_the_oracle_on_the_running_example() {
        let g = example_graph();
        let q = example_query();
        let expected = naive::evaluate(&q, &g);
        let twig = TwigStack::new(&g);
        let (result, stats) = evaluate_gtpq_with(&twig, &q);
        assert!(result.same_answer(&expected));
        assert!(
            stats.subqueries > 1,
            "decomposition must run several subqueries"
        );
    }

    #[test]
    fn decomposed_baselines_match_gtea_on_fig11_gtpqs() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.05));
        let engine = GteaEngine::new(&g);
        let twig = TwigStack::new(&g);
        let twig_d = TwigStackD::new(&g);
        for (name, variant) in [
            ("DIS1", Fig11Predicate::Dis1),
            ("NEG1", Fig11Predicate::Neg1),
            ("DIS_NEG2", Fig11Predicate::DisNeg2),
        ] {
            let q = fig11_gtpq(variant, 0, 0);
            let expected = engine.evaluate(&q);
            let (a, _) = evaluate_gtpq_with(&twig, &q);
            assert!(a.same_answer(&expected), "TwigStack on {name}");
            let (b, _) = evaluate_gtpq_with(&twig_d, &q);
            assert!(b.same_answer(&expected), "TwigStackD on {name}");
        }
    }

    #[test]
    fn skeleton_preserves_backbone_structure() {
        let q = example_query();
        let (skeleton, mapping) = backbone_skeleton(&q);
        assert!(skeleton.is_conjunctive());
        assert_eq!(skeleton.size(), 4, "four backbone nodes in the example");
        assert_eq!(mapping.len(), 4);
        assert_eq!(skeleton.output_nodes().len(), q.output_nodes().len());
    }
}
