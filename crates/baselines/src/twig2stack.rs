//! Twig2Stack-style bottom-up twig evaluation.
//!
//! Twig2Stack avoids enumerating path solutions by processing elements
//! bottom-up and organizing partial matches in hierarchical stacks that link
//! each element to the matching elements of its query children; twig answers
//! are enumerated from those linked structures at the end.  The trade-off the
//! paper highlights (Fig. 8 discussion) is the overhead of building and
//! maintaining the hierarchical structures for *every* query node — there is
//! no pruning, so links are materialized even for candidates that never reach
//! the output.
//!
//! This implementation reproduces that structure: a bottom-up sweep retains,
//! for every candidate of every query node, explicit link lists to the
//! matching candidates of each child (pairwise reachability checks through
//! the 3-hop index), and results are enumerated from the link structure.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId, ResultSet};
use gtpq_reach::{Reachability, ThreeHop};

use crate::stats::BaselineStats;
use crate::{restricted_candidates, Assignment, AssignmentMemo, Restrictions, TpqAlgorithm};

/// Twig2Stack-style evaluator.
pub struct Twig2Stack<'g> {
    graph: &'g DataGraph,
    index: ThreeHop,
}

impl<'g> Twig2Stack<'g> {
    /// Builds the evaluator for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            index: ThreeHop::new(graph),
        }
    }
}

impl TpqAlgorithm for Twig2Stack<'_> {
    fn name(&self) -> &'static str {
        "Twig2Stack"
    }

    fn graph(&self) -> &DataGraph {
        self.graph
    }

    fn evaluate_restricted(
        &self,
        q: &Gtpq,
        restrict: Option<&Restrictions>,
    ) -> (ResultSet, BaselineStats) {
        assert!(
            q.is_conjunctive(),
            "Twig2Stack only handles conjunctive TPQs"
        );
        let start = Instant::now();
        let mut stats = BaselineStats::default();
        let mut mat = restricted_candidates(q, self.graph, restrict, &mut stats);

        // Bottom-up sweep: per candidate, link lists to matching child candidates.
        let mut links: HashMap<(QueryNodeId, NodeId), Vec<Vec<NodeId>>> = HashMap::new();
        for u in q.bottom_up_order() {
            if q.node(u).is_leaf() {
                continue;
            }
            let children = q.children(u).to_vec();
            let candidates = std::mem::take(&mut mat[u.index()]);
            stats.input_nodes += candidates.len() as u64;
            let mut kept = Vec::with_capacity(candidates.len());
            for v in candidates {
                let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(children.len());
                let mut ok = true;
                for &child in &children {
                    let matched: Vec<NodeId> = mat[child.index()]
                        .iter()
                        .copied()
                        .filter(|&w| {
                            stats.index_lookups += 1;
                            match q.incoming_edge(child) {
                                Some(EdgeKind::Child) => self.graph.has_edge(v, w),
                                _ => self.index.reaches(v, w),
                            }
                        })
                        .collect();
                    if matched.is_empty() {
                        ok = false;
                        break;
                    }
                    stats.intermediate_results += matched.len() as u64;
                    lists.push(matched);
                }
                if ok {
                    links.insert((u, v), lists);
                    kept.push(v);
                }
            }
            mat[u.index()] = kept;
        }
        stats.intermediate_results += mat.iter().map(|m| m.len() as u64).sum::<u64>();

        // Enumerate results from the hierarchical link structure.
        let mut results = ResultSet::new(q.output_nodes().to_vec());
        let mut memo: AssignmentMemo = HashMap::new();
        for &v in &mat[q.root().index()] {
            for assignment in enumerate(q, &links, q.root(), v, &mut memo).iter() {
                let tuple: Option<Vec<NodeId>> = q
                    .output_nodes()
                    .iter()
                    .map(|u| assignment.iter().find(|(qu, _)| qu == u).map(|&(_, n)| n))
                    .collect();
                if let Some(tuple) = tuple {
                    results.insert(tuple);
                }
            }
        }
        stats.total_time = start.elapsed();
        (results, stats)
    }
}

fn enumerate(
    q: &Gtpq,
    links: &HashMap<(QueryNodeId, NodeId), Vec<Vec<NodeId>>>,
    u: QueryNodeId,
    v: NodeId,
    memo: &mut AssignmentMemo,
) -> Rc<Vec<Assignment>> {
    if let Some(cached) = memo.get(&(u, v)) {
        return Rc::clone(cached);
    }
    let own: Vec<(QueryNodeId, NodeId)> = if q.is_output(u) { vec![(u, v)] } else { vec![] };
    let mut partials = vec![own];
    if !q.node(u).is_leaf() {
        let children = q.children(u);
        if let Some(lists) = links.get(&(u, v)) {
            for (ci, &child) in children.iter().enumerate() {
                let mut branch: Vec<Vec<(QueryNodeId, NodeId)>> = Vec::new();
                for &w in &lists[ci] {
                    branch.extend(enumerate(q, links, child, w, memo).iter().cloned());
                }
                branch.sort();
                branch.dedup();
                let mut next = Vec::with_capacity(partials.len() * branch.len());
                for base in &partials {
                    for extra in &branch {
                        let mut merged = base.clone();
                        merged.extend_from_slice(extra);
                        merged.sort();
                        next.push(merged);
                    }
                }
                partials = next;
                if partials.is_empty() {
                    break;
                }
            }
        } else {
            partials.clear();
        }
    }
    partials.sort();
    partials.dedup();
    let rc = Rc::new(partials);
    memo.insert((u, v), Rc::clone(&rc));
    rc
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_datagen::{generate_xmark, xmark_q1, xmark_q2, XmarkConfig};

    use super::*;

    #[test]
    fn agrees_with_gtea_on_xmark_queries() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let engine = GteaEngine::new(&g);
        let twig = Twig2Stack::new(&g);
        for group in 0..3 {
            let q1 = xmark_q1(group);
            assert!(twig.evaluate(&q1).0.same_answer(&engine.evaluate(&q1)));
            let q2 = xmark_q2(group, group);
            assert!(twig.evaluate(&q2).0.same_answer(&engine.evaluate(&q2)));
        }
    }

    #[test]
    fn reports_costs() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let twig = Twig2Stack::new(&g);
        let (_, stats) = twig.evaluate(&xmark_q1(0));
        assert!(stats.input_nodes > 0);
        assert!(stats.index_lookups > 0);
        assert_eq!(twig.name(), "Twig2Stack");
    }
}
