//! Baseline algorithms the paper compares GTEA against (§5).
//!
//! All baselines evaluate *conjunctive* tree pattern queries; general GTPQs
//! are handled through the decompose-and-merge wrapper in [`decompose`],
//! which is how the paper applies TwigStack / TwigStackD to queries with
//! disjunction and negation (Appendix C.2).
//!
//! * [`TwigStack`] — holistic twig join in the style of Bruno et al.:
//!   enumerates root-to-leaf *path solutions* and merge-joins them into twig
//!   matches.  Its intermediate results grow with the number of path
//!   solutions, the effect the paper's Fig. 10 quantifies.
//! * [`Twig2Stack`] — bottom-up twig evaluation that avoids path
//!   enumeration by keeping per-node hierarchical match links, at the cost
//!   of building and maintaining those structures for every query node.
//! * [`TwigStackD`] — the DAG generalization of the holistic algorithms:
//!   a pre-filtering phase (two sweeps over the candidates) followed by
//!   pool-based match expansion, with the SSPI index answering reachability.
//! * [`HgJoin`] — hash-based structural join over (parent, children) units,
//!   in two flavours: tuple intermediates (HGJoin+) and graph-represented
//!   intermediates (HGJoin*), the paper's own revision.
//!
//! Substitutions with respect to the original systems (region-encoded input
//! streams, selectivity-based plan generation) are listed in DESIGN.md; the
//! join strategies and intermediate-result representations — the factors the
//! paper's experiments isolate — are reproduced by real code doing the
//! corresponding work.

pub mod decompose;
pub mod hgjoin;
pub mod stats;
pub mod twig2stack;
pub mod twig_stack;
pub mod twigstack_d;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{Gtpq, ResultSet};

pub use decompose::evaluate_gtpq_with;
pub use hgjoin::HgJoin;
pub use stats::BaselineStats;
pub use twig2stack::Twig2Stack;
pub use twig_stack::TwigStack;
pub use twigstack_d::TwigStackD;

/// Per-query-node candidate restrictions handed to a baseline by the
/// decompose-and-merge wrapper (`None` entries mean "no restriction").
pub type Restrictions = Vec<Option<Vec<NodeId>>>;

/// One match projection: a sorted `(query node, data node)` assignment.
/// Shared by the enumeration phases of the baseline evaluators.
pub(crate) type Assignment = Vec<(gtpq_query::QueryNodeId, NodeId)>;

/// Shared, memoized projections per (query node, data node).
pub(crate) type AssignmentMemo =
    std::collections::HashMap<(gtpq_query::QueryNodeId, NodeId), std::rc::Rc<Vec<Assignment>>>;

/// A conjunctive tree-pattern-query evaluation algorithm.
pub trait TpqAlgorithm {
    /// Short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Evaluates a conjunctive query, optionally restricting the candidates of
    /// some query nodes.
    ///
    /// # Panics
    /// Panics if `q` is not conjunctive (use [`evaluate_gtpq_with`] for
    /// general GTPQs).
    fn evaluate_restricted(
        &self,
        q: &Gtpq,
        restrict: Option<&Restrictions>,
    ) -> (ResultSet, BaselineStats);

    /// Evaluates a conjunctive query without restrictions.
    fn evaluate(&self, q: &Gtpq) -> (ResultSet, BaselineStats) {
        self.evaluate_restricted(q, None)
    }

    /// The data graph the algorithm was built for.
    fn graph(&self) -> &DataGraph;
}

/// Computes the initial candidates of every query node through the attribute
/// inverted index, applying restrictions.
pub(crate) fn restricted_candidates(
    q: &Gtpq,
    g: &DataGraph,
    restrict: Option<&Restrictions>,
    stats: &mut BaselineStats,
) -> Vec<Vec<NodeId>> {
    let mut mat: Vec<Vec<NodeId>> = Vec::with_capacity(q.size());
    let mut allowed = gtpq_graph::NodeBitSet::new(g.node_count());
    for u in q.node_ids() {
        let selection = q.candidates_indexed(g, u);
        stats.input_nodes += selection.verified;
        stats.index_lookups += selection.posting_entries;
        let mut candidates = selection.nodes;
        if let Some(r) = restrict.and_then(|r| r[u.index()].as_ref()) {
            allowed.clear();
            allowed.extend_from_slice(r);
            candidates.retain(|&v| allowed.contains(v));
        }
        mat.push(candidates);
    }
    mat
}
