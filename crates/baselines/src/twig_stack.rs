//! TwigStack-style holistic twig join: path solutions + merge join.
//!
//! The classical algorithm streams region-encoded element lists and pushes
//! partial root-to-leaf *path solutions* onto per-node stacks, then
//! merge-joins the path solutions of different leaves into twig matches.  Its
//! defining cost characteristic — which the paper's Fig. 10 isolates — is the
//! materialization of all path solutions before the join.  This
//! implementation reproduces that structure on graph data: reachability
//! between candidates is answered by the 3-hop index (standing in for region
//! containment on the tree cover), every root-to-leaf query path is expanded
//! into explicit path solutions, and the per-path relations are hash-joined
//! on their shared query nodes.

use std::collections::HashMap;
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId, ResultSet};
use gtpq_reach::{Reachability, ThreeHop};

use crate::stats::BaselineStats;
use crate::{restricted_candidates, Restrictions, TpqAlgorithm};

/// TwigStack-style evaluator.
pub struct TwigStack<'g> {
    graph: &'g DataGraph,
    index: ThreeHop,
}

impl<'g> TwigStack<'g> {
    /// Builds the evaluator (and its reachability index) for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            index: ThreeHop::new(graph),
        }
    }

    /// Enumerates the path solutions of one root-to-leaf query path.
    fn path_solutions(
        &self,
        q: &Gtpq,
        path: &[QueryNodeId],
        mat: &[Vec<NodeId>],
        stats: &mut BaselineStats,
    ) -> Vec<Vec<NodeId>> {
        let mut solutions: Vec<Vec<NodeId>> =
            mat[path[0].index()].iter().map(|&v| vec![v]).collect();
        for window in path.windows(2) {
            let (_parent, child) = (window[0], window[1]);
            let child_candidates = &mat[child.index()];
            let edge = q.incoming_edge(child);
            let mut next = Vec::new();
            for solution in &solutions {
                let tail = *solution.last().expect("path solutions are non-empty");
                for &w in child_candidates {
                    stats.index_lookups += 1;
                    let ok = match edge {
                        Some(EdgeKind::Child) => self.graph.has_edge(tail, w),
                        _ => self.index.reaches(tail, w),
                    };
                    if ok {
                        let mut extended = solution.clone();
                        extended.push(w);
                        next.push(extended);
                    }
                }
            }
            solutions = next;
            if solutions.is_empty() {
                break;
            }
        }
        stats.intermediate_results += solutions.len() as u64;
        solutions
    }
}

impl TpqAlgorithm for TwigStack<'_> {
    fn name(&self) -> &'static str {
        "TwigStack"
    }

    fn graph(&self) -> &DataGraph {
        self.graph
    }

    fn evaluate_restricted(
        &self,
        q: &Gtpq,
        restrict: Option<&Restrictions>,
    ) -> (ResultSet, BaselineStats) {
        assert!(
            q.is_conjunctive(),
            "TwigStack only handles conjunctive TPQs"
        );
        let start = Instant::now();
        let mut stats = BaselineStats::default();
        let mat = restricted_candidates(q, self.graph, restrict, &mut stats);

        // Root-to-leaf paths of the query tree.
        let mut paths: Vec<Vec<QueryNodeId>> = Vec::new();
        for u in q.node_ids() {
            if q.node(u).is_leaf() {
                let mut path = vec![u];
                let mut cursor = q.parent(u);
                while let Some(p) = cursor {
                    path.push(p);
                    cursor = q.parent(p);
                }
                path.reverse();
                paths.push(path);
            }
        }

        // Merge-join the per-path relations on shared query nodes.
        let mut joined: Vec<HashMap<QueryNodeId, NodeId>> = vec![HashMap::new()];
        for path in &paths {
            let solutions = self.path_solutions(q, path, &mat, &mut stats);
            let mut next: Vec<HashMap<QueryNodeId, NodeId>> = Vec::new();
            for base in &joined {
                for solution in &solutions {
                    let mut merged = base.clone();
                    let mut compatible = true;
                    for (qnode, &v) in path.iter().zip(solution) {
                        match merged.get(qnode) {
                            Some(&existing) if existing != v => {
                                compatible = false;
                                break;
                            }
                            _ => {
                                merged.insert(*qnode, v);
                            }
                        }
                    }
                    if compatible {
                        next.push(merged);
                    }
                }
            }
            stats.intermediate_results += next.len() as u64;
            joined = next;
            if joined.is_empty() {
                break;
            }
        }

        let mut results = ResultSet::new(q.output_nodes().to_vec());
        for assignment in joined {
            let tuple: Vec<NodeId> = q.output_nodes().iter().map(|u| assignment[u]).collect();
            results.insert(tuple);
        }
        stats.total_time = start.elapsed();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_datagen::{generate_xmark, xmark_q1, XmarkConfig};
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;

    use super::*;

    #[test]
    fn agrees_with_gtea_on_xmark_q1() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let engine = GteaEngine::new(&g);
        let twig = TwigStack::new(&g);
        for group in 0..4 {
            let q = xmark_q1(group);
            let (res, stats) = twig.evaluate(&q);
            assert!(res.same_answer(&engine.evaluate(&q)), "group {group}");
            assert!(stats.total_time >= stats.filtering_time);
        }
    }

    #[test]
    fn produces_more_intermediate_results_than_gtea() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        let engine = GteaEngine::new(&g);
        let twig = TwigStack::new(&g);
        let q = xmark_q1(0);
        let (_, twig_stats) = twig.evaluate(&q);
        let (_, gtea_stats) = engine.evaluate_with_stats(&q);
        assert!(
            twig_stats.intermediate_results >= gtea_stats.intermediate_size,
            "path solutions should dominate the matching graph ({} vs {})",
            twig_stats.intermediate_results,
            gtea_stats.intermediate_size
        );
    }

    #[test]
    #[should_panic(expected = "conjunctive")]
    fn rejects_non_conjunctive_queries() {
        let g = example_graph();
        let twig = TwigStack::new(&g);
        let _ = twig.evaluate(&example_query());
    }

    #[test]
    fn respects_candidate_restrictions() {
        let mut gb = gtpq_graph::GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        let b2 = gb.add_node_with_label("b");
        gb.add_edge(a, b1);
        gb.add_edge(a, b2);
        let g = gb.build();
        let mut qb = gtpq_query::GtpqBuilder::new(gtpq_query::AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(
            root,
            EdgeKind::Descendant,
            gtpq_query::AttrPredicate::label("b"),
        );
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let twig = TwigStack::new(&g);
        let mut restrictions: Restrictions = vec![None; q.size()];
        restrictions[child.index()] = Some(vec![b2]);
        let (res, _) = twig.evaluate_restricted(&q, Some(&restrictions));
        assert_eq!(res.len(), 1);
        assert!(res.contains(&[b2]));
        // Unrestricted agrees with the naive oracle.
        let (full, _) = twig.evaluate(&q);
        assert!(full.same_answer(&naive::evaluate(&q, &g)));
    }
}
