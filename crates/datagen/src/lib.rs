//! Synthetic data and query generators for the GTPQ experiments.
//!
//! The paper evaluates on three data sources that are not redistributable
//! here: the XMark XML benchmark (modelled as a graph with ID/IDREF cross
//! edges), the arXiv HEP-Th citation/authorship graph, and a DBLP fragment
//! for the motivating example.  This crate generates deterministic synthetic
//! stand-ins with the same schema shape and the structural properties the
//! algorithms are sensitive to (see DESIGN.md "Substitutions"):
//!
//! * [`xmark`] — auction-site graphs: a shallow tree skeleton of typed
//!   elements (`open_auction`, `bidder`, `person`, `item`, ...) plus IDREF
//!   cross edges (`person_ref → person`, `item_ref → item`, `seller →
//!   person`), parameterized by a scale factor,
//! * [`arxiv`] — denser and deeper citation/authorship graphs with labelled
//!   papers (area/journal group) and authors (email-domain group),
//! * [`dblp`] — the small bibliography graph of Example 1,
//! * [`embed`] — embedded-text corpora for the similarity access path:
//!   documents carrying deterministic pseudo-embeddings with planted
//!   near-duplicate clusters whose recall is checkable by construction,
//! * [`queries`] — the paper's query workloads: Q1–Q3 of Fig. 7, the Fig. 11
//!   GTPQ suite of Tables 3–4, the DBLP queries of Example 1, and the random
//!   query generator of §5.2,
//! * [`updates`] — deterministic mutation streams (node/attribute/edge
//!   inserts batched into epochs) replayable on both the live-graph handle
//!   and a from-scratch builder, for the mutation-oracle tests and the
//!   mixed read/write benchmark.
//!
//! Every generator takes an explicit seed and is fully deterministic.

pub mod arxiv;
pub mod dblp;
pub mod embed;
pub mod queries;
pub mod stream;
pub mod updates;
pub mod xmark;

pub use arxiv::{generate_arxiv, ArxivConfig};
pub use dblp::generate_dblp;
pub use embed::{generate_embed, EmbedConfig};
pub use queries::{
    dblp_queries, fig11_gtpq, fig11_output_variant, random_queries, random_text_query, xmark_q1,
    xmark_q2, xmark_q3, Fig11Predicate, RandomQueryConfig,
};
pub use stream::{write_arxiv_snapshot, SnapshotStats};
pub use updates::{apply_ops, apply_ops_to_builder, update_stream, UpdateOp, UpdateStreamConfig};
pub use xmark::{generate_xmark, XmarkConfig};
