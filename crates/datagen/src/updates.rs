//! Deterministic update-stream generator for live-graph experiments.
//!
//! Produces batches ("epochs") of graph mutations — node inserts, attribute
//! upserts and edge inserts — that can be replayed identically against a
//! [`GraphHandle`] (the incremental mutation path) and against a
//! [`GraphBuilder`] (a from-scratch rebuild).  That replayability is what the
//! mutation-oracle test suite leans on: the same op sequence applied both
//! ways must yield bit-identical graphs.
//!
//! Ops reference nodes by absolute [`NodeId`]; the generator tracks the
//! running node count so every referenced id exists by the time its op is
//! applied, regardless of where epoch boundaries (commits) fall.  The
//! [`UpdateStreamConfig::backward_edge_fraction`] knob orients a tunable
//! share of edge inserts from the higher id to the lower one, which creates
//! cycles against the insertion order and forces the condensation
//! maintenance off its incremental fast path.

use gtpq_graph::{AttrValue, DataGraph, GraphBuilder, GraphHandle, NodeId, LABEL_ATTR, VALUE_ATTR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph mutation, replayable on a handle or a builder.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Append a node labelled `label`; it receives the next dense id.
    InsertNode {
        /// Label attribute of the new node.
        label: String,
    },
    /// Upsert attribute `name` on an existing (or just-inserted) node.
    SetAttr {
        /// Target node; always below the running node count.
        node: NodeId,
        /// Attribute name.
        name: String,
        /// New value; replaces any previous value of `name`.
        value: AttrValue,
    },
    /// Insert the directed edge `from → to` (`from != to`).
    InsertEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
}

/// Configuration of [`update_stream`].
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamConfig {
    /// RNG seed; same seed and base graph → same stream.
    pub seed: u64,
    /// Number of epochs (commit batches) to generate.
    pub epochs: usize,
    /// Ops per epoch.
    pub ops_per_epoch: usize,
    /// Fraction of ops that insert a node.
    pub insert_node_fraction: f64,
    /// Fraction of ops that upsert an attribute.  The remainder
    /// (`1 − insert_node_fraction − set_attr_fraction`) inserts edges.
    pub set_attr_fraction: f64,
    /// Fraction of edge inserts oriented from the higher node id to the
    /// lower one — against insertion order, so they can close cycles and
    /// defeat the incremental condensation fast path.
    pub backward_edge_fraction: f64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            epochs: 4,
            ops_per_epoch: 32,
            insert_node_fraction: 0.35,
            set_attr_fraction: 0.25,
            backward_edge_fraction: 0.3,
        }
    }
}

/// Generates `cfg.epochs` batches of mutations for a graph currently equal
/// to `g`.  Labels of inserted nodes are sampled from the labels present in
/// `g` (falling back to a small palette on unlabelled or empty graphs), so
/// the stream stays within the base graph's vocabulary and mutated graphs
/// keep answering the same query workloads.
pub fn update_stream(g: &DataGraph, cfg: &UpdateStreamConfig) -> Vec<Vec<UpdateOp>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut palette: Vec<String> = Vec::new();
    for v in g.nodes() {
        if let Some(AttrValue::Str(s)) = g.attribute_value(v, LABEL_ATTR) {
            if !palette.contains(s) {
                palette.push(s.clone());
            }
        }
        if palette.len() >= 16 {
            break;
        }
    }
    if palette.is_empty() {
        palette = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
    }

    let mut n = g.node_count();
    let mut epochs = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut ops = Vec::with_capacity(cfg.ops_per_epoch);
        for _ in 0..cfg.ops_per_epoch {
            let roll: f64 = rng.gen();
            if roll < cfg.insert_node_fraction || n < 2 {
                let label = palette[rng.gen_range(0..palette.len())].clone();
                ops.push(UpdateOp::InsertNode { label });
                n += 1;
            } else if roll < cfg.insert_node_fraction + cfg.set_attr_fraction {
                let node = NodeId(rng.gen_range(0..n) as u32);
                let (name, value) = if rng.gen_bool(0.7) {
                    (
                        VALUE_ATTR.to_string(),
                        AttrValue::int(rng.gen_range(0..100)),
                    )
                } else {
                    let label = palette[rng.gen_range(0..palette.len())].clone();
                    (LABEL_ATTR.to_string(), AttrValue::Str(label))
                };
                ops.push(UpdateOp::SetAttr { node, name, value });
            } else {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                if a == b {
                    b = (b + 1) % n;
                }
                let (lo, hi) = (a.min(b), a.max(b));
                let (from, to) = if rng.gen_bool(cfg.backward_edge_fraction) {
                    (hi, lo)
                } else {
                    (lo, hi)
                };
                ops.push(UpdateOp::InsertEdge {
                    from: NodeId(from as u32),
                    to: NodeId(to as u32),
                });
            }
        }
        epochs.push(ops);
    }
    epochs
}

/// Replays `ops` against a live [`GraphHandle`] (staged; call
/// `handle.commit()` to publish).  Panics if an op references a node the
/// handle has not seen — streams from [`update_stream`] never do when
/// replayed in order.
pub fn apply_ops(handle: &GraphHandle, ops: &[UpdateOp]) {
    for op in ops {
        match op {
            UpdateOp::InsertNode { label } => {
                handle.insert_node_with_label(label);
            }
            UpdateOp::SetAttr { node, name, value } => {
                handle.set_attr(*node, name, value.clone());
            }
            UpdateOp::InsertEdge { from, to } => {
                handle.insert_edge(*from, *to);
            }
        }
    }
}

/// Replays `ops` against a [`GraphBuilder`] — the from-scratch rebuild half
/// of the oracle comparison.
pub fn apply_ops_to_builder(builder: &mut GraphBuilder, ops: &[UpdateOp]) {
    for op in ops {
        match op {
            UpdateOp::InsertNode { label } => {
                builder.add_node_with_label(label);
            }
            UpdateOp::SetAttr { node, name, value } => {
                builder.set_attr(*node, name, value.clone());
            }
            UpdateOp::InsertEdge { from, to } => {
                builder.add_edge(*from, *to);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::InsertNode { label: "a".into() },
            UpdateOp::InsertNode { label: "b".into() },
            UpdateOp::InsertNode { label: "c".into() },
            UpdateOp::InsertEdge {
                from: NodeId(0),
                to: NodeId(1),
            },
            UpdateOp::InsertEdge {
                from: NodeId(1),
                to: NodeId(2),
            },
        ]
    }

    fn base_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        apply_ops_to_builder(&mut b, &base_ops());
        b.build()
    }

    #[test]
    fn streams_are_deterministic_and_sized() {
        let g = base_graph();
        let cfg = UpdateStreamConfig::default();
        let s1 = update_stream(&g, &cfg);
        let s2 = update_stream(&g, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), cfg.epochs);
        assert!(s1.iter().all(|e| e.len() == cfg.ops_per_epoch));
        let s3 = update_stream(&g, &UpdateStreamConfig { seed: 8, ..cfg });
        assert_ne!(s1, s3);
    }

    #[test]
    fn ops_reference_only_existing_nodes() {
        let g = base_graph();
        let cfg = UpdateStreamConfig {
            epochs: 6,
            ops_per_epoch: 50,
            ..UpdateStreamConfig::default()
        };
        let mut n = g.node_count();
        for epoch in update_stream(&g, &cfg) {
            for op in epoch {
                match op {
                    UpdateOp::InsertNode { .. } => n += 1,
                    UpdateOp::SetAttr { node, .. } => assert!(node.index() < n),
                    UpdateOp::InsertEdge { from, to } => {
                        assert!(from.index() < n && to.index() < n);
                        assert_ne!(from, to);
                    }
                }
            }
        }
    }

    #[test]
    fn handle_and_builder_replays_are_bit_identical() {
        let g = base_graph();
        let cfg = UpdateStreamConfig {
            epochs: 3,
            ops_per_epoch: 40,
            ..UpdateStreamConfig::default()
        };
        let stream = update_stream(&g, &cfg);

        let handle = GraphHandle::new(base_graph());
        let mut oracle = GraphBuilder::new();
        apply_ops_to_builder(&mut oracle, &base_ops());
        for epoch in &stream {
            apply_ops(&handle, epoch);
            apply_ops_to_builder(&mut oracle, epoch);
            handle.commit();
        }
        let rebuilt = oracle.build();
        let snap = handle.snapshot();
        assert_eq!(**snap.graph(), rebuilt);
        assert_eq!(snap.epoch(), stream.len() as u64);
    }

    #[test]
    fn empty_graph_uses_fallback_palette() {
        let empty = GraphBuilder::new().build();
        let cfg = UpdateStreamConfig {
            epochs: 2,
            ops_per_epoch: 20,
            ..UpdateStreamConfig::default()
        };
        let stream = update_stream(&empty, &cfg);
        let handle = GraphHandle::new(empty);
        for epoch in &stream {
            apply_ops(&handle, epoch);
            handle.commit();
        }
        assert!(handle.snapshot().graph().node_count() > 0);
    }

    #[test]
    fn backward_edges_appear_when_requested() {
        let g = base_graph();
        let cfg = UpdateStreamConfig {
            epochs: 4,
            ops_per_epoch: 60,
            backward_edge_fraction: 1.0,
            ..UpdateStreamConfig::default()
        };
        let backward = update_stream(&g, &cfg)
            .iter()
            .flatten()
            .filter(|op| matches!(op, UpdateOp::InsertEdge { from, to } if from > to))
            .count();
        assert!(backward > 0);
    }
}
