//! Query workloads of the paper's evaluation.
//!
//! * [`xmark_q1`]/[`xmark_q2`]/[`xmark_q3`] — the conjunctive TPQs of Fig. 7
//!   used in §5.1 (all query nodes are backbone and output nodes),
//! * [`fig11_gtpq`] — the Fig. 11 query structure with the structural
//!   predicates of Table 4 (DIS*/NEG*/DIS_NEG*) used in Appendix C.2,
//! * [`fig11_output_variant`] — the Fig. 11 conjunctive query with the output
//!   node sets of Table 3 (Q4–Q8) used in Exp-1,
//! * [`dblp_queries`] — Q1–Q3 of Example 1 over the DBLP-like graph,
//! * [`random_queries`] — the random query generator of §5.2: patterns are
//!   sampled from the data graph itself so they always have matches.

use gtpq_graph::{DataGraph, NodeId};
use gtpq_logic::BoolExpr;
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, Gtpq, GtpqBuilder, NodeKind, QueryNodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `label = person<group>` predicate for XMark person nodes; groups of 10 or
/// more act as a wildcard matching every person group.
fn person_label(group: u32) -> AttrPredicate {
    if group >= 10 {
        gtpq_query::fixtures::label_prefix("person")
    } else {
        AttrPredicate::label(&format!("person{group}"))
    }
}

/// `label = item<group>` predicate for XMark item nodes; groups of 10 or more
/// act as a wildcard matching every item group.
fn item_label(group: u32) -> AttrPredicate {
    if group >= 10 {
        gtpq_query::fixtures::label_prefix("item")
    } else {
        AttrPredicate::label(&format!("item{group}"))
    }
}

/// Fig. 7(a): auctions with a bidder by a `person<group>` person (with an
/// education and a city) and a current price.  Conjunctive; every node is a
/// backbone output node.
pub fn xmark_q1(person_group: u32) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label("open_auction"));
    let root = b.root_id();
    let bidder = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("bidder"));
    let person_ref = b.backbone_child(bidder, EdgeKind::Child, AttrPredicate::label("person_ref"));
    let person = b.backbone_child(person_ref, EdgeKind::Child, person_label(person_group));
    let _education = b.backbone_child(
        person,
        EdgeKind::Descendant,
        AttrPredicate::label("education"),
    );
    let address = b.backbone_child(person, EdgeKind::Child, AttrPredicate::label("address"));
    let _city = b.backbone_child(address, EdgeKind::Child, AttrPredicate::label("city"));
    let _current = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("current"));
    b.mark_all_backbone_output();
    b.build().expect("Q1 is well formed")
}

/// Fig. 7(b): Q1 plus an `item<group>` item reference with a location.
pub fn xmark_q2(person_group: u32, item_group: u32) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label("open_auction"));
    let root = b.root_id();
    let bidder = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("bidder"));
    let person_ref = b.backbone_child(bidder, EdgeKind::Child, AttrPredicate::label("person_ref"));
    let person = b.backbone_child(person_ref, EdgeKind::Child, person_label(person_group));
    let _education = b.backbone_child(
        person,
        EdgeKind::Descendant,
        AttrPredicate::label("education"),
    );
    let address = b.backbone_child(person, EdgeKind::Child, AttrPredicate::label("address"));
    let _city = b.backbone_child(address, EdgeKind::Child, AttrPredicate::label("city"));
    let _current = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("current"));
    let item_ref = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("item_ref"));
    let item = b.backbone_child(item_ref, EdgeKind::Child, item_label(item_group));
    let _location = b.backbone_child(item, EdgeKind::Child, AttrPredicate::label("location"));
    b.mark_all_backbone_output();
    b.build().expect("Q2 is well formed")
}

/// Fig. 7(c): Q2 plus a seller person with a profile.
pub fn xmark_q3(person_group: u32, item_group: u32, seller_group: u32) -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label("open_auction"));
    let root = b.root_id();
    let bidder = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("bidder"));
    let person_ref = b.backbone_child(bidder, EdgeKind::Child, AttrPredicate::label("person_ref"));
    let person = b.backbone_child(person_ref, EdgeKind::Child, person_label(person_group));
    let _education = b.backbone_child(
        person,
        EdgeKind::Descendant,
        AttrPredicate::label("education"),
    );
    let address = b.backbone_child(person, EdgeKind::Child, AttrPredicate::label("address"));
    let _city = b.backbone_child(address, EdgeKind::Child, AttrPredicate::label("city"));
    let _current = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("current"));
    let item_ref = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("item_ref"));
    let item = b.backbone_child(item_ref, EdgeKind::Child, item_label(item_group));
    let _location = b.backbone_child(item, EdgeKind::Child, AttrPredicate::label("location"));
    let seller = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("seller"));
    let seller_person = b.backbone_child(seller, EdgeKind::Child, person_label(seller_group));
    let _profile = b.backbone_child(
        seller_person,
        EdgeKind::Child,
        AttrPredicate::label("profile"),
    );
    b.mark_all_backbone_output();
    b.build().expect("Q3 is well formed")
}

/// The structural-predicate variants of Table 4 over the Fig. 11 structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig11Predicate {
    /// Conjunctive version (used by Exp-1 / Table 3).
    Conjunctive,
    /// `fs(open_auction) = bidder ∨ seller`
    Dis1,
    /// `fs(open_auction) = bidder ∨ seller`, `fs(item) = mailbox ∨ location`
    Dis2,
    /// `fs(open_auction) = bidder ∨ seller ∨ item`
    Dis3,
    /// `fs(person) = ¬education`
    Neg1,
    /// `fs(open_auction) = ¬bidder`, `fs(person) = ¬education`
    Neg2,
    /// `fs(open_auction) = ¬bidder ∧ ¬seller`, `fs(person) = ¬education`
    Neg3,
    /// `fs(open_auction) = ¬bidder ∨ seller`, `fs(person) = ¬education`
    DisNeg1,
    /// `fs(open_auction) = (¬bidder ∧ seller) ∨ (bidder ∧ ¬seller)`
    DisNeg2,
    /// `DisNeg2` plus `fs(person) = ¬education`
    DisNeg3,
    /// `fs(open_auction) = (¬bidder ∧ seller ∧ item) ∨ (bidder ∧ ¬seller ∧ ¬item)`,
    /// `fs(person) = ¬education`
    DisNeg4,
}

impl Fig11Predicate {
    /// All Table 4 variants with their paper names, in presentation order.
    pub fn table4_suite() -> Vec<(&'static str, Fig11Predicate)> {
        use Fig11Predicate::*;
        vec![
            ("DIS1", Dis1),
            ("DIS2", Dis2),
            ("DIS3", Dis3),
            ("NEG1", Neg1),
            ("NEG2", Neg2),
            ("NEG3", Neg3),
            ("DIS_NEG1", DisNeg1),
            ("DIS_NEG2", DisNeg2),
            ("DIS_NEG3", DisNeg3),
            ("DIS_NEG4", DisNeg4),
        ]
    }

    fn root_formula_mentions(self) -> (bool, bool, bool) {
        // (bidder, seller, item) appearing in fs(open_auction)?
        use Fig11Predicate::*;
        match self {
            Conjunctive | Neg1 => (false, false, false),
            Dis1 | Dis2 | DisNeg1 | DisNeg2 | DisNeg3 => (true, true, false),
            Dis3 | DisNeg4 => (true, true, true),
            Neg2 => (true, false, false),
            Neg3 => (true, true, false),
        }
    }

    fn negates_education(self) -> bool {
        use Fig11Predicate::*;
        matches!(self, Neg1 | Neg2 | Neg3 | DisNeg1 | DisNeg3 | DisNeg4)
    }

    fn splits_item_children(self) -> bool {
        matches!(self, Fig11Predicate::Dis2)
    }
}

/// Builds the Fig. 11 query with the structural predicates of `variant`
/// (Table 4).  Branches mentioned in `fs(open_auction)` become predicate
/// subtrees; every remaining backbone node is an output node, as in the
/// paper's Exp-2 setup.
pub fn fig11_gtpq(variant: Fig11Predicate, person_group: u32, item_group: u32) -> Gtpq {
    let (bidder_pred, seller_pred, item_pred) = variant.root_formula_mentions();
    let education_pred = variant.negates_education();
    let item_children_pred = variant.splits_item_children();

    let mut b = GtpqBuilder::new(AttrPredicate::label("open_auction"));
    let root = b.root_id();

    // Bidder branch: bidder -> person -> {education, address -> city}.
    let add_bidder =
        |b: &mut GtpqBuilder, predicate: bool| -> (QueryNodeId, QueryNodeId, QueryNodeId) {
            let add_child = |b: &mut GtpqBuilder, parent, edge, attr, pred: bool| {
                if pred {
                    b.predicate_child(parent, edge, attr)
                } else {
                    b.backbone_child(parent, edge, attr)
                }
            };
            let bidder = add_child(
                b,
                root,
                EdgeKind::Child,
                AttrPredicate::label("bidder"),
                predicate,
            );
            let person = add_child(
                b,
                bidder,
                EdgeKind::Descendant,
                person_label(person_group),
                predicate,
            );
            let education = b.predicate_child(
                person,
                EdgeKind::Descendant,
                AttrPredicate::label("education"),
            );
            // Education is always a predicate child; whether `fs(person)`
            // negates it or keeps it conjunctive is decided by `person_fs`
            // below.
            let education_node = education;
            let address = add_child(
                b,
                person,
                EdgeKind::Child,
                AttrPredicate::label("address"),
                predicate,
            );
            let _city = add_child(
                b,
                address,
                EdgeKind::Child,
                AttrPredicate::label("city"),
                predicate,
            );
            (bidder, person, education_node)
        };
    let (bidder, bidder_person, bidder_education) = add_bidder(&mut b, bidder_pred);

    // Item branch: item -> {location, mailbox -> mail}.
    let item = if item_pred {
        b.predicate_child(root, EdgeKind::Descendant, item_label(item_group))
    } else {
        b.backbone_child(root, EdgeKind::Descendant, item_label(item_group))
    };
    let location = if item_pred || item_children_pred {
        b.predicate_child(item, EdgeKind::Child, AttrPredicate::label("location"))
    } else {
        b.backbone_child(item, EdgeKind::Child, AttrPredicate::label("location"))
    };
    let mailbox = b.predicate_child(item, EdgeKind::Child, AttrPredicate::label("mailbox"));
    let _mail = b.predicate_child(mailbox, EdgeKind::Child, AttrPredicate::label("mail"));
    b.set_structural(mailbox, BoolExpr::True);

    // Seller branch: seller -> person -> profile.
    let seller = if seller_pred {
        b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("seller"))
    } else {
        b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("seller"))
    };
    let seller_person = if seller_pred {
        b.predicate_child(seller, EdgeKind::Child, person_label(person_group))
    } else {
        b.backbone_child(seller, EdgeKind::Child, person_label(person_group))
    };
    let profile = if seller_pred {
        b.predicate_child(
            seller_person,
            EdgeKind::Child,
            AttrPredicate::label("profile"),
        )
    } else {
        b.backbone_child(
            seller_person,
            EdgeKind::Child,
            AttrPredicate::label("profile"),
        )
    };
    let _ = profile;

    // Structural predicates.
    let vb = BoolExpr::Var(bidder.var());
    let vs = BoolExpr::Var(seller.var());
    let vi = BoolExpr::Var(item.var());
    use Fig11Predicate::*;
    let root_fs = match variant {
        Conjunctive | Neg1 => BoolExpr::True,
        Dis1 | Dis2 => BoolExpr::or2(vb.clone(), vs.clone()),
        Dis3 => BoolExpr::or([vb.clone(), vs.clone(), vi.clone()]),
        Neg2 => BoolExpr::not(vb.clone()),
        Neg3 => BoolExpr::and2(BoolExpr::not(vb.clone()), BoolExpr::not(vs.clone())),
        DisNeg1 => BoolExpr::or2(BoolExpr::not(vb.clone()), vs.clone()),
        DisNeg2 | DisNeg3 => BoolExpr::or2(
            BoolExpr::and2(BoolExpr::not(vb.clone()), vs.clone()),
            BoolExpr::and2(vb.clone(), BoolExpr::not(vs.clone())),
        ),
        DisNeg4 => BoolExpr::or2(
            BoolExpr::and([BoolExpr::not(vb.clone()), vs.clone(), vi.clone()]),
            BoolExpr::and([
                vb.clone(),
                BoolExpr::not(vs.clone()),
                BoolExpr::not(vi.clone()),
            ]),
        ),
    };
    // Only mention variables of children that are predicate nodes.
    b.set_structural(root, root_fs);

    // fs(person): negation of education where the variant requires it; for the
    // other GTPQ variants the education child is a conjunctive filter, and the
    // purely conjunctive (Table 3) variant leaves it unconstrained so the
    // query keeps a healthy number of matches.
    let person_fs = |education: QueryNodeId| {
        if education_pred {
            BoolExpr::not(BoolExpr::Var(education.var()))
        } else if variant == Conjunctive {
            BoolExpr::True
        } else {
            BoolExpr::Var(education.var())
        }
    };
    b.set_structural(bidder_person, person_fs(bidder_education));

    // fs(item) for DIS2: mailbox ∨ location; unconstrained for the conjunctive
    // variant, a conjunctive mailbox filter otherwise.
    if item_children_pred {
        b.set_structural(
            item,
            BoolExpr::or2(BoolExpr::Var(mailbox.var()), BoolExpr::Var(location.var())),
        );
    } else if variant == Conjunctive {
        b.set_structural(item, BoolExpr::True);
    } else {
        b.set_structural(item, BoolExpr::Var(mailbox.var()));
    }

    b.mark_all_backbone_output();
    b.build().expect("Fig. 11 query is well formed")
}

/// The Exp-1 (Table 3) variants: the conjunctive Fig. 11 query with the
/// output-node sets Q4–Q8.  `which` must be in `4..=8`.
pub fn fig11_output_variant(which: u32, person_group: u32, item_group: u32) -> Gtpq {
    assert!((4..=8).contains(&which), "Table 3 defines Q4..Q8");
    // Rebuild the conjunctive query but mark outputs selectively.  Node ids
    // follow the construction order in `fig11_gtpq`.
    let base = fig11_gtpq(Fig11Predicate::Conjunctive, person_group, item_group);
    let find = |label: &str| -> Vec<QueryNodeId> {
        base.node_ids()
            .filter(|&u| {
                base.node(u)
                    .attr
                    .comparisons
                    .iter()
                    .any(|c| c.value == gtpq_graph::AttrValue::str(label))
            })
            .collect()
    };
    let mut outputs: Vec<QueryNodeId> = match which {
        4 => vec![base.root()],
        5 => {
            let mut v = vec![base.root()];
            v.extend(find("bidder"));
            v.extend(find("seller"));
            v
        }
        6 => {
            let mut v = vec![base.root()];
            v.extend(find("bidder"));
            v.extend(find("seller"));
            v.extend(find("city"));
            v.extend(find("profile"));
            v
        }
        7 => {
            let mut v = vec![base.root()];
            v.extend(find(&format!("item{item_group}")));
            v.extend(find("location"));
            v
        }
        _ => base.node_ids().filter(|&u| base.is_backbone(u)).collect(),
    };
    outputs.retain(|&u| base.is_backbone(u));
    outputs.sort_unstable();
    outputs.dedup();

    // Rebuild with the same structure but the chosen outputs.
    rebuild_with_outputs(&base, &outputs)
}

/// Clones a query, replacing its output-node set.
fn rebuild_with_outputs(q: &Gtpq, outputs: &[QueryNodeId]) -> Gtpq {
    let mut b = GtpqBuilder::new(q.node(q.root()).attr.clone());
    // Node ids are preserved because children are added in id order.
    for u in q.node_ids().skip(1) {
        let node = q.node(u);
        let parent = node.parent.expect("non-root nodes have parents");
        let edge = node.incoming.expect("non-root nodes have incoming edges");
        let id = if q.is_backbone(u) {
            b.backbone_child(parent, edge, node.attr.clone())
        } else {
            b.predicate_child(parent, edge, node.attr.clone())
        };
        debug_assert_eq!(id, u);
    }
    for u in q.node_ids() {
        b.set_structural(u, q.fs(u).clone());
        if let Some(name) = &q.node(u).name {
            b.set_name(u, name);
        }
    }
    for &o in outputs {
        b.mark_output(o);
    }
    b.build().expect("rebuilt query preserves validity")
}

/// The three DBLP queries of Example 1: conjunction (papers by Alice *and*
/// Bob), disjunction (Alice *or* Bob) and negation (Alice but *not* Bob), all
/// restricted to proceedings published between 2000 and 2010.
pub fn dblp_queries() -> Vec<(&'static str, Gtpq)> {
    let build = |fs_builder: &dyn Fn(QueryNodeId, QueryNodeId) -> BoolExpr| -> Gtpq {
        let mut b = GtpqBuilder::new(AttrPredicate::label("inproceedings"));
        let root = b.root_id();
        let alice = b.predicate_child(
            root,
            EdgeKind::Child,
            AttrPredicate::label("author").and("value", CmpOp::Eq, "Alice".into()),
        );
        let bob = b.predicate_child(
            root,
            EdgeKind::Child,
            AttrPredicate::label("author").and("value", CmpOp::Eq, "Bob".into()),
        );
        let title = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("title"));
        let year = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("year"));
        let proceedings = b.backbone_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::label("proceedings"),
        );
        let conf_title =
            b.backbone_child(proceedings, EdgeKind::Child, AttrPredicate::label("title"));
        let conf_year = b.predicate_child(
            proceedings,
            EdgeKind::Child,
            AttrPredicate::label("year")
                .and("year", CmpOp::Ge, 2000.into())
                .and("year", CmpOp::Le, 2010.into()),
        );
        b.set_structural(root, fs_builder(alice, bob));
        b.set_structural(proceedings, BoolExpr::Var(conf_year.var()));
        b.mark_output(title);
        b.mark_output(year);
        b.mark_output(conf_title);
        b.build().expect("DBLP query is well formed")
    };
    vec![
        (
            "Q1",
            build(&|a, bb| BoolExpr::and2(BoolExpr::Var(a.var()), BoolExpr::Var(bb.var()))),
        ),
        (
            "Q2",
            build(&|a, bb| BoolExpr::or2(BoolExpr::Var(a.var()), BoolExpr::Var(bb.var()))),
        ),
        (
            "Q3",
            build(&|a, bb| {
                BoolExpr::and2(
                    BoolExpr::Var(a.var()),
                    BoolExpr::not(BoolExpr::Var(bb.var())),
                )
            }),
        ),
    ]
}

/// Configuration of the random query generator (§5.2).
#[derive(Clone, Copy, Debug)]
pub struct RandomQueryConfig {
    /// Number of query nodes.
    pub size: usize,
    /// Number of queries to generate.
    pub count: usize,
    /// Probability that an edge is AD rather than PC.
    pub descendant_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomQueryConfig {
    /// Queries of a given size with the default parameters.
    pub fn with_size(size: usize) -> Self {
        Self {
            size,
            count: 15,
            descendant_probability: 0.35,
            seed: 7,
        }
    }
}

/// Generates `config.count` random conjunctive queries of `config.size` nodes
/// by sampling tree patterns embedded in `g`, so every query has at least one
/// match.  Labels of the sampled data nodes become the attribute predicates;
/// all query nodes are backbone output nodes.
pub fn random_queries(g: &DataGraph, config: &RandomQueryConfig) -> Vec<Gtpq> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.count);
    let mut attempts = 0;
    while queries.len() < config.count && attempts < config.count * 200 {
        attempts += 1;
        if let Some(q) = sample_query(g, config, &mut rng) {
            queries.push(q);
        }
    }
    queries
}

fn sample_query(g: &DataGraph, config: &RandomQueryConfig, rng: &mut StdRng) -> Option<Gtpq> {
    // Pick a start node with enough reachable structure.
    let start = NodeId(rng.gen_range(0..g.node_count() as u32));
    if g.out_degree(start) == 0 {
        return None;
    }
    let label_of = |v: NodeId| -> Option<AttrPredicate> {
        g.attribute_value(v, gtpq_graph::LABEL_ATTR)
            .map(|l| AttrPredicate::eq(gtpq_graph::LABEL_ATTR, l.clone()))
    };
    let mut b = GtpqBuilder::new(label_of(start)?);
    // Pool of (query node, data node) pairs that can still be expanded.
    let mut pool: Vec<(QueryNodeId, NodeId)> = vec![(b.root_id(), start)];
    let mut added = 1;
    let mut guard = 0;
    while added < config.size && guard < config.size * 50 {
        guard += 1;
        let (qnode, dnode) = pool[rng.gen_range(0..pool.len())];
        let children = g.children(dnode);
        if children.is_empty() {
            continue;
        }
        let use_descendant = rng.gen_bool(config.descendant_probability);
        let (edge, target) = if use_descendant {
            // Walk two hops when possible to get a genuine descendant.
            let mid = children[rng.gen_range(0..children.len())];
            let grandchildren = g.children(mid);
            if grandchildren.is_empty() {
                (EdgeKind::Descendant, mid)
            } else {
                (
                    EdgeKind::Descendant,
                    grandchildren[rng.gen_range(0..grandchildren.len())],
                )
            }
        } else {
            (EdgeKind::Child, children[rng.gen_range(0..children.len())])
        };
        let Some(attr) = label_of(target) else {
            continue;
        };
        let child = b.backbone_child(qnode, edge, attr);
        pool.push((child, target));
        added += 1;
    }
    if added < config.size {
        return None;
    }
    b.mark_all_backbone_output();
    b.build().ok()
}

/// Generates one random GTPQ in the *canonical textual form* of the query
/// language (`gtpq_query::parse`): nodes are created in pre-order, each
/// node's backbone children come before its predicate children, structural
/// predicates mention their children in creation order, and orphan predicate
/// children (ones `fs` never mentions) come last.
///
/// For such queries `parse(q.to_string()) == q` holds exactly, which is what
/// the round-trip property test in `tests/query_text.rs` and the
/// `text_parse` benchmark exercise.  Fully deterministic in `seed`;
/// `max_nodes` bounds the query size (the result has at least one node and
/// at least one output node).
pub fn random_text_query(seed: u64, max_nodes: usize) -> Gtpq {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = TextQueryGen {
        rng: &mut rng,
        budget: max_nodes.max(1) - 1,
        names: 0,
        builder: GtpqBuilder::new(AttrPredicate::label("seed")), // replaced below
    };
    let root_attr = gen.random_attr();
    gen.builder = GtpqBuilder::new(root_attr);
    let root = gen.builder.root_id();
    gen.decorate(root, NodeKind::Backbone);
    gen.populate(root, NodeKind::Backbone, 0);
    let mut builder = gen.builder;
    // `decorate` marks outputs in pre-order; fall back to the root so the
    // query validates.
    match builder.clone().build() {
        Ok(q) => q,
        Err(_) => {
            builder.mark_output(root);
            builder.build().expect("root output makes the query valid")
        }
    }
}

struct TextQueryGen<'r> {
    rng: &'r mut StdRng,
    budget: usize,
    names: usize,
    builder: GtpqBuilder,
}

impl TextQueryGen<'_> {
    fn random_attr(&mut self) -> AttrPredicate {
        const LABELS: [&str; 8] = [
            "a",
            "b",
            "paper3",
            "open_auction",
            "person",
            "item_ref",
            "bidder",
            "auth7",
        ];
        const ATTRS: [&str; 3] = ["year", "value", "price"];
        const OPS: [CmpOp; 6] = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        match self.rng.gen_range(0..10u32) {
            0 => AttrPredicate::any(),
            1 => AttrPredicate::label("two words"), // non-identifier label
            2..=6 => AttrPredicate::label(LABELS[self.rng.gen_range(0..LABELS.len())]),
            _ => {
                let mut p = AttrPredicate::any();
                for _ in 0..self.rng.gen_range(1..=2u32) {
                    let attr = ATTRS[self.rng.gen_range(0..ATTRS.len())];
                    let op = OPS[self.rng.gen_range(0..OPS.len())];
                    let value = if self.rng.gen_bool(0.6) {
                        gtpq_graph::AttrValue::Int(self.rng.gen_range(-5..2020i64))
                    } else {
                        gtpq_graph::AttrValue::str(LABELS[self.rng.gen_range(0..LABELS.len())])
                    };
                    p = p.and(attr, op, value);
                }
                p
            }
        }
    }

    fn random_edge(&mut self) -> EdgeKind {
        if self.rng.gen_bool(0.5) {
            EdgeKind::Descendant
        } else {
            EdgeKind::Child
        }
    }

    /// Names and output-marks a freshly created node (names feed the
    /// formula back-references; output marks must happen in pre-order to
    /// match the parser).  Returns the name, if one was assigned.
    fn decorate(&mut self, u: QueryNodeId, kind: NodeKind) -> Option<String> {
        let mut name = None;
        if self.rng.gen_bool(0.15) {
            let n = format!("n{}", self.names);
            self.names += 1;
            self.builder.set_name(u, &n);
            name = Some(n);
        }
        if kind == NodeKind::Backbone && self.rng.gen_bool(0.4) {
            self.builder.mark_output(u);
        }
        name
    }

    /// Creates the children of `u` in canonical order: backbone subtrees
    /// first (depth-first), then the predicate children woven into a random
    /// structural predicate, then possibly one orphan predicate child.
    fn populate(&mut self, u: QueryNodeId, kind: NodeKind, depth: usize) {
        if depth >= 4 {
            return;
        }
        if kind == NodeKind::Backbone {
            let n_backbone = self.rng.gen_range(0..=2u32);
            for _ in 0..n_backbone {
                if self.budget == 0 {
                    break;
                }
                self.budget -= 1;
                let edge = self.random_edge();
                let attr = self.random_attr();
                let child = self.builder.backbone_child(u, edge, attr);
                self.decorate(child, NodeKind::Backbone);
                self.populate(child, NodeKind::Backbone, depth + 1);
            }
        }
        let n_pred = self.rng.gen_range(0..=2u32);
        let mut leaves: Vec<(QueryNodeId, Option<String>)> = Vec::new();
        for _ in 0..n_pred {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            let edge = self.random_edge();
            let attr = self.random_attr();
            let child = self.builder.predicate_child(u, edge, attr);
            let name = self.decorate(child, NodeKind::Predicate);
            self.populate(child, NodeKind::Predicate, depth + 1);
            leaves.push((child, name));
        }
        if !leaves.is_empty() {
            // Named children may be referenced a second time (the parser's
            // back-reference form); repeats must come after the first
            // occurrence, so they are appended to the leaf sequence.
            let mut vars: Vec<QueryNodeId> = leaves.iter().map(|(c, _)| *c).collect();
            if let Some((c, Some(_))) = leaves.iter().find(|(_, n)| n.is_some()) {
                if self.rng.gen_bool(0.2) {
                    vars.push(*c);
                }
            }
            let fs = self.random_formula(&vars);
            self.builder.set_structural(u, fs);
        }
        // Occasionally add a predicate child the formula never mentions.
        if self.budget > 0 && self.rng.gen_bool(0.1) {
            self.budget -= 1;
            let edge = self.random_edge();
            let attr = self.random_attr();
            let child = self.builder.predicate_child(u, edge, attr);
            self.decorate(child, NodeKind::Predicate);
            self.populate(child, NodeKind::Predicate, depth + 1);
        }
    }

    /// A random formula whose leaves are exactly `vars`, in order (split
    /// recursively, negate leaves occasionally).  Built through the folding
    /// `BoolExpr` constructors so the AST is in the same flattened form the
    /// parser produces.
    fn random_formula(&mut self, vars: &[QueryNodeId]) -> BoolExpr {
        match vars {
            [] => BoolExpr::True,
            [v] => {
                let leaf = BoolExpr::Var(v.var());
                if self.rng.gen_bool(0.25) {
                    BoolExpr::not(leaf)
                } else {
                    leaf
                }
            }
            _ => {
                let split = self.rng.gen_range(1..vars.len());
                let left = self.random_formula(&vars[..split]);
                let right = self.random_formula(&vars[split..]);
                if self.rng.gen_bool(0.5) {
                    BoolExpr::and2(left, right)
                } else {
                    BoolExpr::or2(left, right)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use gtpq_core::GteaEngine;
    use gtpq_query::naive;

    use crate::arxiv::{generate_arxiv, ArxivConfig};
    use crate::dblp::generate_dblp;
    use crate::xmark::{generate_xmark, XmarkConfig};

    use super::*;

    #[test]
    fn random_text_queries_round_trip_through_the_parser() {
        for seed in 0..64 {
            let q = random_text_query(seed, 12);
            assert!(q.size() <= 12);
            assert!(!q.output_nodes().is_empty());
            let text = q.to_string();
            let reparsed: Gtpq = text
                .parse()
                .unwrap_or_else(|e| panic!("seed {seed}: `{text}` failed to re-parse: {e}"));
            assert_eq!(reparsed, q, "seed {seed}: `{text}`");
        }
    }

    #[test]
    fn xmark_queries_have_expected_sizes_and_are_conjunctive() {
        let q1 = xmark_q1(0);
        let q2 = xmark_q2(0, 1);
        let q3 = xmark_q3(0, 1, 2);
        assert_eq!(q1.size(), 8);
        assert_eq!(q2.size(), 11);
        assert_eq!(q3.size(), 14);
        for q in [&q1, &q2, &q3] {
            assert!(q.is_conjunctive());
            assert_eq!(q.output_nodes().len(), q.size());
        }
    }

    #[test]
    fn xmark_q1_has_matches_on_generated_data() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.2));
        let engine = GteaEngine::new(&g);
        let mut total = 0usize;
        for group in 0..10 {
            total += engine.evaluate(&xmark_q1(group)).len();
        }
        assert!(total > 0, "Q1 should match for at least one person group");
    }

    #[test]
    fn fig11_variants_build_and_classify_correctly() {
        use Fig11Predicate::*;
        let conj = fig11_gtpq(Conjunctive, 0, 0);
        assert!(conj.is_union_conjunctive());
        let dis = fig11_gtpq(Dis1, 0, 0);
        assert!(dis.is_union_conjunctive());
        assert!(!dis.is_conjunctive());
        let neg = fig11_gtpq(Neg1, 0, 0);
        assert!(!neg.is_union_conjunctive());
        for (_, variant) in Fig11Predicate::table4_suite() {
            let q = fig11_gtpq(variant, 1, 1);
            assert!(q.size() >= 10, "Fig. 11 queries are non-trivial");
            assert!(!q.output_nodes().is_empty());
        }
    }

    #[test]
    fn fig11_gtpqs_agree_with_the_naive_oracle_on_a_small_graph() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.05));
        let engine = GteaEngine::new(&g);
        for (name, variant) in Fig11Predicate::table4_suite() {
            let q = fig11_gtpq(variant, 0, 0);
            let fast = engine.evaluate(&q);
            let slow = naive::evaluate(&q, &g);
            assert!(fast.same_answer(&slow), "{name} disagrees with the oracle");
        }
    }

    #[test]
    fn table3_output_variants() {
        let q4 = fig11_output_variant(4, 0, 0);
        assert_eq!(q4.output_nodes().len(), 1);
        let q5 = fig11_output_variant(5, 0, 0);
        assert_eq!(q5.output_nodes().len(), 3);
        let q8 = fig11_output_variant(8, 0, 0);
        assert!(q8.output_nodes().len() > q5.output_nodes().len());
        // Output sets grow monotonically from Q4 to Q6.
        let q6 = fig11_output_variant(6, 0, 0);
        assert!(q6.output_nodes().len() > q5.output_nodes().len());
    }

    #[test]
    #[should_panic(expected = "Table 3")]
    fn table3_variant_out_of_range_panics() {
        let _ = fig11_output_variant(9, 0, 0);
    }

    #[test]
    fn dblp_queries_express_example1() {
        let queries = dblp_queries();
        assert_eq!(queries.len(), 3);
        let g = generate_dblp(200, 11);
        let engine = GteaEngine::new(&g);
        let sizes: Vec<usize> = queries
            .iter()
            .map(|(_, q)| engine.evaluate(q).len())
            .collect();
        // Disjunction returns at least as much as conjunction; conjunction and
        // negation partition the Alice-papers.
        assert!(sizes[1] >= sizes[0]);
        assert!(sizes[1] >= sizes[2]);
        for (name, q) in &queries {
            let fast = engine.evaluate(q);
            let slow = naive::evaluate(q, &g);
            assert!(fast.same_answer(&slow), "{name} disagrees with the oracle");
        }
    }

    #[test]
    fn random_queries_are_valid_and_have_matches() {
        let g = generate_arxiv(&ArxivConfig::small());
        let config = RandomQueryConfig {
            count: 5,
            ..RandomQueryConfig::with_size(5)
        };
        let queries = random_queries(&g, &config);
        assert_eq!(queries.len(), 5);
        let engine = GteaEngine::new(&g);
        for q in &queries {
            assert_eq!(q.size(), 5);
            assert!(q.is_conjunctive());
            assert!(
                !engine.evaluate(q).is_empty(),
                "sampled queries must have at least one match"
            );
        }
    }

    #[test]
    fn random_query_generation_is_deterministic() {
        let g = generate_arxiv(&ArxivConfig::small());
        let a = random_queries(&g, &RandomQueryConfig::with_size(7));
        let b = random_queries(&g, &RandomQueryConfig::with_size(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.describe(), y.describe());
        }
    }
}
