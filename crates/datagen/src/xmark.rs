//! XMark-like auction graph generator.
//!
//! Mirrors the part of the XMark schema exercised by the paper's queries
//! (Figs. 7 and 11): `open_auction` elements with bidders, a current price, a
//! seller and an item reference; `person` elements with addresses and
//! profiles (optionally an education element); `item` elements with a
//! location and a mailbox of mails.  Internal parent-child edges form a
//! shallow tree (average depth ≈ 5, as the paper notes for XMark) and IDREF
//! references add cross edges, so the result is a graph, not a tree.
//!
//! `person` and `item` nodes are partitioned into ten label groups
//! (`person0..person9`, `item0..item9`), reproducing the paper's labelling
//! scheme; all other nodes are labelled with their tag.

use gtpq_graph::{AttrValue, DataGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the XMark-like generator.
#[derive(Clone, Copy, Debug)]
pub struct XmarkConfig {
    /// Scale factor; 1.0 produces roughly 26k nodes (the paper's scale-1
    /// dataset has 1.29M nodes — we scale down ~50× so the full sweep runs in
    /// seconds, keeping the relative sizes of the sweep identical).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of label groups for `person`/`item` nodes.
    pub label_groups: u32,
}

impl XmarkConfig {
    /// Config for a given scale factor with the default seed and ten groups.
    pub fn with_scale(scale: f64) -> Self {
        Self {
            scale,
            seed: 42,
            label_groups: 10,
        }
    }

    fn persons(&self) -> usize {
        (800.0 * self.scale).round().max(4.0) as usize
    }

    fn items(&self) -> usize {
        (1000.0 * self.scale).round().max(4.0) as usize
    }

    fn open_auctions(&self) -> usize {
        (1200.0 * self.scale).round().max(4.0) as usize
    }
}

/// Generates the XMark-like data graph.
pub fn generate_xmark(config: &XmarkConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::with_capacity(
        config.open_auctions() * 12 + config.persons() * 8 + config.items() * 6,
        config.open_auctions() * 14 + config.persons() * 8 + config.items() * 7,
    );

    let site = b.add_node_with_label("site");
    let people = b.add_node_with_label("people");
    let items_region = b.add_node_with_label("regions");
    let auctions = b.add_node_with_label("open_auctions");
    b.add_edge(site, people);
    b.add_edge(site, items_region);
    b.add_edge(site, auctions);

    // Persons.
    let mut person_nodes: Vec<NodeId> = Vec::with_capacity(config.persons());
    for i in 0..config.persons() {
        let group = rng.gen_range(0..config.label_groups);
        let person = b.add_node_with_attrs([
            ("label", AttrValue::Str(format!("person{group}"))),
            ("id", AttrValue::Int(i as i64)),
        ]);
        b.add_edge(people, person);
        person_nodes.push(person);
        let name = b.add_node_with_label("name");
        b.add_edge(person, name);
        let email = b.add_node_with_label("emailaddress");
        b.add_edge(person, email);
        let address = b.add_node_with_label("address");
        b.add_edge(person, address);
        let city = b.add_node_with_label("city");
        b.add_edge(address, city);
        let country = b.add_node_with_label("country");
        b.add_edge(address, country);
        let profile = b.add_node_with_label("profile");
        b.add_edge(person, profile);
        let interest = b.add_node_with_label("interest");
        b.add_edge(profile, interest);
        // Education is optional: it drives the NEG* queries of Table 4.
        if rng.gen_bool(0.4) {
            let education = b.add_node_with_label("education");
            b.add_edge(profile, education);
        }
    }

    // Items.
    let mut item_nodes: Vec<NodeId> = Vec::with_capacity(config.items());
    for i in 0..config.items() {
        let group = rng.gen_range(0..config.label_groups);
        let item = b.add_node_with_attrs([
            ("label", AttrValue::Str(format!("item{group}"))),
            ("id", AttrValue::Int(i as i64)),
        ]);
        b.add_edge(items_region, item);
        item_nodes.push(item);
        let location = b.add_node_with_label("location");
        b.add_edge(item, location);
        let name = b.add_node_with_label("name");
        b.add_edge(item, name);
        let quantity = b.add_node_with_label("quantity");
        b.add_edge(item, quantity);
        // Mailbox with zero to two mails: drives the DIS2 query.
        if rng.gen_bool(0.5) {
            let mailbox = b.add_node_with_label("mailbox");
            b.add_edge(item, mailbox);
            for _ in 0..rng.gen_range(0..=2u32) {
                let mail = b.add_node_with_label("mail");
                b.add_edge(mailbox, mail);
                let date = b.add_node_with_label("date");
                b.add_edge(mail, date);
            }
        }
    }

    // Open auctions.
    for i in 0..config.open_auctions() {
        let auction = b.add_node_with_attrs([
            ("label", AttrValue::str("open_auction")),
            ("id", AttrValue::Int(i as i64)),
        ]);
        b.add_edge(auctions, auction);
        // Bidders (possibly none: drives the NEG2/NEG3 queries).
        for _ in 0..rng.gen_range(0..=3u32) {
            let bidder = b.add_node_with_label("bidder");
            b.add_edge(auction, bidder);
            let date = b.add_node_with_label("date");
            b.add_edge(bidder, date);
            let increase = b.add_node_with_label("increase");
            b.add_edge(bidder, increase);
            let person_ref = b.add_node_with_label("person_ref");
            b.add_edge(bidder, person_ref);
            let person = person_nodes[rng.gen_range(0..person_nodes.len())];
            b.add_edge(person_ref, person); // IDREF cross edge
        }
        // Current price.
        let current = b.add_node_with_label("current");
        b.add_edge(auction, current);
        // Seller (present with high probability).
        if rng.gen_bool(0.9) {
            let seller = b.add_node_with_label("seller");
            b.add_edge(auction, seller);
            let person = person_nodes[rng.gen_range(0..person_nodes.len())];
            b.add_edge(seller, person); // IDREF cross edge
        }
        // Item reference.
        if rng.gen_bool(0.95) {
            let item_ref = b.add_node_with_label("item_ref");
            b.add_edge(auction, item_ref);
            let item = item_nodes[rng.gen_range(0..item_nodes.len())];
            b.add_edge(item_ref, item); // IDREF cross edge
        }
        let quantity = b.add_node_with_label("quantity");
        b.add_edge(auction, quantity);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphStats;

    use super::*;

    #[test]
    fn scale_controls_size() {
        let small = generate_xmark(&XmarkConfig::with_scale(0.1));
        let large = generate_xmark(&XmarkConfig::with_scale(0.5));
        assert!(large.node_count() > 3 * small.node_count());
        assert!(small.node_count() > 500);
        assert!(small.edge_count() >= small.node_count() - 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_xmark(&XmarkConfig::with_scale(0.1));
        let b = generate_xmark(&XmarkConfig::with_scale(0.1));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = generate_xmark(&XmarkConfig {
            seed: 7,
            ..XmarkConfig::with_scale(0.1)
        });
        // A different seed produces a graph of comparable but not identical size.
        let ratio = c.node_count() as f64 / a.node_count() as f64;
        assert!((0.8..1.2).contains(&ratio));
    }

    #[test]
    fn graph_is_shallow_and_cross_linked() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.2));
        let stats = GraphStats::compute(&g);
        assert!(stats.max_depth <= 8, "XMark-like graphs are shallow");
        // Cross edges give person nodes in-degree > 1.
        let has_multi_parent = g.nodes().any(|v| g.in_degree(v) > 1);
        assert!(has_multi_parent, "IDREF edges must create shared nodes");
        assert!(stats.distinct_labels > 20);
    }

    #[test]
    fn expected_element_types_are_present() {
        let g = generate_xmark(&XmarkConfig::with_scale(0.1));
        for label in [
            "open_auction",
            "bidder",
            "person_ref",
            "current",
            "seller",
            "item_ref",
            "location",
            "city",
            "profile",
            "education",
            "mailbox",
        ] {
            assert!(
                !g.nodes_with_attr("label", &AttrValue::str(label))
                    .is_empty(),
                "missing element type {label}"
            );
        }
        // Grouped labels exist.
        assert!(!g
            .nodes_with_attr("label", &AttrValue::str("person0"))
            .is_empty());
        assert!(!g
            .nodes_with_attr("label", &AttrValue::str("item0"))
            .is_empty());
    }
}
