//! arXiv/HEP-Th-like citation and authorship graph generator.
//!
//! The paper's real-life graph has 9562 nodes, 28120 edges and 1132 distinct
//! labels; papers are labelled by area/journal and authors by e-mail domain,
//! and edges represent citation or authorship relationships.  The generator
//! reproduces those proportions: papers cite earlier papers with a
//! preferential-attachment flavour (making the graph denser and deeper than
//! the XMark-like trees, which is what degrades SSPI/TwigStackD in §5.2) and
//! every paper links to a few author nodes.

use gtpq_graph::{AttrValue, DataGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the arXiv-like generator.
#[derive(Clone, Copy, Debug)]
pub struct ArxivConfig {
    /// Number of paper nodes.
    pub papers: usize,
    /// Number of author nodes.
    pub authors: usize,
    /// Average number of citations per paper.
    pub citations_per_paper: f64,
    /// Average number of authors per paper.
    pub authors_per_paper: f64,
    /// Number of distinct paper labels (area × journal combinations).
    pub paper_labels: u32,
    /// Number of distinct author labels (e-mail domains).
    pub author_labels: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArxivConfig {
    fn default() -> Self {
        Self {
            papers: 7000,
            authors: 2500,
            citations_per_paper: 2.2,
            authors_per_paper: 1.8,
            paper_labels: 900,
            author_labels: 230,
            seed: 42,
        }
    }
}

impl ArxivConfig {
    /// A smaller configuration used by fast unit tests.
    pub fn small() -> Self {
        Self {
            papers: 600,
            authors: 250,
            paper_labels: 120,
            author_labels: 40,
            ..Self::default()
        }
    }

    /// A scale tier: node and edge counts grow linearly with `scale`
    /// (`tier(10)` ≈ 95k nodes, `tier(100)` ≈ 950k nodes), while label
    /// alphabets grow with its square root, mirroring how real corpora add
    /// papers much faster than venues.  The big tiers feed the cold-start
    /// benchmark through the streamed snapshot writer
    /// ([`crate::stream::write_arxiv_snapshot`]), which never materializes
    /// the graph in memory.
    pub fn tier(scale: u32) -> Self {
        let base = Self::default();
        let scale = scale.max(1);
        let label_scale = scale.isqrt().max(1);
        Self {
            papers: base.papers * scale as usize,
            authors: base.authors * scale as usize,
            paper_labels: base.paper_labels * label_scale,
            author_labels: base.author_labels * label_scale,
            ..base
        }
    }
}

/// Receiver of the generator's event stream.  Nodes are emitted first
/// (papers in publication order, then authors), then every edge; node ids
/// are dense in emission order, so paper `i` is node `i` and author `j` is
/// node `papers + j`.
///
/// Both the materializing [`generate_arxiv`] and the streamed
/// [`crate::stream::write_arxiv_snapshot`] drive the *same* emitter (and
/// therefore the same RNG sequence), which is what makes the streamed
/// snapshot bit-identical to saving the built graph.
pub(crate) trait ArxivSink {
    fn paper(&mut self, label: u32, year: i64);
    fn author(&mut self, label: u32);
    fn edge(&mut self, from: u32, to: u32);
}

/// Runs the generator, pushing every node and edge into `sink`.
pub(crate) fn emit_arxiv<S: ArxivSink>(config: &ArxivConfig, sink: &mut S) {
    let mut rng = StdRng::seed_from_u64(config.seed);

    for i in 0..config.papers {
        let label = rng.gen_range(0..config.paper_labels);
        let year = 1992 + (i * 12 / config.papers.max(1)) as i64;
        sink.paper(label, year);
    }
    for _ in 0..config.authors {
        sink.author(rng.gen_range(0..config.author_labels));
    }

    // Citations: papers cite earlier papers, preferring recent ones, which
    // yields long chains plus dense local neighbourhoods.
    for i in 1..config.papers {
        let n_citations = sample_count(&mut rng, config.citations_per_paper);
        for _ in 0..n_citations {
            // Prefer recent papers: quadratic bias towards the current index.
            let r: f64 = rng.gen::<f64>();
            let target_idx = ((1.0 - r * r) * i as f64) as usize;
            sink.edge(i as u32, target_idx.min(i - 1) as u32);
        }
    }

    // Authorship: paper -> author edges.
    if config.authors > 0 {
        for i in 0..config.papers {
            let n_authors = sample_count(&mut rng, config.authors_per_paper).max(1);
            for _ in 0..n_authors {
                let author = rng.gen_range(0..config.authors);
                sink.edge(i as u32, (config.papers + author) as u32);
            }
        }
    }
}

/// Generates the arXiv-like data graph.  Paper nodes come first (in
/// publication order), author nodes afterwards.
pub fn generate_arxiv(config: &ArxivConfig) -> DataGraph {
    struct BuilderSink(GraphBuilder);
    impl ArxivSink for BuilderSink {
        fn paper(&mut self, label: u32, year: i64) {
            self.0.add_node_with_attrs([
                ("label", AttrValue::Str(format!("paper{label}"))),
                ("year", AttrValue::Int(year)),
            ]);
        }
        fn author(&mut self, label: u32) {
            self.0
                .add_node_with_attrs([("label", AttrValue::Str(format!("auth{label}")))]);
        }
        fn edge(&mut self, from: u32, to: u32) {
            self.0.add_edge(NodeId(from), NodeId(to));
        }
    }

    let mut sink = BuilderSink(GraphBuilder::with_capacity(
        config.papers + config.authors,
        (config.papers as f64 * (config.citations_per_paper + config.authors_per_paper)) as usize,
    ));
    emit_arxiv(config, &mut sink);
    sink.0.build()
}

fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    // Simple geometric-ish sampler around the mean.
    let base = mean.floor() as usize;
    let extra = rng.gen_bool(mean - base as f64) as usize;
    let jitter = if rng.gen_bool(0.3) { 1 } else { 0 };
    (base + extra + jitter).saturating_sub(if rng.gen_bool(0.2) { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphStats;

    use super::*;

    #[test]
    fn default_config_matches_the_papers_proportions() {
        let g = generate_arxiv(&ArxivConfig::default());
        let stats = GraphStats::compute(&g);
        // ~9.5k nodes, ~28k edges, ~1.1k labels in the paper; we target the
        // same order of magnitude.
        assert!(
            (8000..=11000).contains(&stats.nodes),
            "nodes = {}",
            stats.nodes
        );
        assert!(stats.edges > 2 * stats.nodes, "edges = {}", stats.edges);
        assert!(
            stats.distinct_labels > 500,
            "labels = {}",
            stats.distinct_labels
        );
    }

    #[test]
    fn deeper_than_xmark() {
        let g = generate_arxiv(&ArxivConfig::small());
        let stats = GraphStats::compute(&g);
        assert!(stats.max_depth >= 5, "citation chains create depth");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = generate_arxiv(&ArxivConfig::small());
        let b = generate_arxiv(&ArxivConfig::small());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = generate_arxiv(&ArxivConfig {
            seed: 99,
            ..ArxivConfig::small()
        });
        assert_ne!(a.edge_count(), c.edge_count());
    }

    #[test]
    fn papers_only_cite_older_papers() {
        let g = generate_arxiv(&ArxivConfig::small());
        let cfg = ArxivConfig::small();
        for u in g.nodes().take(cfg.papers) {
            for &v in g.children(u) {
                if v.index() < cfg.papers {
                    assert!(
                        v.index() < u.index(),
                        "citation {u} -> {v} goes forward in time"
                    );
                }
            }
        }
    }
}
