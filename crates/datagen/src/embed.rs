//! Embedded-text corpus generator: documents carrying deterministic
//! pseudo-embeddings with planted near-duplicate clusters.
//!
//! The similarity access path (`gtpq-sim`) needs a workload whose ground
//! truth is checkable *by construction*, not just by brute force: every
//! document belongs to exactly one cluster, cluster centers are pairwise at
//! least [`CENTER_SEPARATION`] apart in L2, and each member sits within
//! `noise · √dim` of its center.  A radius query at a cluster center with
//! any radius between those two bounds therefore retrieves *exactly* the
//! cluster's members — perfect recall and precision are provable from the
//! generator parameters alone ([`EmbedConfig::recall_radius`] picks such a
//! radius).
//!
//! The graph is bipartite on top of the embeddings so tree-pattern queries
//! have structure to bite on: `topics` topic nodes come first, then
//! `clusters · cluster_size` document nodes, each with an edge to its topic
//! (`doc → topic`).  Documents carry `label = doc`, an integer `cluster`
//! attribute (the planted ground truth) and the `emb` vector; topics carry
//! `label = topic` and an integer `topic` attribute.

use gtpq_graph::{AttrValue, DataGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Guaranteed minimum L2 distance between any two distinct cluster centers.
///
/// Center `c` is a random vector with every coordinate in `[-1, 1)` except
/// coordinate `c mod dim`, which is overridden to `8 · (⌊c / dim⌋ + 1)`.
/// Two centers on the same axis differ by at least 8 there; two centers on
/// different axes differ by at least `8 − 1 = 7` on either spike axis.
pub const CENTER_SEPARATION: f32 = 7.0;

/// Configuration of the embedded-text generator.
#[derive(Clone, Copy, Debug)]
pub struct EmbedConfig {
    /// Number of planted near-duplicate clusters (every document belongs to
    /// exactly one).
    pub clusters: usize,
    /// Documents per cluster.
    pub cluster_size: usize,
    /// Number of topic nodes the documents link to.
    pub topics: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Per-coordinate noise bound: each member coordinate is its center
    /// coordinate plus a uniform offset in `[-noise, noise]`.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            clusters: 64,
            cluster_size: 16,
            topics: 8,
            dim: 32,
            noise: 0.02,
            seed: 7,
        }
    }
}

impl EmbedConfig {
    /// A smaller configuration used by fast unit tests.
    pub fn small() -> Self {
        Self {
            clusters: 12,
            cluster_size: 5,
            topics: 3,
            dim: 8,
            ..Self::default()
        }
    }

    /// Total number of document nodes.
    pub fn docs(&self) -> usize {
        self.clusters * self.cluster_size
    }

    /// Upper bound on the L2 distance between a member and its cluster
    /// center: per-coordinate noise is at most `noise`, so the distance is
    /// at most `noise · √dim`.
    pub fn member_radius(&self) -> f32 {
        self.noise * (self.dim as f32).sqrt()
    }

    /// A radius with *provably* perfect recall and precision for a query at
    /// a cluster center: strictly larger than [`member_radius`]
    /// (every member retrieved) and strictly smaller than
    /// [`CENTER_SEPARATION`] minus [`member_radius`] (no foreign member can
    /// come close).  Generators whose parameters violate that window (huge
    /// `noise`) panic rather than silently losing the guarantee.
    ///
    /// [`member_radius`]: Self::member_radius
    pub fn recall_radius(&self) -> f32 {
        let r = self.member_radius() * 2.0 + 0.125;
        assert!(
            r < CENTER_SEPARATION - self.member_radius(),
            "noise {} too large for planted-cluster separation",
            self.noise
        );
        r
    }

    /// The deterministic cluster centers (one per cluster, recomputed from
    /// the seed) — the natural query vectors for the workload.
    pub fn centers(&self) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.clusters)
            .map(|c| {
                let v = center(self, &mut rng, c);
                // Keep the RNG stream aligned with `generate_embed`, which
                // draws one noise seed per cluster after the center.
                let _: u64 = rng.gen();
                v
            })
            .collect()
    }
}

/// One cluster center: random base coordinates in `[-1, 1)` with the spike
/// coordinate overridden (see [`CENTER_SEPARATION`]).
fn center(config: &EmbedConfig, rng: &mut StdRng, c: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..config.dim)
        .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) as f32)
        .collect();
    v[c % config.dim] = 8.0 * ((c / config.dim) as f32 + 1.0);
    v
}

/// Generates the embedded-text data graph: `topics` topic nodes first, then
/// the documents in cluster order (cluster `c` owns documents
/// `topics + c·cluster_size .. topics + (c+1)·cluster_size`).
pub fn generate_embed(config: &EmbedConfig) -> DataGraph {
    assert!(config.dim > 0, "embeddings need at least one dimension");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::with_capacity(config.topics + config.docs(), config.docs());
    for t in 0..config.topics {
        b.add_node_with_attrs([
            ("label", AttrValue::str("topic")),
            ("topic", AttrValue::Int(t as i64)),
        ]);
    }
    for c in 0..config.clusters {
        // Must match `EmbedConfig::centers`: one center draw per cluster
        // from the same RNG stream, member noise drawn afterwards.
        let center = center(config, &mut rng, c);
        let noise_rng_seed = rng.gen::<u64>();
        let mut noise_rng = StdRng::seed_from_u64(noise_rng_seed);
        for m in 0..config.cluster_size {
            let emb: Vec<f32> = center
                .iter()
                .map(|&x| x + ((noise_rng.gen::<f64>() * 2.0 - 1.0) as f32) * config.noise)
                .collect();
            let doc = b.add_node_with_attrs([
                ("label", AttrValue::str("doc")),
                ("cluster", AttrValue::Int(c as i64)),
                ("emb", AttrValue::Vec(emb)),
            ]);
            if config.topics > 0 {
                let topic = (c * config.cluster_size + m) % config.topics;
                b.add_edge(doc, NodeId(topic as u32));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = EmbedConfig::small();
        let a = generate_embed(&cfg);
        let b = generate_embed(&cfg);
        assert_eq!(a, b);
        let c = generate_embed(&EmbedConfig { seed: 99, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn planted_clusters_are_recoverable_by_construction() {
        let cfg = EmbedConfig::small();
        let g = generate_embed(&cfg);
        let centers = cfg.centers();
        let radius = cfg.recall_radius();
        for (c, center) in centers.iter().enumerate() {
            // Brute-force radius query at the center: exactly the cluster.
            let hits: Vec<u32> = g
                .nodes()
                .filter(|&v| {
                    g.attribute_value(v, "emb")
                        .and_then(AttrValue::as_vec)
                        .is_some_and(|emb| l2(emb, center) < radius)
                })
                .map(|v| v.0)
                .collect();
            let first = (cfg.topics + c * cfg.cluster_size) as u32;
            let expected: Vec<u32> = (first..first + cfg.cluster_size as u32).collect();
            assert_eq!(hits, expected, "cluster {c} must be exactly recovered");
            // And the ground-truth attribute agrees.
            for &v in &hits {
                assert_eq!(
                    g.attribute_value(NodeId(v), "cluster"),
                    Some(&AttrValue::Int(c as i64))
                );
            }
        }
    }

    #[test]
    fn centers_are_separated_and_members_are_close() {
        let cfg = EmbedConfig::small();
        let centers = cfg.centers();
        for i in 0..centers.len() {
            for j in i + 1..centers.len() {
                assert!(
                    l2(&centers[i], &centers[j]) >= CENTER_SEPARATION,
                    "centers {i} and {j} too close"
                );
            }
        }
        let g = generate_embed(&cfg);
        for (c, center) in centers.iter().enumerate() {
            for m in 0..cfg.cluster_size {
                let v = NodeId((cfg.topics + c * cfg.cluster_size + m) as u32);
                let emb = g.attribute_value(v, "emb").unwrap().as_vec().unwrap();
                assert!(l2(emb, center) <= cfg.member_radius() + 1e-5);
            }
        }
    }

    #[test]
    fn documents_link_to_topics() {
        let cfg = EmbedConfig::small();
        let g = generate_embed(&cfg);
        assert_eq!(g.node_count(), cfg.topics + cfg.docs());
        for v in g.nodes().skip(cfg.topics) {
            let children = g.children(v);
            assert_eq!(children.len(), 1, "every doc links to one topic");
            assert!(children[0].index() < cfg.topics);
        }
    }
}
