//! A small DBLP-like bibliography graph for the motivating example (Example 1).
//!
//! `inproceedings` records have `author`, `title` and `year` children and a
//! `crossref` child whose IDREF edge points to the `proceedings` record the
//! paper appeared in; `proceedings` records have `title` and `year` children.
//! The fixed author pool contains "Alice" and "Bob" so the three queries of
//! Example 1 (conjunction, disjunction, negation over co-authorship) have
//! non-trivial answers.

use gtpq_graph::{AttrValue, DataGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a DBLP-like graph with `papers` inproceedings records spread over
/// `papers / 8 + 1` proceedings volumes.
pub fn generate_dblp(papers: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let authors = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank"];
    let mut b = GraphBuilder::new();
    let dblp = b.add_node_with_label("dblp");

    let volumes: Vec<_> = (0..papers / 8 + 1)
        .map(|i| {
            let proceedings = b.add_node_with_label("proceedings");
            b.add_edge(dblp, proceedings);
            let title = b.add_node_with_attrs([
                ("label", AttrValue::str("title")),
                ("value", AttrValue::Str(format!("Conf{i}"))),
            ]);
            b.add_edge(proceedings, title);
            let year = b.add_node_with_attrs([
                ("label", AttrValue::str("year")),
                ("year", AttrValue::Int(1995 + (i % 20) as i64)),
            ]);
            b.add_edge(proceedings, year);
            proceedings
        })
        .collect();

    for i in 0..papers {
        let paper = b.add_node_with_label("inproceedings");
        b.add_edge(dblp, paper);
        let title = b.add_node_with_attrs([
            ("label", AttrValue::str("title")),
            ("value", AttrValue::Str(format!("Paper{i}"))),
        ]);
        b.add_edge(paper, title);
        let year = b.add_node_with_attrs([
            ("label", AttrValue::str("year")),
            ("year", AttrValue::Int(1995 + rng.gen_range(0..20i64))),
        ]);
        b.add_edge(paper, year);
        // One to three authors.
        let n_authors = rng.gen_range(1..=3usize);
        let mut chosen: Vec<&str> = Vec::new();
        while chosen.len() < n_authors {
            let a = authors[rng.gen_range(0..authors.len())];
            if !chosen.contains(&a) {
                chosen.push(a);
            }
        }
        for name in chosen {
            let author = b.add_node_with_attrs([
                ("label", AttrValue::str("author")),
                ("value", AttrValue::str(name)),
            ]);
            b.add_edge(paper, author);
        }
        // crossref with an IDREF edge to the proceedings volume.
        let crossref = b.add_node_with_label("crossref");
        b.add_edge(paper, crossref);
        let volume = volumes[rng.gen_range(0..volumes.len())];
        b.add_edge(crossref, volume);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_the_expected_structure() {
        let g = generate_dblp(100, 1);
        assert!(!g
            .nodes_with_attr("label", &AttrValue::str("inproceedings"))
            .is_empty());
        assert!(!g
            .nodes_with_attr("label", &AttrValue::str("proceedings"))
            .is_empty());
        assert!(!g
            .nodes_with_attr("value", &AttrValue::str("Alice"))
            .is_empty());
        assert!(!g
            .nodes_with_attr("value", &AttrValue::str("Bob"))
            .is_empty());
        // Proceedings are shared: some node has in-degree > 1 (dblp root + crossrefs).
        assert!(g.nodes().any(|v| g.in_degree(v) > 1));
    }

    #[test]
    fn deterministic() {
        let a = generate_dblp(50, 3);
        let b = generate_dblp(50, 3);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
