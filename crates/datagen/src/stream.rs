//! Streamed `.gtpq` snapshot writer for the big generated tiers.
//!
//! [`write_arxiv_snapshot`] produces exactly the file that
//! `GraphSnapshot::save` would produce for `generate_arxiv(config)` —
//! byte for byte — without ever materializing the graph: no
//! [`DataGraph`](gtpq_graph::DataGraph), no `GraphBuilder`, no per-node
//! attribute tuples with heap-allocated strings, no hash-map inverted
//! index.  Peak state is a handful of flat primitive columns (one `u32`
//! per node, one `i64` per paper, 8 bytes per edge plus the two CSR
//! copies) — tens of bytes per edge instead of the hundreds of bytes per
//! node a built graph costs — which is what makes the 100× tier writable
//! on the same machine that later maps it in O(page-fault).
//!
//! The columns reproduce the canonical layout the in-memory path builds
//! (first-use string dictionary, value postings in `(symbol, value)` order,
//! node-sorted posting lists), the generator itself is shared with
//! [`generate_arxiv`](crate::arxiv::generate_arxiv) (same emitter, same RNG
//! sequence), and the condensation comes from
//! [`Condensation::identity_dag`] — the generated citation graph is a DAG
//! by construction (citations only point to earlier papers, authors are
//! sinks), and `identity_dag` *verifies* that claim with a Kahn pass
//! rather than trusting it.

use std::collections::HashMap;
use std::path::Path;

use gtpq_graph::csr::Csr;
use gtpq_graph::{
    Condensation, MetaCounts, NodeId, SectionKind, SnapshotError, SnapshotWriter, Symbol,
};

use crate::arxiv::{emit_arxiv, ArxivConfig, ArxivSink};

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;

/// Shape summary of a written snapshot, for logs and benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStats {
    /// Nodes in the written graph.
    pub nodes: usize,
    /// De-duplicated directed edges.
    pub edges: usize,
    /// Distinct label strings.
    pub labels: usize,
}

/// Columnar sink: per-node label dictionary ids, per-paper years, and the
/// raw edge list.  Everything is a flat primitive column.
#[derive(Default)]
struct Columns {
    /// First-use-order dictionary of label strings (papers scan first).
    dict: Vec<String>,
    dict_ids: HashMap<(bool, u32), u32>,
    /// Dictionary id of every node's label, in node order.
    label_of: Vec<u32>,
    /// Year of every paper (papers are nodes `0..years.len()`).
    years: Vec<i64>,
    edges: Vec<(u32, u32)>,
}

impl Columns {
    fn label_id(&mut self, author: bool, label: u32) -> u32 {
        *self.dict_ids.entry((author, label)).or_insert_with(|| {
            self.dict.push(if author {
                format!("auth{label}")
            } else {
                format!("paper{label}")
            });
            (self.dict.len() - 1) as u32
        })
    }
}

impl ArxivSink for Columns {
    fn paper(&mut self, label: u32, year: i64) {
        let id = self.label_id(false, label);
        self.label_of.push(id);
        self.years.push(year);
    }
    fn author(&mut self, label: u32) {
        let id = self.label_id(true, label);
        self.label_of.push(id);
    }
    fn edge(&mut self, from: u32, to: u32) {
        self.edges.push((from, to));
    }
}

/// Generates the arXiv tier described by `config` and writes it straight to
/// `path` as a `.gtpq` snapshot (epoch 0), byte-identical to
/// `GraphSnapshot::save` over `generate_arxiv(config)`.
pub fn write_arxiv_snapshot<P: AsRef<Path>>(
    config: &ArxivConfig,
    path: P,
) -> Result<SnapshotStats, SnapshotError> {
    let mut cols = Columns::default();
    emit_arxiv(config, &mut cols);
    let papers = cols.years.len();
    let n = cols.label_of.len();

    // Adjacency, de-duplicated exactly as `GraphBuilder::build` does.
    let mut fwd_pairs: Vec<(u32, NodeId)> =
        cols.edges.iter().map(|&(u, v)| (u, NodeId(v))).collect();
    fwd_pairs.sort_unstable();
    fwd_pairs.dedup();
    let edge_count = fwd_pairs.len();
    let mut rev_pairs: Vec<(u32, NodeId)> =
        fwd_pairs.iter().map(|&(u, v)| (v.0, NodeId(u))).collect();
    rev_pairs.sort_unstable();
    let fwd = Csr::from_sorted_pairs(n, &fwd_pairs);
    let rev = Csr::from_sorted_pairs(n, &rev_pairs);
    drop(fwd_pairs);
    drop(rev_pairs);
    cols.edges = Vec::new();

    // The DAG check: citations only point backwards and authors are sinks,
    // so the condensation must be the identity.  `identity_dag` verifies
    // acyclicity with its Kahn pass instead of trusting the generator.
    let condensation =
        Condensation::identity_dag(&fwd, &rev).ok_or_else(|| SnapshotError::Malformed {
            what: "generated arXiv graph is not a DAG (generator invariant broken)".to_owned(),
        })?;

    let mut w = SnapshotWriter::create(path, 0)?;
    let mut counts = MetaCounts {
        nodes: n as u64,
        edges: edge_count as u64,
        ..MetaCounts::default()
    };

    w.section(SectionKind::FwdOffsets, fwd.offsets_raw())?;
    w.section(SectionKind::FwdTargets, fwd.targets_raw())?;
    w.section(SectionKind::RevOffsets, rev.offsets_raw())?;
    w.section(SectionKind::RevTargets, rev.targets_raw())?;

    // Symbols in builder interning order: papers intern `label` then
    // `year`; author-only graphs know just `label`.
    let mut symbols: Vec<&str> = Vec::new();
    if n > 0 {
        symbols.push("label");
    }
    if papers > 0 {
        symbols.push("year");
    }
    let label_sym = Symbol(0);
    let year_sym = Symbol(1);
    counts.symbols = symbols.len() as u64;
    w.string_section(SectionKind::Symbols, symbols.iter().copied())?;
    counts.strings = cols.dict.len() as u64;
    w.string_section(SectionKind::Strings, cols.dict.iter().map(String::as_str))?;

    // Attribute columns in node order: papers carry (label, year), authors
    // just (label) — the same tuple order `add_node_with_attrs` produces.
    let attr_entries = 2 * papers + (n - papers);
    let mut attr_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut attr_names: Vec<Symbol> = Vec::with_capacity(attr_entries);
    let mut attr_tags: Vec<u8> = Vec::with_capacity(attr_entries);
    let mut attr_payloads: Vec<u64> = Vec::with_capacity(attr_entries);
    attr_offsets.push(0);
    for v in 0..n {
        attr_names.push(label_sym);
        attr_tags.push(TAG_STR);
        attr_payloads.push(cols.label_of[v] as u64);
        if v < papers {
            attr_names.push(year_sym);
            attr_tags.push(TAG_INT);
            attr_payloads.push(cols.years[v] as u64);
        }
        attr_offsets.push(attr_names.len() as u32);
    }
    counts.attrs = attr_names.len() as u64;
    w.section(SectionKind::AttrOffsets, &attr_offsets)?;
    w.section(SectionKind::AttrNames, &attr_names)?;
    w.section(SectionKind::AttrTags, &attr_tags)?;
    w.section(SectionKind::AttrPayloads, &attr_payloads)?;
    // The arXiv schema has no vector attributes; the v2 layout still carries
    // an (empty) vector dictionary so the file stays byte-identical to the
    // canonical save path.
    w.section(SectionKind::VecOffsets, &[0u32])?;
    w.section::<f32>(SectionKind::VecData, &[])?;

    // Value postings in canonical slot order: `(symbol, value)` with ints
    // before strings per symbol — here all `label` values are strings
    // (sorted lexicographically) and all `year` values are ints (sorted
    // numerically), and `label < year` in symbol order.  Scanning nodes in
    // id order makes every posting list sorted for free.
    let mut label_postings: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for (v, &id) in cols.label_of.iter().enumerate() {
        label_postings.entry(id).or_default().push(NodeId(v as u32));
    }
    let mut label_order: Vec<u32> = label_postings.keys().copied().collect();
    label_order.sort_unstable_by(|&a, &b| cols.dict[a as usize].cmp(&cols.dict[b as usize]));
    // Years are non-decreasing in paper id, so distinct years in first-seen
    // order are already value-sorted and each posting is id-sorted.
    let mut year_order: Vec<i64> = Vec::new();
    let mut year_postings: HashMap<i64, Vec<NodeId>> = HashMap::new();
    for (v, &year) in cols.years.iter().enumerate() {
        year_postings.entry(year).or_insert_with(|| {
            year_order.push(year);
            Vec::new()
        });
        year_postings
            .get_mut(&year)
            .expect("just inserted")
            .push(NodeId(v as u32));
    }
    debug_assert!(year_order.windows(2).all(|w| w[0] < w[1]));

    let slot_count = label_order.len() + year_order.len();
    let mut val_syms: Vec<Symbol> = Vec::with_capacity(slot_count);
    let mut val_tags: Vec<u8> = Vec::with_capacity(slot_count);
    let mut val_payloads: Vec<u64> = Vec::with_capacity(slot_count);
    let mut val_offsets: Vec<u32> = Vec::with_capacity(slot_count + 1);
    let mut val_nodes: Vec<NodeId> = Vec::new();
    val_offsets.push(0);
    for &id in &label_order {
        val_syms.push(label_sym);
        val_tags.push(TAG_STR);
        val_payloads.push(id as u64);
        val_nodes.extend_from_slice(&label_postings[&id]);
        val_offsets.push(val_nodes.len() as u32);
    }
    for &year in &year_order {
        val_syms.push(year_sym);
        val_tags.push(TAG_INT);
        val_payloads.push(year as u64);
        val_nodes.extend_from_slice(&year_postings[&year]);
        val_offsets.push(val_nodes.len() as u32);
    }
    counts.value_slots = slot_count as u64;
    counts.value_nodes = val_nodes.len() as u64;
    w.section(SectionKind::ValSyms, &val_syms)?;
    w.section(SectionKind::ValTags, &val_tags)?;
    w.section(SectionKind::ValPayloads, &val_payloads)?;
    w.section(SectionKind::ValOffsets, &val_offsets)?;
    w.section(SectionKind::ValNodes, &val_nodes)?;

    // Name postings in symbol order: every node carries `label`, every
    // paper carries `year`.
    let mut name_syms: Vec<Symbol> = Vec::new();
    let mut name_offsets: Vec<u32> = vec![0];
    let mut name_nodes: Vec<NodeId> = Vec::with_capacity(n + papers);
    if n > 0 {
        name_syms.push(label_sym);
        name_nodes.extend((0..n as u32).map(NodeId));
        name_offsets.push(name_nodes.len() as u32);
    }
    if papers > 0 {
        name_syms.push(year_sym);
        name_nodes.extend((0..papers as u32).map(NodeId));
        name_offsets.push(name_nodes.len() as u32);
    }
    counts.name_slots = name_syms.len() as u64;
    counts.name_nodes = name_nodes.len() as u64;
    w.section(SectionKind::NameSyms, &name_syms)?;
    w.section(SectionKind::NameOffsets, &name_offsets)?;
    w.section(SectionKind::NameNodes, &name_nodes)?;

    // Integer runs: `year` only.  Years are non-decreasing in paper id, so
    // the `(year, paper)` pairs are already `(value, node)`-sorted.
    let int_syms: Vec<Symbol> = if papers > 0 {
        vec![year_sym]
    } else {
        Vec::new()
    };
    let int_offsets: Vec<u32> = if papers > 0 {
        vec![0, papers as u32]
    } else {
        vec![0]
    };
    let int_nodes: Vec<NodeId> = (0..papers as u32).map(NodeId).collect();
    counts.int_attrs = int_syms.len() as u64;
    counts.int_pairs = cols.years.len() as u64;
    w.section(SectionKind::IntSyms, &int_syms)?;
    w.section(SectionKind::IntOffsets, &int_offsets)?;
    w.section(SectionKind::IntValues, &cols.years)?;
    w.section(SectionKind::IntNodes, &int_nodes)?;

    // No `sim(...)` tables either — the empty similarity catalog, in the
    // same section order the canonical writer always emits.
    w.section::<Symbol>(SectionKind::SimSyms, &[])?;
    w.section::<u32>(SectionKind::SimDims, &[])?;
    w.section(SectionKind::SimNodeOffsets, &[0u32])?;
    w.section::<NodeId>(SectionKind::SimNodes, &[])?;
    w.section(SectionKind::SimVecOffsets, &[0u32])?;
    w.section::<f32>(SectionKind::SimVecData, &[])?;
    w.section(SectionKind::SimPivotOffsets, &[0u32])?;
    w.section::<f32>(SectionKind::SimPivotData, &[])?;
    w.section(SectionKind::SimDistOffsets, &[0u32])?;
    w.section::<f32>(SectionKind::SimDistData, &[])?;
    w.section::<f32>(SectionKind::SimSortedHead, &[])?;
    w.section::<f32>(SectionKind::SimNormBounds, &[])?;

    w.condensation_sections(&condensation, &mut counts)?;
    w.meta(&counts)?;
    w.finish()?;

    Ok(SnapshotStats {
        nodes: n,
        edges: edge_count,
        labels: cols.dict.len(),
    })
}

#[cfg(test)]
mod tests {
    use gtpq_graph::{GraphHandle, GraphSnapshot};

    use super::*;
    use crate::arxiv::generate_arxiv;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gtpq-stream-{tag}-{}.gtpq", std::process::id()))
    }

    #[test]
    fn streamed_file_is_byte_identical_to_saving_the_built_graph() {
        let config = ArxivConfig::small();
        let streamed = temp("streamed");
        let saved = temp("saved");
        let stats = write_arxiv_snapshot(&config, &streamed).expect("streamed write");

        let g = generate_arxiv(&config);
        assert_eq!(stats.nodes, g.node_count());
        assert_eq!(stats.edges, g.edge_count());
        GraphHandle::new(g).snapshot().save(&saved).expect("save");

        let a = std::fs::read(&streamed).unwrap();
        let b = std::fs::read(&saved).unwrap();
        assert_eq!(
            a, b,
            "streamed writer diverged from the canonical save path"
        );
        std::fs::remove_file(&streamed).ok();
        std::fs::remove_file(&saved).ok();
    }

    #[test]
    fn streamed_snapshot_loads_to_the_generated_graph() {
        let config = ArxivConfig {
            papers: 180,
            authors: 70,
            paper_labels: 30,
            author_labels: 10,
            ..ArxivConfig::default()
        };
        let path = temp("load");
        write_arxiv_snapshot(&config, &path).expect("streamed write");
        let snap = GraphSnapshot::open_heap(&path).expect("verified load");
        let expected = generate_arxiv(&config);
        assert_eq!(*snap.graph().as_ref(), expected);
        assert_eq!(
            *snap.condensation().as_ref(),
            Condensation::new(&expected),
            "identity condensation must match Tarjan on the DAG"
        );
        assert!(snap.condensation().input_was_dag());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tier_scales_linearly_in_nodes() {
        let t1 = ArxivConfig::tier(1);
        let t10 = ArxivConfig::tier(10);
        assert_eq!(t10.papers, 10 * t1.papers);
        assert_eq!(t10.authors, 10 * t1.authors);
        assert!(t10.paper_labels > t1.paper_labels);
        assert!(t10.paper_labels < 10 * t1.paper_labels);
    }
}
