//! End-to-end tests of the CLI: REPL behaviour over piped input, one-shot
//! mode, and (the tentpole acceptance check) a textual query evaluated
//! through the REPL machinery against a generated arXiv graph matching the
//! builder-constructed equivalent exactly.

use std::io::Write as _;
use std::process::{Command, Stdio};

use gtpq_cli::{repl, CliOptions, Dataset, Outcome, Session};
use gtpq_query::{AttrPredicate, CmpOp, EdgeKind, GtpqBuilder};
use gtpq_service::QueryRequest;

fn arxiv_session() -> Session {
    let opts =
        CliOptions::parse(["--dataset", "arxiv", "--scale", "0.4", "--stats"].map(String::from))
            .unwrap();
    Session::new(&opts).unwrap()
}

#[test]
fn textual_query_matches_builder_query_on_arxiv() {
    let mut session = arxiv_session();
    // "papers from 1996–2002 citing a paper3 paper and written by an auth7
    // author, returning the citing paper" — textual form ...
    let text = "[label = paper3, year >= 1996, year <= 2002]* {
        where (//paper3) & (//auth7)
    }";
    // ... and the same query through the builder.
    let mut b = GtpqBuilder::new(
        AttrPredicate::label("paper3")
            .and("year", CmpOp::Ge, 1996.into())
            .and("year", CmpOp::Le, 2002.into()),
    );
    let root = b.root_id();
    let _cited = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("paper3"));
    let _author = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("auth7"));
    b.set_structural(
        root,
        gtpq_logic::BoolExpr::and2(gtpq_logic::BoolExpr::var(1), gtpq_logic::BoolExpr::var(2)),
    );
    b.mark_output(root);
    let built = b.build().unwrap();

    let from_text = session
        .service()
        .submit(&QueryRequest::text(text))
        .unwrap()
        .rows;
    let from_builder = session
        .service()
        .submit(&QueryRequest::query(built))
        .unwrap()
        .rows;
    assert_eq!(from_text.output, from_builder.output);
    assert_eq!(from_text.tuples, from_builder.tuples);
    assert!(!from_text.is_empty(), "query should match generated data");

    // The REPL path renders the same answer (count line agrees).
    let rendered = session.run_query(text);
    let n = from_builder.len();
    let count_line = format!("{n} row{}", if n == 1 { "" } else { "s" });
    assert!(rendered.contains(&count_line), "{rendered}");
    assert!(rendered.contains("stats:"), "{rendered}");
}

#[test]
fn repl_accumulates_multiline_queries_and_handles_commands() {
    let opts =
        CliOptions::parse(["--dataset", "dblp", "--scale", "0.3"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let input = "\
:stats on
inproceedings {
    / [label = title]*
    where / [label = author, value = Alice]
}
:metrics
:limit 2
inproceedings { / [label = title]* where / [label = author, value = Alice] }
:quit
";
    let mut out = Vec::new();
    repl(&mut session, input.as_bytes(), &mut out, false).unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("stats on"), "{out}");
    assert!(out.contains("title"), "{out}");
    assert!(out.contains("rows"), "{out}");
    assert!(out.contains("stats:"), "{out}");
    assert!(out.contains("hit rate"), "{out}");
    // The second (identical) query is served from the cache.
    assert!(out.contains("served from the result cache"), "{out}");
    assert_eq!(session.service().metrics().cache_hits, 1);
}

#[test]
fn threads_command_and_flag_keep_answers_bit_identical() {
    // The same broad query through a serial session (`--threads 1`) and a
    // fanned-out one must render identically — parallel execution is an
    // implementation detail, never a semantic one.
    let query = "[label = paper3]* { where //auth7 }\n";
    let run = |threads: &str| {
        let opts = CliOptions::parse(
            ["--dataset", "arxiv", "--scale", "0.4", "--threads", threads].map(String::from),
        )
        .unwrap();
        let mut session = Session::new(&opts).unwrap();
        let mut out = Vec::new();
        repl(&mut session, query.as_bytes(), &mut out, false).unwrap();
        String::from_utf8(out).unwrap()
    };
    let serial = run("1");
    let parallel = run("8");
    assert_eq!(serial, parallel);
    assert!(serial.contains("rows"), "{serial}");

    // The REPL command adjusts the degree mid-session and echoes it.
    let mut session = arxiv_session();
    let input = ":threads\n:threads 8\n:threads 1\n:threads nope\n:quit\n";
    let mut out = Vec::new();
    repl(&mut session, input.as_bytes(), &mut out, false).unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("threads auto"), "{out}");
    assert!(out.contains("threads 8"), "{out}");
    assert!(out.contains("threads 1 (serial)"), "{out}");
    assert!(out.contains("expected `:threads N`"), "{out}");
}

#[test]
fn repl_reports_parse_errors_without_dying() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let mut out = Vec::new();
    repl(
        &mut session,
        "inproceedings ] oops\ndblp*\n".as_bytes(),
        &mut out,
        false,
    )
    .unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("parse error"), "{out}");
    assert!(out.contains('^'), "{out}");
    // The next query still runs.
    assert!(out.contains("1 row"), "{out}");
}

#[test]
fn unterminated_string_does_not_swallow_later_input() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let mut out = Vec::new();
    repl(
        &mut session,
        "dblp* { /\"oops }\ndblp*\n".as_bytes(),
        &mut out,
        false,
    )
    .unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("unterminated string"), "{out}");
    // The second query is evaluated, not absorbed into the broken chunk.
    assert!(out.contains("1 row"), "{out}");
}

#[test]
fn explain_shows_the_tree_and_plan_without_evaluating() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let before = session.service().metrics().queries;
    let Outcome::Continue(out) = session.handle(":explain a* { //b where (//c) | !(//d) }") else {
        panic!("explain must not quit")
    };
    assert!(out.contains("4 nodes"), "{out}");
    assert!(out.contains("general (uses NOT)"), "{out}");
    assert!(out.contains("canonical:"), "{out}");
    // The physical plan follows the tree: operators, backend, estimates.
    assert!(out.contains("QueryPlan"), "{out}");
    assert!(out.contains("IndexScan"), "{out}");
    assert!(out.contains("PruneDown"), "{out}");
    assert!(out.contains("est. probes"), "{out}");
    assert!(out.contains("est "), "{out}");
    // ... but nothing ran: no actuals, no queries counted.
    assert!(!out.contains("actual"), "{out}");
    assert_eq!(session.service().metrics().queries, before);
}

#[test]
fn explain_analyze_runs_the_query_and_appends_actuals() {
    let opts = CliOptions::parse(["--scale", "0.3"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let Outcome::Continue(out) =
        session.handle(":explain analyze inproceedings { /[label = title]* }")
    else {
        panic!("explain must not quit")
    };
    assert!(out.contains("QueryPlan"), "{out}");
    assert!(out.contains("→ actual"), "{out}");
    assert!(out.contains("Collect"), "{out}");
    assert!(out.contains("estimation error"), "{out}");
    assert!(out.contains("stats:"), "{out}");
    // A malformed analyze target reports a parse error, not a panic.
    let Outcome::Continue(err) = session.handle(":explain analyze a* {") else {
        panic!("explain must not quit")
    };
    assert!(err.contains("parse error"), "{err}");
    // A query whose *root label* is `analyze` still explains (no keyword
    // swallowing): the stripped tail fails to parse, the full input wins.
    let Outcome::Continue(out) = session.handle(":explain analyze { /[label = x]* }") else {
        panic!("explain must not quit")
    };
    assert!(out.contains("QueryPlan"), "{out}");
    assert!(!out.contains("→ actual"), "{out}");
}

#[test]
fn binary_one_shot_evaluates_a_query() {
    let output = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args([
            "--dataset",
            "dblp",
            "--scale",
            "0.3",
            "--stats",
            "--query",
            "inproceedings { /[label = title]* where /[label = author, value = Alice] }",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("title"), "{stdout}");
    assert!(stdout.contains("rows"), "{stdout}");
    assert!(stdout.contains("stats:"), "{stdout}");
}

#[test]
fn binary_reports_parse_errors_on_stderr() {
    let output = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--scale", "0.2", "--query", "a* {"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("unbalanced `{`"), "{stderr}");
}

#[test]
fn binary_repl_reads_stdin_until_quit() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--scale", "0.2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"dblp*\n:quit\n")
        .unwrap();
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("v0:dblp"), "{stdout}");
}

#[test]
fn repl_timeout_yields_a_clean_timeout_error() {
    // A zero-millisecond deadline must produce a clean `timed out` message —
    // not a panic, not an empty table.
    let mut session = arxiv_session();
    let input = "\
:timeout 0
paper3*
:timeout off
paper3*
:quit
";
    let mut out = Vec::new();
    repl(&mut session, input.as_bytes(), &mut out, false).unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("timeout 0ms"), "{out}");
    assert!(out.contains("timed out"), "{out}");
    assert!(
        !out.contains("0 rows\n"),
        "a timeout must not render as an empty table: {out}"
    );
    // After :timeout off the same query completes.
    assert!(out.contains("rows"), "{out}");
    assert_eq!(session.service().metrics().timed_out, 1);
}

#[test]
fn limit_is_pushed_down_not_display_trimmed() {
    let mut session = arxiv_session(); // --stats is on
    let query = "[year >= 1990]*";
    let Outcome::Continue(_) = session.handle(":limit none") else {
        panic!(":limit must not quit");
    };
    let Outcome::Continue(full) = session.handle(query) else {
        panic!("query must not quit");
    };
    assert!(!full.contains("limit reached"), "{full}");
    let Outcome::Continue(_) = session.handle(":limit 2") else {
        panic!(":limit must not quit");
    };
    let Outcome::Continue(limited) = session.handle(query) else {
        panic!("query must not quit");
    };
    // The limited run fetches exactly 2 rows and flags the cut.
    assert!(limited.contains("2 rows (limit reached"), "{limited}");
    // The limited rows are the first rows of the full table.
    let full_rows: Vec<&str> = full.lines().skip(2).take(2).collect();
    let limited_rows: Vec<&str> = limited.lines().skip(2).take(2).collect();
    assert_eq!(full_rows, limited_rows, "pushdown preserves row order");
    assert!(session.service().metrics().rows_truncated >= 1);
}

#[test]
fn trace_command_records_and_renders_a_span_tree() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let Outcome::Continue(out) = session.handle(":trace") else {
        panic!(":trace must not quit")
    };
    assert!(out.contains("no trace recorded yet"), "{out}");
    let Outcome::Continue(out) = session.handle(":trace on") else {
        panic!(":trace must not quit")
    };
    assert!(out.contains("trace on"), "{out}");
    session.handle("inproceedings { /[label = title]* }");
    let Outcome::Continue(out) = session.handle(":trace") else {
        panic!(":trace must not quit")
    };
    // The span tree covers the whole request: parse, plan, engine stages.
    assert!(out.contains("request"), "{out}");
    assert!(out.contains("plan"), "{out}");
    assert!(out.contains("candidates"), "{out}");
    assert!(out.contains("prune_down"), "{out}");
    assert!(session.last_trace().is_some());

    // `:trace save` writes Chrome trace_event JSON that round-trips
    // through a JSON parser.
    let path = std::env::temp_dir().join(format!("gtpq-cli-trace-{}.json", std::process::id()));
    let Outcome::Continue(out) = session.handle(&format!(":trace save {}", path.display())) else {
        panic!(":trace must not quit")
    };
    assert!(out.contains("wrote"), "{out}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let value = gtpq_obs::json::parse(&json).expect("well-formed trace JSON");
    let events = value
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("request")));

    let Outcome::Continue(out) = session.handle(":trace off") else {
        panic!(":trace must not quit")
    };
    assert!(out.contains("trace off"), "{out}");
    let Outcome::Continue(out) = session.handle(":trace nonsense") else {
        panic!(":trace must not quit")
    };
    assert!(out.contains("expected"), "{out}");
}

#[test]
fn slowlog_shows_slow_queries_with_their_plan() {
    // Threshold 0: every query is "slow", so the log fills deterministically.
    let opts = CliOptions::parse(["--scale", "0.2", "--slow-ms", "0"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let Outcome::Continue(empty) = session.handle(":slowlog") else {
        panic!(":slowlog must not quit")
    };
    assert!(empty.contains("empty"), "{empty}");
    session.handle("inproceedings { /[label = title]* }");
    let Outcome::Continue(out) = session.handle(":slowlog") else {
        panic!(":slowlog must not quit")
    };
    assert!(out.contains("#1"), "{out}");
    assert!(out.contains("ok,"), "{out}");
    assert!(out.contains("inproceedings"), "{out}");
    // The entry carries the executed plan with actual row counts.
    assert!(out.contains("actual"), "{out}");
}

#[test]
fn slowlog_stays_empty_when_disabled() {
    let opts = CliOptions::parse(["--scale", "0.2", "--slow-ms", "off"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    session.handle("dblp*");
    let Outcome::Continue(out) = session.handle(":slowlog") else {
        panic!(":slowlog must not quit")
    };
    assert!(out.contains("empty"), "{out}");
}

#[test]
fn metrics_report_percentiles_and_recent_rates() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    session.handle("dblp*");
    let Outcome::Continue(out) = session.handle(":metrics") else {
        panic!(":metrics must not quit")
    };
    assert!(out.contains("p50"), "{out}");
    assert!(out.contains("p999"), "{out}");
    assert!(out.contains("over 1 requests"), "{out}");
    assert!(out.contains("qps"), "{out}");
    assert!(out.contains("aborted runs: 0"), "{out}");
}

#[test]
fn binary_trace_out_writes_chrome_json() {
    let path = std::env::temp_dir().join(format!("gtpq-trace-out-{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args([
            "--scale",
            "0.2",
            "--query",
            "dblp*",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("wrote"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let value = gtpq_obs::json::parse(&json).expect("well-formed trace JSON");
    assert!(value.get("traceEvents").is_some());
}

#[test]
fn datasets_generate_at_small_scale() {
    for dataset in [Dataset::Dblp, Dataset::Arxiv, Dataset::Xmark] {
        let g = dataset.generate(0.1, 1);
        assert!(g.node_count() > 0, "{}", dataset.name());
        assert!(g.edge_count() > 0, "{}", dataset.name());
    }
}

#[test]
fn save_and_snapshot_flag_round_trip_identical_tables() {
    let path = std::env::temp_dir().join(format!("gtpq-cli-save-{}.gtpq", std::process::id()));
    let query = "[label = paper3]* { where //auth7 }";

    // Build an arXiv session (no --stats: timings would differ per run),
    // evaluate the query, and save the graph as a binary snapshot.
    let opts =
        CliOptions::parse(["--dataset", "arxiv", "--scale", "0.4"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let original = session.run_query(query);
    assert!(original.contains("rows"), "{original}");
    let Outcome::Continue(saved) = session.handle(&format!(":save {}", path.display())) else {
        panic!(":save must not quit")
    };
    assert!(saved.contains("saved epoch 0"), "{saved}");
    assert!(saved.contains("nodes"), "{saved}");

    // Reload through --snapshot: the mapped graph renders the identical
    // result table, and the banner names its source.
    let opts =
        CliOptions::parse(["--snapshot".to_owned(), path.display().to_string()].map(String::from))
            .unwrap();
    let mut reloaded = Session::new(&opts).unwrap();
    assert!(
        reloaded.banner().contains("snapshot"),
        "{}",
        reloaded.banner()
    );
    assert_eq!(reloaded.run_query(query), original);

    // `:save` back onto the very file backing the live mapping is refused
    // with a diagnostic — the file, the mapping and the session all survive.
    let Outcome::Continue(out) = reloaded.handle(&format!(":save {}", path.display())) else {
        panic!(":save must not quit")
    };
    assert!(out.contains("cannot save snapshot"), "{out}");
    assert!(out.contains("live mapping"), "{out}");
    assert_eq!(reloaded.run_query(query), original);

    // The snapshot-backed session is still live: `:ingest` commits
    // copy-on-write epochs while the file on disk stays pristine.
    let before = std::fs::read(&path).unwrap();
    let Outcome::Continue(out) = reloaded.handle(":ingest 1 8") else {
        panic!(":ingest must not quit")
    };
    assert!(out.contains("graph now at epoch 1"), "{out}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "mutating wrote through the mapping"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_errors_render_cleanly() {
    // A missing snapshot fails session construction with a diagnostic.
    let missing = std::env::temp_dir().join("gtpq-cli-no-such-snapshot.gtpq");
    let opts = CliOptions::parse(
        ["--snapshot".to_owned(), missing.display().to_string()].map(String::from),
    )
    .unwrap();
    let err = Session::new(&opts)
        .err()
        .expect("missing snapshot must fail");
    assert!(err.contains("cannot open snapshot"), "{err}");

    // `:save` to an unwritable path reports, it does not panic or quit.
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let Outcome::Continue(out) = session.handle(":save /no/such/dir/x.gtpq") else {
        panic!(":save must not quit")
    };
    assert!(out.contains("cannot save snapshot"), "{out}");
    let Outcome::Continue(out) = session.handle(":save") else {
        panic!(":save must not quit")
    };
    assert!(out.contains("expected `:save PATH`"), "{out}");
}

#[test]
fn binary_saves_and_reloads_a_snapshot() {
    let path = std::env::temp_dir().join(format!("gtpq-cli-bin-save-{}.gtpq", std::process::id()));
    let query = "[label = paper3]* { where //auth7 }";

    // REPL over a pipe: generate arXiv, save, quit.
    let mut child = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--dataset", "arxiv", "--scale", "0.4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(format!(":save {}\n:quit\n", path.display()).as_bytes())
        .unwrap();
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success(), "{output:?}");
    assert!(String::from_utf8_lossy(&output.stdout).contains("saved epoch 0"));

    // One-shot from the generated dataset and from the snapshot agree.
    let generated = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--dataset", "arxiv", "--scale", "0.4", "--query", query])
        .output()
        .expect("binary runs");
    assert!(generated.status.success(), "{generated:?}");
    let mapped = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--snapshot", path.to_str().unwrap(), "--query", query])
        .output()
        .expect("binary runs");
    assert!(mapped.status.success(), "{mapped:?}");
    assert_eq!(
        String::from_utf8(generated.stdout).unwrap(),
        String::from_utf8(mapped.stdout).unwrap(),
    );
    std::fs::remove_file(&path).ok();

    // A bad snapshot path exits with the argument-error code, not a panic.
    let missing = Command::new(env!("CARGO_BIN_EXE_gtpq-cli"))
        .args(["--snapshot", "/no/such/file.gtpq", "--query", query])
        .output()
        .expect("binary runs");
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot open snapshot"));
}

#[test]
fn ingest_command_mutates_the_live_graph_and_queries_see_it() {
    let opts = CliOptions::parse(["--scale", "0.2"].map(String::from)).unwrap();
    let mut session = Session::new(&opts).unwrap();
    let before = session.service().graph().node_count();
    assert_eq!(session.service().graph_epoch(), 0);

    let out = match session.handle(":ingest 2 20") {
        Outcome::Continue(text) => text,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert!(out.contains("ingested 2 epochs of 20 ops"), "{out}");
    assert!(out.contains("graph now at epoch 2"), "{out}");

    // The service rotated: a query answers for the mutated generation.
    let after = session.service().graph().node_count();
    assert!(after > before, "ingest inserted no nodes");
    assert_eq!(session.service().graph_epoch(), 2);
    assert_eq!(session.graph_handle().epoch(), 2);

    // Metrics surface the epoch line; bad arguments are rejected cleanly.
    let metrics = match session.handle(":metrics") {
        Outcome::Continue(text) => text,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert!(metrics.contains("graph: epoch 2"), "{metrics}");
    let err = match session.handle(":ingest nope") {
        Outcome::Continue(text) => text,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert!(err.contains("expected `:ingest"), "{err}");
}

#[test]
fn embed_dataset_answers_sim_queries_one_shot() {
    // --scale 0.1 → 6 planted clusters of 16 docs each (dim 32).  The query
    // vector spikes coordinate 0 to 8.0 — cluster 0's planted spike — so a
    // radius-7 L2 query retrieves exactly cluster 0: every member is within
    // √31 + noise of the query, every foreign member at least √(7² + 7²)
    // away (its own spike axis and axis 0 both differ by ≥ 7).
    let mut components = vec!["8".to_owned()];
    components.extend(std::iter::repeat_n("0".to_owned(), 31));
    let query = format!("[label = doc, sim(emb, [{}]) < 7]*", components.join(", "));
    let opts = CliOptions::parse(
        [
            "--dataset",
            "embed",
            "--scale",
            "0.1",
            "--limit",
            "100",
            "--stats",
        ]
        .map(String::from),
    )
    .unwrap();
    assert_eq!(opts.dataset, Dataset::Embed);
    let mut session = Session::new(&opts).unwrap();
    assert!(session.banner().contains("dataset embed"));

    let mut out = Vec::new();
    let result = gtpq_cli::run_once(&mut session, &query, &mut out).unwrap();
    assert!(result.is_ok(), "{result:?}");
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("16 rows"), "{out}");

    // `:explain analyze` surfaces the similarity access path with actuals.
    let explained = match session.handle(&format!(":explain analyze {query}")) {
        Outcome::Continue(text) => text,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert!(explained.contains("PivotScan u0"), "{explained}");
    assert!(explained.contains("actual 16 rows"), "{explained}");

    // A malformed vector literal renders a caret-annotated parse error and
    // a non-zero one-shot outcome.
    let bad = "[label = doc, sim(emb, [1, oops]) < 3]*";
    let mut out = Vec::new();
    let result = gtpq_cli::run_once(&mut session, bad, &mut out).unwrap();
    let diagnostic = result.expect_err("malformed vector literal must not parse");
    assert!(diagnostic.contains('^'), "no caret in: {diagnostic}");
    assert!(diagnostic.contains("oops"), "{diagnostic}");
}
