//! Binary entry point: argument handling, stdin/stdout wiring.

use std::io::{IsTerminal, Write};
use std::process::ExitCode;

use gtpq_cli::{repl, run_once, CliOptions, Session, USAGE};

fn main() -> ExitCode {
    let opts = match CliOptions::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut session = match Session::new(&opts) {
        Ok(session) => session,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    match &opts.query {
        Some(query) => match run_once(&mut session, query, stdout.lock()) {
            Ok(Ok(())) => {
                if let Some(path) = &opts.trace_out {
                    match session.save_trace(path) {
                        Ok(line) => println!("{line}"),
                        Err(message) => {
                            eprintln!("error: {message}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ExitCode::SUCCESS
            }
            Ok(Err(diagnostic)) => {
                eprintln!("{diagnostic}");
                ExitCode::FAILURE
            }
            Err(io) => {
                eprintln!("error: {io}");
                ExitCode::FAILURE
            }
        },
        None => {
            let stdin = std::io::stdin();
            let interactive = stdin.is_terminal();
            match repl(&mut session, stdin.lock(), stdout.lock(), interactive) {
                Ok(()) => {
                    let mut out = stdout.lock();
                    if interactive {
                        let _ = writeln!(out);
                    }
                    ExitCode::SUCCESS
                }
                Err(io) => {
                    eprintln!("error: {io}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
