//! # gtpq-cli — interactive front end for the textual GTPQ query language
//!
//! The `gtpq-cli` binary loads one of the synthetic datasets
//! (`gtpq-datagen`), builds a [`QueryService`] with a chosen (or
//! auto-selected) reachability backend, and evaluates queries written in the
//! textual query language (`docs/QUERY_LANGUAGE.md`) — either one-shot via
//! `--query`, or as a REPL reading from stdin:
//!
//! ```text
//! $ gtpq-cli --dataset dblp
//! gtpq> inproceedings {
//!   ...>     / [label = title]*
//!   ...>     where / [label = author, value = Alice]
//!   ...> }
//! title
//! ------
//! v17:title
//! ...
//! 12 rows
//! ```
//!
//! Everything except reading stdin/stdout lives in this library crate so the
//! whole surface is testable: argument parsing ([`CliOptions::parse`]), the
//! REPL loop ([`repl`]) over arbitrary readers/writers, and query execution
//! ([`Session`]).

use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use gtpq_core::Trace;
use gtpq_datagen::{apply_ops, update_stream, UpdateStreamConfig};
use gtpq_graph::{DataGraph, GraphHandle, GraphSnapshot, MutationConfig};
use gtpq_query::Gtpq;
use gtpq_reach::BackendKind;
use gtpq_service::{QueryError, QueryRequest, QueryService, ServiceConfig, SlowOutcome};

/// Usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
gtpq-cli — evaluate textual GTPQ queries against a generated dataset

USAGE:
    gtpq-cli [OPTIONS]                 start a REPL on stdin
    gtpq-cli [OPTIONS] --query TEXT    evaluate one query and exit

OPTIONS:
    --dataset NAME    dblp | arxiv | xmark | embed  [default: dblp]
                      (embed: documents with pseudo-embedding vectors and
                      planted near-duplicate clusters, for `sim(...)`
                      similarity queries)
    --scale FACTOR    dataset size multiplier       [default: 1.0]
    --seed N          generator seed                [default: 42]
    --backend NAME    auto | closure | 3hop | chain | contour | sspi | interval
                                                    [default: auto]
    --snapshot PATH   serve a saved `.gtpq` binary snapshot instead of
                      generating a dataset: the file is mapped zero-copy, so
                      start-up costs page faults, not a text parse
                      (write one with :save; --dataset/--scale are ignored)
    --query TEXT      one-shot query text (see docs/QUERY_LANGUAGE.md)
    --stats           print per-query evaluation statistics
    --limit N         result rows to fetch (pushed into the engine: the
                      enumerator stops after N rows)  [default: 20]
    --timeout MS      per-query deadline in milliseconds [default: none]
    --threads N       intra-query parallelism degree: one query fans out
                      over up to N morsel workers; 1 = serial
                                                    [default: machine cores]
    --slow-ms MS|off  slow-query-log threshold in milliseconds; `off`
                      disables the log                  [default: 100]
    --trace-out PATH  with --query: record a span trace of the query and
                      write it to PATH as Chrome trace_event JSON
    --help            this text

REPL COMMANDS:
    :help             command list
    :explain QUERY    parse a query, print its tree and the physical plan
                      (chosen backend, per-operator row estimates)
    :explain analyze QUERY
                      run the query and append actual per-operator rows
    :stats [on|off]   toggle per-query statistics
    :limit N|none     result rows to fetch (real pushdown, not display trim)
    :timeout MS|off   per-query deadline in milliseconds
    :threads N        intra-query parallelism degree (1 = serial); bare
                      `:threads` prints the current degree
    :backend          backend in use (and why it was auto-selected)
    :metrics          service counters, latency/first-row percentiles,
                      recent rates (QPS, hit rate over the last 30s),
                      graph epoch and stale-cache evictions
    :ingest [E] [N]   commit E epochs of N generated mutations each to the
                      live graph (defaults: 1 epoch of 32 ops); reports
                      which incremental-maintenance paths the commits took
    :save PATH        write the current graph epoch as a `.gtpq` binary
                      snapshot (reload instantly with --snapshot PATH)
    :trace [on|off]   toggle per-query span tracing; bare `:trace` prints
                      the span tree of the last traced query
    :trace save PATH  write the last trace as Chrome trace_event JSON
                      (load it at chrome://tracing or ui.perfetto.dev)
    :slowlog          queries that crossed the slow threshold, each with
                      its latency, outcome and executed plan
    :quit             exit (also :q, :exit, Ctrl-D)

Queries may span multiple lines; input is evaluated once all brackets are
balanced. `#` starts a comment.";

/// The datasets the CLI can generate in-process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Small DBLP-like bibliography graph (Example 1 of the paper).
    Dblp,
    /// arXiv-like citation/authorship graph (dense, cyclic-free, deep).
    Arxiv,
    /// XMark-like auction graph with IDREF cross edges.
    Xmark,
    /// Embedded-text corpus: documents carrying pseudo-embedding vectors
    /// with planted near-duplicate clusters (for `sim(...)` queries).
    Embed,
}

impl Dataset {
    /// Parses a `--dataset` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dblp" => Ok(Dataset::Dblp),
            "arxiv" => Ok(Dataset::Arxiv),
            "xmark" => Ok(Dataset::Xmark),
            "embed" => Ok(Dataset::Embed),
            other => Err(format!(
                "unknown dataset `{other}` (expected dblp, arxiv, xmark or embed)"
            )),
        }
    }

    /// The dataset name as written on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Dblp => "dblp",
            Dataset::Arxiv => "arxiv",
            Dataset::Xmark => "xmark",
            Dataset::Embed => "embed",
        }
    }

    /// Generates the data graph at the given scale and seed.
    pub fn generate(self, scale: f64, seed: u64) -> DataGraph {
        match self {
            Dataset::Dblp => {
                let papers = ((240.0 * scale).round() as usize).max(8);
                gtpq_datagen::generate_dblp(papers, seed)
            }
            Dataset::Arxiv => {
                let base = gtpq_datagen::ArxivConfig::small();
                gtpq_datagen::generate_arxiv(&gtpq_datagen::ArxivConfig {
                    papers: ((base.papers as f64 * scale).round() as usize).max(8),
                    authors: ((base.authors as f64 * scale).round() as usize).max(4),
                    seed,
                    ..base
                })
            }
            Dataset::Xmark => {
                let mut config = gtpq_datagen::XmarkConfig::with_scale(0.1 * scale);
                config.seed = seed;
                gtpq_datagen::generate_xmark(&config)
            }
            Dataset::Embed => {
                let base = gtpq_datagen::EmbedConfig::default();
                gtpq_datagen::generate_embed(&gtpq_datagen::EmbedConfig {
                    clusters: ((base.clusters as f64 * scale).round() as usize).max(2),
                    seed,
                    ..base
                })
            }
        }
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Dataset to generate and serve.
    pub dataset: Dataset,
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Pinned reachability backend; `None` = auto-select from graph stats.
    pub backend: Option<BackendKind>,
    /// Serve this `.gtpq` snapshot (mapped zero-copy) instead of generating
    /// `dataset`; `--dataset`/`--scale`/`--seed` are ignored when set.
    pub snapshot: Option<String>,
    /// One-shot query; `None` starts the REPL.
    pub query: Option<String>,
    /// Whether to print per-query [`EvalStats`](gtpq_core::EvalStats).
    pub show_stats: bool,
    /// Result-row window pushed down into the engine per query.
    pub limit: usize,
    /// Per-query deadline in milliseconds; `None` = no deadline.
    pub timeout_ms: Option<u64>,
    /// Intra-query parallelism degree; `None` = the service default (machine
    /// cores), `Some(1)` forces serial runs.
    pub threads: Option<usize>,
    /// Slow-query-log threshold override: outer `None` keeps the service
    /// default (100ms), `Some(None)` disables the log (`--slow-ms off`),
    /// `Some(Some(ms))` sets the threshold.
    pub slow_ms: Option<Option<u64>>,
    /// With `--query`: trace the query and write Chrome `trace_event` JSON
    /// to this path.  Also turns tracing on for the session.
    pub trace_out: Option<String>,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            dataset: Dataset::Dblp,
            scale: 1.0,
            seed: 42,
            backend: None,
            snapshot: None,
            query: None,
            show_stats: false,
            limit: 20,
            timeout_ms: None,
            threads: None,
            slow_ms: None,
            trace_out: None,
            help: false,
        }
    }
}

impl CliOptions {
    /// Parses command-line arguments (everything after the binary name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value_of = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--dataset" => opts.dataset = Dataset::parse(&value_of("--dataset")?)?,
                "--scale" => {
                    let v = value_of("--scale")?;
                    opts.scale = v
                        .parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| format!("invalid --scale `{v}`"))?;
                }
                "--seed" => {
                    let v = value_of("--seed")?;
                    opts.seed = v.parse().map_err(|_| format!("invalid --seed `{v}`"))?;
                }
                "--backend" => {
                    let v = value_of("--backend")?;
                    opts.backend = parse_backend(&v)?;
                }
                "--snapshot" => opts.snapshot = Some(value_of("--snapshot")?),
                "--query" => opts.query = Some(value_of("--query")?),
                "--stats" => opts.show_stats = true,
                "--limit" => {
                    let v = value_of("--limit")?;
                    opts.limit = v
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("invalid --limit `{v}` (expected N > 0)"))?;
                }
                "--timeout" => {
                    let v = value_of("--timeout")?;
                    opts.timeout_ms = Some(
                        v.parse()
                            .map_err(|_| format!("invalid --timeout `{v}` (expected ms)"))?,
                    );
                }
                "--threads" => {
                    let v = value_of("--threads")?;
                    opts.threads = Some(
                        v.parse()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("invalid --threads `{v}` (expected N > 0)"))?,
                    );
                }
                "--slow-ms" => {
                    let v = value_of("--slow-ms")?;
                    opts.slow_ms = Some(match v.as_str() {
                        "off" | "none" => None,
                        _ => Some(v.parse().map_err(|_| {
                            format!("invalid --slow-ms `{v}` (expected ms or off)")
                        })?),
                    });
                }
                "--trace-out" => opts.trace_out = Some(value_of("--trace-out")?),
                "--help" | "-h" => opts.help = true,
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
        }
        Ok(opts)
    }
}

/// Parses a `--backend` argument; `auto` means auto-selection (`None`).
pub fn parse_backend(s: &str) -> Result<Option<BackendKind>, String> {
    let kind = match s {
        "auto" => return Ok(None),
        "closure" => BackendKind::Closure,
        "3hop" => BackendKind::ThreeHop,
        "chain" => BackendKind::Chain,
        "contour" => BackendKind::Contour,
        "sspi" => BackendKind::Sspi,
        "interval" => BackendKind::Interval,
        other => {
            return Err(format!(
                "unknown backend `{other}` (expected auto, closure, 3hop, chain, \
                 contour, sspi or interval)"
            ))
        }
    };
    Ok(Some(kind))
}

/// What the REPL should do after handling one input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Keep reading input; the string is the rendered output.
    Continue(String),
    /// Exit the REPL.
    Quit,
}

/// A loaded dataset plus the query service answering over it — the state
/// behind both the REPL and the one-shot mode.
pub struct Session {
    service: QueryService,
    handle: Arc<GraphHandle>,
    /// Where the graph came from, for the banner: a dataset name or
    /// `snapshot PATH`.
    source: String,
    show_stats: bool,
    limit: Option<usize>,
    timeout: Option<Duration>,
    threads: Option<usize>,
    trace_on: bool,
    last_trace: Option<Trace>,
}

impl Session {
    /// Builds the session described by `opts`: generates the dataset — or,
    /// with `--snapshot`, maps a saved `.gtpq` file zero-copy — and wires the
    /// service on top.  `Err` carries the rendered diagnostic when the
    /// snapshot cannot be opened.
    pub fn new(opts: &CliOptions) -> Result<Self, String> {
        let (handle, source) = match &opts.snapshot {
            Some(path) => {
                let snapshot = GraphSnapshot::open_mmap(path)
                    .map_err(|e| format!("cannot open snapshot `{path}`: {e}"))?;
                // The mapped snapshot seeds a live handle: reads serve from
                // the mapping, while `:ingest` commits copy-on-write epochs
                // that never touch the file.
                let handle = GraphHandle::from_snapshot(snapshot, MutationConfig::default());
                (Arc::new(handle), format!("snapshot {path}"))
            }
            None => {
                let handle = GraphHandle::new(opts.dataset.generate(opts.scale, opts.seed));
                (Arc::new(handle), opts.dataset.name().to_owned())
            }
        };
        let mut config = ServiceConfig {
            backend: opts.backend,
            ..ServiceConfig::default()
        };
        if let Some(threshold) = opts.slow_ms {
            config.slow_query_threshold = threshold.map(Duration::from_millis);
        }
        let service = QueryService::live_with_config(Arc::clone(&handle), config);
        Ok(Self {
            service,
            handle,
            source,
            show_stats: opts.show_stats,
            limit: Some(opts.limit.max(1)),
            timeout: opts.timeout_ms.map(Duration::from_millis),
            threads: opts.threads,
            trace_on: opts.trace_out.is_some(),
            last_trace: None,
        })
    }

    /// Writes the current graph epoch as a `.gtpq` binary snapshot at
    /// `path`; returns the confirmation line for the REPL (or main) to
    /// print.  The snapshot captures the *committed* state — pending
    /// uncommitted mutations are not included.  The write is atomic (temp
    /// file + rename), and saving onto the file that backs a `--snapshot`
    /// session's own live mapping is refused with a diagnostic.
    pub fn save_snapshot(&self, path: &str) -> Result<String, String> {
        let snapshot = self.handle.snapshot();
        snapshot
            .save(path)
            .map_err(|e| format!("cannot save snapshot `{path}`: {e}"))?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let g = snapshot.graph();
        Ok(format!(
            "saved epoch {}: {} nodes, {} edges ({} bytes) to {path}",
            snapshot.epoch(),
            g.node_count(),
            g.edge_count(),
            bytes,
        ))
    }

    /// The span tree of the most recent traced query, if tracing was on.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// Writes the last recorded trace to `path` as Chrome `trace_event`
    /// JSON; returns the confirmation line for the REPL (or main) to print.
    pub fn save_trace(&self, path: &str) -> Result<String, String> {
        let trace = self.last_trace.as_ref().ok_or_else(|| {
            "no trace recorded yet (turn on with :trace on, then run a query)".to_owned()
        })?;
        let json = trace.to_chrome_json();
        std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        Ok(format!(
            "wrote {} span{} ({} bytes) to {path}",
            trace.spans.len(),
            if trace.spans.len() == 1 { "" } else { "s" },
            json.len(),
        ))
    }

    /// The underlying query service (tests compare REPL answers against
    /// direct builder-constructed evaluation through this).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// The live mutation handle behind the service (tests drive commits
    /// through this to exercise epoch rotation).
    pub fn graph_handle(&self) -> &Arc<GraphHandle> {
        &self.handle
    }

    /// Applies `epochs` committed batches of `ops_per_epoch` generated
    /// mutations to the live graph and reports what the incremental index
    /// maintenance did.  The stream seed advances with the graph epoch, so
    /// repeated `:ingest` calls produce different (but reproducible)
    /// mutations.
    pub fn ingest(&self, epochs: usize, ops_per_epoch: usize) -> String {
        let before = self.handle.stats();
        let cfg = UpdateStreamConfig {
            seed: self.handle.epoch(),
            epochs,
            ops_per_epoch,
            ..UpdateStreamConfig::default()
        };
        let stream = update_stream(&self.service.graph(), &cfg);
        for batch in &stream {
            apply_ops(&self.handle, batch);
            self.handle.commit();
        }
        let after = self.handle.stats();
        // Reading the graph through the service rotates its generation
        // state, so the next query answers for the new epoch immediately.
        let g = self.service.graph();
        format!(
            "ingested {} epoch{} of {} ops: +{} nodes, +{} edges, {} attr upserts\n\
             maintenance: csr {} merged / {} rebuilt, index {} merged / {} rebuilt, \
             condensation {} fast / {} re-run\n\
             graph now at epoch {}: {} nodes, {} edges",
            epochs,
            if epochs == 1 { "" } else { "s" },
            ops_per_epoch,
            after.nodes_inserted - before.nodes_inserted,
            after.edges_inserted - before.edges_inserted,
            after.attrs_upserted - before.attrs_upserted,
            after.csr_merges - before.csr_merges,
            after.csr_rebuilds - before.csr_rebuilds,
            after.index_merges - before.index_merges,
            after.index_rebuilds - before.index_rebuilds,
            after.condensation_fast - before.condensation_fast,
            after.condensation_rebuilds - before.condensation_rebuilds,
            self.handle.epoch(),
            g.node_count(),
            g.edge_count(),
        )
    }

    /// One line describing the loaded graph and backend, shown at REPL start.
    pub fn banner(&self) -> String {
        let g = self.service.graph();
        let why = self
            .service
            .backend_selection()
            .map(|s| format!(" (auto: {})", s.reason))
            .unwrap_or_default();
        format!(
            "dataset {} — {} nodes, {} edges; backend {}{}",
            self.source,
            g.node_count(),
            g.edge_count(),
            self.service.backend_name(),
            why
        )
    }

    /// Handles one complete REPL input: a `:command` or a query text.
    pub fn handle(&mut self, input: &str) -> Outcome {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Outcome::Continue(String::new());
        }
        if let Some(command) = trimmed.strip_prefix(':') {
            self.handle_command(command)
        } else {
            Outcome::Continue(self.run_query(trimmed))
        }
    }

    fn handle_command(&mut self, command: &str) -> Outcome {
        let (word, rest) = match command.split_once(char::is_whitespace) {
            Some((w, r)) => (w, r.trim()),
            None => (command, ""),
        };
        let out = match word {
            "q" | "quit" | "exit" => return Outcome::Quit,
            "help" => USAGE.to_owned(),
            "backend" => {
                let why = self
                    .service
                    .backend_selection()
                    .map(|s| format!(" (auto-selected: {})", s.reason))
                    .unwrap_or_else(|| " (pinned)".to_owned());
                format!("backend: {}{}", self.service.backend_name(), why)
            }
            "metrics" => {
                let m = self.service.metrics();
                let mut backends = self.service.built_backends();
                backends.sort_unstable();
                format!(
                    "queries: {} ({} hits, {} misses, hit rate {:.0}%)\n\
                     requests: {} timed out, {} cancelled, {} truncated by limit\n\
                     engine time: {:.3?} (candidates {:.3?}, prune {:.3?}, \
                     matching {:.3?}, enumerate {:.3?})\n\
                     planner: {:.3?} planning, {} plan hits / {} misses, \
                     estimation error {:.0}%\n\
                     index: {} hits, {} scanned nodes, {} lookups; \
                     backends built: {}\n\
                     enumerated rows: {} ({} emitted)\n\
                     cached result sets: {}, cached plans: {}\n\
                     latency: p50 {:.3?}, p90 {:.3?}, p99 {:.3?}, \
                     p999 {:.3?} over {} requests\n\
                     first row: p50 {:.3?}, p99 {:.3?} over {} streamed runs\n\
                     last {:?}: {:.1} qps, hit rate {:.0}%\n\
                     aborted runs: {} ({:.3?} engine time discarded)",
                    m.queries,
                    m.cache_hits,
                    m.cache_misses,
                    100.0 * m.hit_rate(),
                    m.timed_out,
                    m.cancelled,
                    m.rows_truncated,
                    m.eval_time,
                    m.candidate_time,
                    m.prune_down_time + m.prune_up_time,
                    m.matching_time,
                    m.enumerate_time,
                    m.plan_time,
                    m.plan_cache_hits,
                    m.plan_cache_misses,
                    100.0 * m.estimation_error(),
                    m.index_hits,
                    m.scanned_nodes,
                    m.index_lookups,
                    backends.join(", "),
                    m.enumerated_rows,
                    m.result_tuples,
                    self.service.cached_results(),
                    self.service.cached_plans(),
                    m.latency_percentile(0.50),
                    m.latency_percentile(0.90),
                    m.latency_percentile(0.99),
                    m.latency_percentile(0.999),
                    m.latency.count,
                    m.ttfr_percentile(0.50),
                    m.ttfr_percentile(0.99),
                    m.ttfr.count,
                    m.recent_window,
                    m.recent_qps,
                    100.0 * m.recent_hit_rate(),
                    m.aborted,
                    m.aborted_eval_time,
                ) + &format!(
                    "\ngraph: epoch {}, {} rotation{}, {} stale cache evictions",
                    m.graph_epoch,
                    m.epoch_rotations,
                    if m.epoch_rotations == 1 { "" } else { "s" },
                    m.stale_evictions,
                )
            }
            "ingest" => {
                let mut parts = rest.split_whitespace();
                let epochs = match parts.next() {
                    None => 1,
                    Some(w) => match w.parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            return Outcome::Continue(format!(
                                "expected `:ingest [EPOCHS] [OPS]` (both > 0), got `{rest}`"
                            ))
                        }
                    },
                };
                let ops = match parts.next() {
                    None => 32,
                    Some(w) => match w.parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            return Outcome::Continue(format!(
                                "expected `:ingest [EPOCHS] [OPS]` (both > 0), got `{rest}`"
                            ))
                        }
                    },
                };
                self.ingest(epochs, ops)
            }
            "save" => {
                if rest.is_empty() {
                    "expected `:save PATH`".to_owned()
                } else {
                    match self.save_snapshot(rest) {
                        Ok(line) | Err(line) => line,
                    }
                }
            }
            "stats" => {
                self.show_stats = match rest {
                    "on" => true,
                    "off" => false,
                    "" => !self.show_stats,
                    other => {
                        return Outcome::Continue(format!(
                            "expected `:stats on` or `:stats off`, got `{other}`"
                        ))
                    }
                };
                format!("stats {}", if self.show_stats { "on" } else { "off" })
            }
            "limit" => match rest {
                "none" | "off" => {
                    self.limit = None;
                    "limit none (full answers)".to_owned()
                }
                _ => match rest.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        self.limit = Some(n);
                        format!("limit {n}")
                    }
                    _ => format!("expected `:limit N` (N > 0) or `:limit none`, got `{rest}`"),
                },
            },
            "timeout" => match rest {
                "off" | "none" => {
                    self.timeout = None;
                    "timeout off".to_owned()
                }
                _ => match rest.parse::<u64>() {
                    Ok(ms) => {
                        self.timeout = Some(Duration::from_millis(ms));
                        format!("timeout {ms}ms")
                    }
                    Err(_) => format!("expected `:timeout MS` or `:timeout off`, got `{rest}`"),
                },
            },
            "threads" => match rest {
                "" => match self.threads {
                    Some(1) => "threads 1 (serial)".to_owned(),
                    Some(n) => format!("threads {n}"),
                    None => "threads auto (service default: machine cores)".to_owned(),
                },
                _ => match rest.parse::<usize>() {
                    Ok(1) => {
                        self.threads = Some(1);
                        "threads 1 (serial)".to_owned()
                    }
                    Ok(n) if n > 1 => {
                        self.threads = Some(n);
                        format!("threads {n}")
                    }
                    _ => format!("expected `:threads N` (N >= 1), got `{rest}`"),
                },
            },
            "trace" => match rest {
                "" => match &self.last_trace {
                    Some(trace) => format!(
                        "tracing {}\n{}",
                        if self.trace_on { "on" } else { "off" },
                        trace.render_tree().trim_end(),
                    ),
                    None => format!(
                        "tracing {}; no trace recorded yet{}",
                        if self.trace_on { "on" } else { "off" },
                        if self.trace_on {
                            " (run a query)"
                        } else {
                            " (`:trace on`, then run a query)"
                        },
                    ),
                },
                "on" => {
                    self.trace_on = true;
                    "trace on (next query records a span tree; view with :trace)".to_owned()
                }
                "off" => {
                    self.trace_on = false;
                    "trace off".to_owned()
                }
                _ => match rest.strip_prefix("save") {
                    Some(path) if !path.trim().is_empty() => match self.save_trace(path.trim()) {
                        Ok(line) | Err(line) => line,
                    },
                    _ => format!("expected `:trace [on|off|save PATH]`, got `{rest}`"),
                },
            },
            "slowlog" => {
                let entries = self.service.slow_queries();
                if entries.is_empty() {
                    "slow-query log is empty".to_owned()
                } else {
                    let mut out = String::new();
                    for (i, e) in entries.iter().enumerate() {
                        let outcome = match &e.outcome {
                            SlowOutcome::Completed { rows, truncated } => format!(
                                "ok, {} row{}{}",
                                rows,
                                if *rows == 1 { "" } else { "s" },
                                if *truncated { " (truncated)" } else { "" },
                            ),
                            SlowOutcome::TimedOut => "timed out".to_owned(),
                            SlowOutcome::Cancelled => "cancelled".to_owned(),
                        };
                        if i > 0 {
                            out.push('\n');
                        }
                        let _ = writeln!(
                            out,
                            "#{} {:.3?} — {} — {}",
                            i + 1,
                            e.latency,
                            outcome,
                            e.query,
                        );
                        if let Some(plan) = &e.plan {
                            for line in plan.trim_end().lines() {
                                let _ = writeln!(out, "    {line}");
                            }
                        }
                    }
                    out.truncate(out.trim_end().len());
                    out
                }
            }
            "explain" => {
                let (analyze, text) = match rest.strip_prefix("analyze") {
                    Some(tail) if tail.starts_with(char::is_whitespace) || tail.is_empty() => {
                        (true, tail.trim())
                    }
                    _ => (false, rest),
                };
                match text.parse::<Gtpq>() {
                    Ok(q) => self.explain(&q, analyze),
                    // `analyze` might be the query's own root label rather
                    // than the keyword: if the keyword-stripped tail does
                    // not parse but the full input does, explain that.
                    Err(e) => match analyze.then(|| rest.parse::<Gtpq>()) {
                        Some(Ok(q)) => self.explain(&q, false),
                        _ => e.render(text),
                    },
                }
            }
            other => format!("unknown command `:{other}` (try :help)"),
        };
        Outcome::Continue(out)
    }

    /// Renders `:explain` output: the parsed query tree, its shape summary,
    /// and the physical plan with per-operator estimates.  With `analyze`,
    /// the query is executed (bypassing the result cache) and each
    /// operator's actual row count and time are appended, followed by the
    /// run's stats summary.
    fn explain(&self, q: &Gtpq, analyze: bool) -> String {
        let mut out = q.to_pretty_string();
        let _ = write!(
            out,
            "\n{} nodes, {} output nodes; {}\ncanonical: {}\n\n",
            q.size(),
            q.output_nodes().len(),
            if q.is_conjunctive() {
                "conjunctive"
            } else if q.is_union_conjunctive() {
                "union-conjunctive (uses OR)"
            } else {
                "general (uses NOT)"
            },
            q,
        );
        if analyze {
            let request = QueryRequest::query(q.clone())
                .with_stats()
                .with_plan()
                .with_bypass_cache();
            match self.service.submit(&request) {
                Err(e) => {
                    let _ = write!(out, "{e}");
                }
                Ok(outcome) => {
                    let stats = outcome.stats.unwrap_or_default();
                    let plan = outcome.plan.expect("requested with_plan");
                    let _ = write!(out, "{}", plan.render_with_actuals(q, &stats));
                    let _ = write!(
                        out,
                        "\n{} row{} in {:.3?} (estimation error {:.0}%)\n{}",
                        outcome.rows.len(),
                        if outcome.rows.len() == 1 { "" } else { "s" },
                        stats.total_time(),
                        100.0 * stats.estimation_error(),
                        render_stats(&stats),
                    );
                }
            }
        } else {
            let plan = self.service.plan_for(q);
            let _ = write!(out, "{}", plan.render(q));
        }
        out
    }

    /// Parses and evaluates one query, rendering a result table (and stats,
    /// when enabled) or a caret-annotated parse error.
    pub fn run_query(&mut self, text: &str) -> String {
        match self.try_query(text) {
            Ok(rendered) | Err(rendered) => rendered,
        }
    }

    /// Like [`run_query`](Self::run_query), but keeps success and failure
    /// apart: `Err` carries the rendered diagnostic — a caret-annotated
    /// parse error, a timeout, a cancellation or an unsatisfiability notice
    /// (the one-shot mode turns it into a non-zero exit code).
    ///
    /// The session's limit is *pushed down*: the engine's enumerator stops
    /// after `limit` rows instead of materializing the full answer and
    /// trimming at print time, and the session's timeout rides along as the
    /// request deadline.
    pub fn try_query(&mut self, text: &str) -> Result<String, String> {
        // Parse once up front: the request carries the parsed tree, and the
        // same `Gtpq` later renders the result table's column names.
        let q = text.parse::<Gtpq>().map_err(|e| e.render(text))?;
        let mut request = QueryRequest::query(q.clone()).with_stats();
        if let Some(limit) = self.limit {
            request = request.with_limit(limit);
        }
        if let Some(budget) = self.timeout {
            request = request.with_deadline(budget);
        }
        if let Some(threads) = self.threads {
            request = request.with_threads(threads);
        }
        if self.trace_on {
            request = request.with_trace();
        }
        let outcome = self.service.submit(&request).map_err(|e| match e {
            QueryError::Parse(parse) => parse.render(text),
            QueryError::Timeout { budget } => {
                format!(
                    "query timed out after {:?} (raise with :timeout MS)",
                    budget
                )
            }
            other => other.to_string(),
        })?;
        if let Some(trace) = &outcome.trace {
            self.last_trace = Some(trace.clone());
        }
        let mut out = render_table(&self.service.graph(), &q, &outcome.rows, outcome.truncated);
        if self.show_stats {
            let stats = outcome.stats.unwrap_or_default();
            let _ = write!(out, "\n{}", render_stats(&stats));
        }
        Ok(out)
    }
}

/// Renders a result set as an aligned text table; one column per output
/// node (headed by its display name), one row per result tuple.  The rows
/// were already limited by the engine's pushdown; `truncated` marks that
/// more rows exist past the fetched window.
pub fn render_table(
    g: &DataGraph,
    q: &Gtpq,
    results: &gtpq_query::ResultSet,
    truncated: bool,
) -> String {
    let headers: Vec<String> = results.output.iter().map(|&u| q.display_name(u)).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for tuple in results.iter() {
        rows.push(
            tuple
                .iter()
                .map(|&v| match g.attribute_value(v, gtpq_graph::LABEL_ATTR) {
                    Some(label) => format!("v{}:{}", v.0, label),
                    None => format!("v{}", v.0),
                })
                .collect(),
        );
    }
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r[i].chars().count())
                .chain([h.chars().count()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<width$}", width = widths[i]);
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, &headers);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&mut out, &rule);
    for row in &rows {
        write_row(&mut out, row);
    }
    let _ = write!(
        out,
        "{} row{}{}",
        results.len(),
        if results.len() == 1 { "" } else { "s" },
        if truncated {
            " (limit reached; more rows exist — raise with :limit)"
        } else {
            ""
        }
    );
    out
}

/// Renders per-query [`EvalStats`](gtpq_core::EvalStats) as two short lines.
pub fn render_stats(stats: &gtpq_core::EvalStats) -> String {
    if stats.total_time() == std::time::Duration::ZERO && stats.initial_candidates == 0 {
        return "stats: served from the result cache".to_owned();
    }
    format!(
        "stats: {} candidates → {} after ↓prune → {} after ↑prune; \
         index serve rate {:.0}%\n\
         time: {:.3?} total (plan {:.3?}, candidates {:.3?}, prune {:.3?}, \
         matching {:.3?}, enumerate {:.3?})",
        stats.initial_candidates,
        stats.candidates_after_downward,
        stats.candidates_after_upward,
        100.0 * stats.index_serve_rate(),
        stats.total_time(),
        stats.plan_time,
        stats.candidate_time,
        stats.prune_down_time + stats.prune_up_time,
        stats.matching_graph_time,
        stats.enumerate_time,
    )
}

/// Whether every `(`, `[` and `{` in `s` has been closed, ignoring string
/// literals and `#` comments.  The REPL keeps reading lines until the buffer
/// is balanced, so queries can span multiple lines.
///
/// String literals cannot span lines (the tokenizer reports `unterminated
/// string literal` at a newline), so a quote with no closing quote on its
/// own line counts as plain text here — the broken chunk still balances,
/// gets dispatched, and the parser reports the error, instead of one bad
/// quote silently swallowing every following line.
pub fn delimiters_balanced(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut depth = 0i64;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                // Find the closing quote on the same line; escapes cannot
                // hide a newline.
                let mut j = i + 1;
                let mut closed = None;
                while j < bytes.len() && bytes[j] != b'\n' {
                    match bytes[j] {
                        b'\\' if bytes.get(j + 1) == Some(&b'\n') => break,
                        b'\\' => j += 2,
                        b'"' => {
                            closed = Some(j);
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = match closed {
                    Some(j) => j + 1,
                    None => i + 1, // unterminated: not a string after all
                };
            }
            b'(' | b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b')' | b']' | b'}' => {
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    depth <= 0
}

/// Runs the REPL: reads lines from `input`, accumulates them until all
/// brackets are balanced, and writes rendered output to `out`.  When
/// `interactive`, prompts (`gtpq> ` / `  ...> `) are printed too.
pub fn repl(
    session: &mut Session,
    input: impl BufRead,
    mut out: impl Write,
    interactive: bool,
) -> std::io::Result<()> {
    if interactive {
        writeln!(out, "{}", session.banner())?;
        writeln!(out, "type :help for commands, :quit to exit")?;
        write!(out, "gtpq> ")?;
        out.flush()?;
    }
    let mut buffer = String::new();
    for line in input.lines() {
        let line = line?;
        buffer.push_str(&line);
        buffer.push('\n');
        if delimiters_balanced(&buffer) {
            let chunk = std::mem::take(&mut buffer);
            match session.handle(&chunk) {
                Outcome::Quit => return Ok(()),
                Outcome::Continue(text) => {
                    if !text.is_empty() {
                        writeln!(out, "{text}")?;
                    }
                }
            }
        }
        if interactive {
            write!(
                out,
                "{}",
                if buffer.is_empty() {
                    "gtpq> "
                } else {
                    "  ...> "
                }
            )?;
            out.flush()?;
        }
    }
    // Evaluate a trailing unbalanced chunk so its parse error is reported.
    if !buffer.trim().is_empty() {
        if let Outcome::Continue(text) = session.handle(&buffer) {
            if !text.is_empty() {
                writeln!(out, "{text}")?;
            }
        }
    }
    Ok(())
}

/// One-shot mode: evaluates `query` and writes the result table (plus stats
/// when enabled) to `out`.  Returns `Err` with the rendered diagnostic when
/// the query does not parse.
pub fn run_once(
    session: &mut Session,
    query: &str,
    mut out: impl Write,
) -> std::io::Result<Result<(), String>> {
    match session.try_query(query) {
        Err(diagnostic) => Ok(Err(diagnostic)),
        Ok(rendered) => {
            writeln!(out, "{rendered}")?;
            Ok(Ok(()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_with_defaults_and_overrides() {
        let opts = CliOptions::parse(Vec::new()).unwrap();
        assert_eq!(opts.dataset, Dataset::Dblp);
        assert_eq!(opts.limit, 20);
        let opts = CliOptions::parse(
            [
                "--dataset",
                "arxiv",
                "--scale",
                "0.5",
                "--seed",
                "7",
                "--backend",
                "closure",
                "--stats",
                "--limit",
                "5",
                "--query",
                "a*",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.dataset, Dataset::Arxiv);
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.backend, Some(BackendKind::Closure));
        assert!(opts.show_stats);
        assert_eq!(opts.limit, 5);
        assert_eq!(opts.query.as_deref(), Some("a*"));
    }

    #[test]
    fn observability_flags_parse() {
        let opts =
            CliOptions::parse(["--slow-ms", "250", "--trace-out", "/tmp/t.json"].map(String::from))
                .unwrap();
        assert_eq!(opts.slow_ms, Some(Some(250)));
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/t.json"));
        let opts = CliOptions::parse(["--slow-ms", "off"].map(String::from)).unwrap();
        assert_eq!(opts.slow_ms, Some(None));
        let opts = CliOptions::parse(Vec::new()).unwrap();
        assert_eq!(opts.slow_ms, None, "default keeps the service threshold");
        assert!(opts.trace_out.is_none());
        assert!(CliOptions::parse(["--slow-ms".into(), "soon".into()]).is_err());
        assert!(CliOptions::parse(["--trace-out".into()]).is_err());
    }

    #[test]
    fn options_reject_bad_input() {
        assert!(CliOptions::parse(["--dataset".into(), "nope".into()]).is_err());
        assert!(CliOptions::parse(["--scale".into(), "-1".into()]).is_err());
        assert!(CliOptions::parse(["--backend".into(), "nope".into()]).is_err());
        assert!(CliOptions::parse(["--what".into()]).is_err());
        assert!(CliOptions::parse(["--seed".into()]).is_err());
        assert!(CliOptions::parse(["--limit".into(), "0".into()]).is_err());
        assert!(CliOptions::parse(["--threads".into(), "0".into()]).is_err());
        assert!(CliOptions::parse(["--threads".into(), "many".into()]).is_err());
    }

    #[test]
    fn threads_flag_parses() {
        let opts = CliOptions::parse(["--threads", "4"].map(String::from)).unwrap();
        assert_eq!(opts.threads, Some(4));
        let opts = CliOptions::parse(Vec::new()).unwrap();
        assert_eq!(opts.threads, None, "default defers to the service");
    }

    #[test]
    fn balance_tracking_handles_strings_and_comments() {
        assert!(delimiters_balanced("a { /b* }"));
        assert!(!delimiters_balanced("a { /b*"));
        assert!(!delimiters_balanced("a { where (//b"));
        assert!(delimiters_balanced("a { /\"un{bal\" }"));
        assert!(delimiters_balanced("a # { comment\n"));
        assert!(delimiters_balanced("} } stray closers never block input"));
        // A quote with no closer on its line is plain text, so a broken line
        // balances (and is dispatched to the parser) instead of swallowing
        // everything after it.
        assert!(delimiters_balanced("a* { /\"oops }"));
        assert!(delimiters_balanced("a* { /\"oops }\nb*\n"));
        assert!(!delimiters_balanced("a* { /\"closed\""));
    }
}
