//! End-to-end observability tests at the service boundary: span-tree
//! structure and timing, Chrome `trace_event` JSON round-tripping through
//! the crate's own parser, Prometheus text well-formedness, slow-query-log
//! capture and aborted-run accounting.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gtpq_query::fixtures::{example_graph, example_query};
use gtpq_service::{QueryError, QueryRequest, QueryService, ServiceConfig, SlowOutcome};

fn service() -> QueryService {
    QueryService::new(Arc::new(example_graph()))
}

#[test]
fn traced_stage_spans_nest_and_sum_to_the_request() {
    let svc = service();
    let started = Instant::now();
    let outcome = svc
        .submit(
            &QueryRequest::query(example_query())
                .with_trace()
                .with_stats(),
        )
        .unwrap();
    let elapsed = started.elapsed();
    let trace = outcome.trace.expect("requested a trace");

    let root = trace.root().expect("request root span");
    assert_eq!(root.name, "request");
    // The root span covers (almost) the whole submit, and never more than
    // the latency observed around it.
    assert!(root.dur <= elapsed, "{:?} > {elapsed:?}", root.dur);

    // Every span nests under the root, directly or transitively.
    for span in &trace.spans {
        let mut at = span;
        while let Some(parent) = at.parent {
            at = &trace.spans[parent];
        }
        assert_eq!(
            at.name, "request",
            "{} must descend from the root",
            span.name
        );
    }

    // The engine stages run sequentially, so the direct children of the
    // root sum to no more than the root's own duration.
    let child_sum: Duration = trace.children_of(0).map(|s| s.dur).sum();
    assert!(
        child_sum <= root.dur + Duration::from_micros(50),
        "children sum {child_sum:?} exceeds root {:?}",
        root.dur
    );
    for stage in ["plan", "candidates", "prune_down", "prune_up", "matching"] {
        let span = trace.span(stage).unwrap_or_else(|| panic!("span {stage}"));
        assert_eq!(span.parent, Some(0), "{stage} nests under the root");
        assert!(span.dur <= root.dur);
    }
}

#[test]
fn chrome_trace_json_round_trips_through_a_parser() {
    let svc = service();
    let outcome = svc
        .submit(&QueryRequest::query(example_query()).with_trace())
        .unwrap();
    let trace = outcome.trace.expect("requested a trace");
    let json = trace.to_chrome_json();

    let value = gtpq_obs::json::parse(&json).expect("well-formed JSON");
    let events = value
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.spans.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(event.get("ts").and_then(|t| t.as_f64()).is_some());
        assert!(event.get("dur").and_then(|d| d.as_f64()).is_some());
        assert!(event.get("name").and_then(|n| n.as_str()).is_some());
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in ["request", "plan", "candidates", "matching"] {
        assert!(names.contains(&expected), "{expected} missing: {names:?}");
    }
}

#[test]
fn prometheus_page_is_well_formed_after_traffic() {
    let svc = service();
    let request = QueryRequest::query(example_query());
    svc.submit(&request).unwrap(); // miss
    svc.submit(&request).unwrap(); // hit
    let page = svc.metrics().render_prometheus();

    // Every non-comment line is `name{labels} value` with a numeric value.
    for line in page
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "non-numeric value in: {line}"
        );
    }
    assert!(page.contains("# TYPE gtpq_queries_total counter"), "{page}");
    assert!(page.contains("gtpq_cache_hits_total 1"), "{page}");
    assert!(page.contains("gtpq_cache_misses_total 1"), "{page}");
    assert!(
        page.contains("gtpq_request_latency_seconds_bucket{le=\"+Inf\"} 2"),
        "{page}"
    );
    assert!(
        page.contains("gtpq_stage_seconds_bucket{stage=\"candidates\""),
        "{page}"
    );
}

#[test]
fn slow_query_log_captures_text_and_plan_at_the_service_level() {
    let svc = QueryService::with_config(
        Arc::new(example_graph()),
        ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            ..ServiceConfig::default()
        },
    );
    svc.submit(&QueryRequest::text("a1 { //d1* }")).unwrap();
    let entries = svc.slow_queries();
    assert_eq!(entries.len(), 1);
    let entry = &entries[0];
    assert!(entry.query.contains("a1"), "{}", entry.query);
    assert!(matches!(
        entry.outcome,
        SlowOutcome::Completed { rows, .. } if rows > 0
    ));
    let plan = entry.plan.as_deref().expect("executed plan recorded");
    assert!(plan.contains("actual"), "{plan}");
}

#[test]
fn aborted_runs_keep_latency_and_stage_accounting_separate() {
    let svc = service();
    let err = svc
        .submit(&QueryRequest::query(example_query()).with_deadline(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, QueryError::Timeout { .. }));
    let m = svc.metrics();
    assert_eq!(m.aborted, 1);
    assert_eq!(m.timed_out, 1);
    assert_eq!(m.cache_misses, 0, "an aborted run is not a completed miss");
    assert_eq!(m.latency.count, 1, "the latency histogram sees every exit");
    assert_eq!(m.ttfr.count, 0, "no row was ever produced");
    // The aborted engine time is tracked, and never pollutes `eval_time`.
    assert_eq!(m.eval_time, Duration::ZERO);
}

#[test]
fn latency_and_ttfr_percentiles_surface_through_submit() {
    let svc = service();
    for _ in 0..4 {
        svc.submit(&QueryRequest::query(example_query()).with_bypass_cache())
            .unwrap();
    }
    let m = svc.metrics();
    assert_eq!(m.latency.count, 4);
    assert!(m.latency_percentile(0.5) > Duration::ZERO);
    assert!(m.latency_percentile(0.5) <= m.latency_percentile(0.99));
    // The example query streams rows, so time-to-first-row was sampled.
    assert_eq!(m.ttfr.count, 4);
    assert!(m.ttfr_percentile(0.5) <= m.latency_percentile(0.999));
}
