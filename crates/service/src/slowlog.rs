//! The slow-query log: a fixed-size ring buffer of the most recent requests
//! whose end-to-end latency crossed
//! [`ServiceConfig::slow_query_threshold`](crate::ServiceConfig::slow_query_threshold).
//!
//! Each entry keeps the canonical query text, the outcome (completed,
//! timed out, cancelled — with row count and truncation for completed
//! requests), the latency, and — for requests that ran the engine — the
//! executed physical plan rendered with actual row counts, so a slow query
//! can be diagnosed after the fact without re-running it.  The ring holds
//! the *most recent* slow queries: once full, the oldest entry is evicted.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a slow request ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlowOutcome {
    /// The request completed and returned rows.
    Completed {
        /// Rows emitted (after the request's window was applied).
        rows: usize,
        /// Whether a `limit` cut the answer short.
        truncated: bool,
    },
    /// The request overran its deadline.
    TimedOut,
    /// The request's cancellation token was triggered.
    Cancelled,
}

/// One slow-query record.
#[derive(Clone, Debug)]
pub struct SlowQueryEntry {
    /// Canonical text of the query (spelling-independent, the result-cache
    /// key), so repeats of one pattern are recognizable at a glance.
    pub query: String,
    /// End-to-end `submit` latency.
    pub latency: Duration,
    /// How the request ended.
    pub outcome: SlowOutcome,
    /// The executed physical plan rendered with actual row counts (partial
    /// actuals for aborted runs); `None` when the engine never ran (e.g. a
    /// slow cache hit).
    pub plan: Option<String>,
    /// When the request finished, as an offset from service creation.
    pub at: Duration,
}

/// Fixed-capacity ring of the most recent slow queries.
#[derive(Debug)]
pub struct SlowQueryLog {
    started: Instant,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    /// An empty log holding at most `capacity` entries (0 disables logging).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            started: Instant::now(),
            capacity,
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    /// Appends an entry, evicting the oldest once the ring is full.
    pub(crate) fn push(
        &self,
        query: String,
        latency: Duration,
        outcome: SlowOutcome,
        plan: Option<String>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let entry = SlowQueryEntry {
            query,
            latency,
            outcome,
            plan,
            at: self.started.elapsed(),
        };
        let mut entries = self.entries.lock().expect("slow log lock poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub(crate) fn entries(&self) -> Vec<SlowQueryEntry> {
        self.entries
            .lock()
            .expect("slow log lock poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let log = SlowQueryLog::new(2);
        for i in 0..3 {
            log.push(
                format!("q{i}"),
                Duration::from_millis(100 + i),
                SlowOutcome::Completed {
                    rows: i as usize,
                    truncated: false,
                },
                None,
            );
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].query, "q1");
        assert_eq!(entries[1].query, "q2");
        assert!(entries[0].at <= entries[1].at);
    }

    #[test]
    fn zero_capacity_disables_logging() {
        let log = SlowQueryLog::new(0);
        log.push(
            "q".into(),
            Duration::from_secs(1),
            SlowOutcome::TimedOut,
            None,
        );
        assert!(log.entries().is_empty());
    }

    #[test]
    fn entries_carry_outcome_and_plan() {
        let log = SlowQueryLog::new(4);
        log.push(
            "a1 { //d1* }".into(),
            Duration::from_millis(250),
            SlowOutcome::Completed {
                rows: 3,
                truncated: true,
            },
            Some("QueryPlan\n  IndexScan u0 (actual 3)".into()),
        );
        log.push(
            "a1 { //e1* }".into(),
            Duration::from_millis(500),
            SlowOutcome::Cancelled,
            None,
        );
        let entries = log.entries();
        assert_eq!(
            entries[0].outcome,
            SlowOutcome::Completed {
                rows: 3,
                truncated: true
            }
        );
        assert!(entries[0].plan.as_deref().unwrap().contains("actual"));
        assert_eq!(entries[1].outcome, SlowOutcome::Cancelled);
    }
}
