//! Canonicalization of GTPQs for result-cache keys.
//!
//! Two syntactically different queries often denote the same pattern: sibling
//! subtrees listed in a different order, structural predicates written
//! `p ∨ q` vs `q ∨ p`, double negations, and so on.  The cache should hit in
//! all those cases, so queries are keyed by a *canonical rendering*:
//!
//! * children of every node are sorted by their own canonical rendering,
//! * structural predicates are renumbered to the sorted child order, put in
//!   NNF, simplified, and rendered with sorted, deduplicated operands,
//! * output nodes are recorded as positions in the canonical pre-order,
//!   separately from the tree shape.
//!
//! The rendering is sound for caching (equal key ⇒ same pattern up to the
//! normalizations above) but deliberately not complete — deeply different
//! but logically equivalent formulas may render differently.  The cache
//! therefore additionally confirms candidate hits with
//! [`gtpq_analysis::equivalent`], which decides true query equivalence
//! (Theorem 4); a missed normalization only costs a cache miss, never a
//! wrong answer.

use std::collections::HashMap;

use gtpq_logic::transform::{rename_vars, simplify, to_nnf};
use gtpq_logic::BoolExpr;
use gtpq_query::{Gtpq, QueryNodeId};

/// The canonical form of a query, as used by the result cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// Canonical rendering of the tree shape and predicates — identical for
    /// queries that differ only in sibling order / formula spelling.  Output
    /// marks are *not* part of the skeleton so result tuples can be permuted
    /// between queries sharing it.
    pub skeleton: String,
    /// Full cache key: skeleton plus output positions in coordinate order.
    pub key: String,
    /// For each output coordinate of the query, the position of its node in
    /// the canonical pre-order of the tree.
    pub output_positions: Vec<usize>,
}

/// Computes the canonical form of `q`.
pub fn canonicalize(q: &Gtpq) -> CanonicalQuery {
    let (skeleton, preorder) = canon_subtree(q, q.root());
    let canon_pos: HashMap<QueryNodeId, usize> =
        preorder.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let output_positions: Vec<usize> = q.output_nodes().iter().map(|u| canon_pos[u]).collect();
    let key = format!(
        "{skeleton}|out:{}",
        output_positions
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    CanonicalQuery {
        skeleton,
        key,
        output_positions,
    }
}

/// Renders the subtree rooted at `u` and returns its canonical pre-order.
fn canon_subtree(q: &Gtpq, u: QueryNodeId) -> (String, Vec<QueryNodeId>) {
    let mut rendered: Vec<(String, Vec<QueryNodeId>, QueryNodeId)> = q
        .children(u)
        .iter()
        .map(|&c| {
            let (s, order) = canon_subtree(q, c);
            (s, order, c)
        })
        .collect();
    // Sort children by canonical rendering; ties (structurally identical
    // siblings) are broken by original id for determinism.
    rendered.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));

    // Renumber the structural predicate's variables to sorted child order.
    let var_map: HashMap<_, _> = rendered
        .iter()
        .enumerate()
        .map(|(i, (_, _, c))| (c.var(), gtpq_logic::VarId(i as u32)))
        .collect();
    let fs = simplify(&to_nnf(&rename_vars(q.fs(u), &var_map)));

    let node = q.node(u);
    let kind = if q.is_backbone(u) { 'B' } else { 'P' };
    let edge = match q.incoming_edge(u) {
        Some(gtpq_query::EdgeKind::Child) => "/",
        Some(gtpq_query::EdgeKind::Descendant) => "//",
        None => ".",
    };
    let mut s = format!(
        "({kind}{edge}[{attr}]{{{fs}}}",
        attr = canon_attr(&node.attr),
        fs = canon_expr(&fs),
    );
    let mut preorder = vec![u];
    for (child_s, child_order, _) in rendered {
        s.push_str(&child_s);
        preorder.extend(child_order);
    }
    s.push(')');
    (s, preorder)
}

/// Renders an attribute predicate *injectively*.
///
/// The cache treats equal keys as proof of equivalence, so this must never
/// map two different predicates to one string.  `Display` is not injective
/// (`Int(5)` and `Str("5")` both render `x = 5`, and unescaped names can
/// smuggle in the key's own delimiters), so each comparison is rendered in
/// its `Debug` form — type-tagged, with escaped strings.  The conjunction is
/// sorted and deduplicated so conjunct order does not change the key.
fn canon_attr(p: &gtpq_query::AttrPredicate) -> String {
    let mut parts: Vec<String> = p.comparisons.iter().map(|c| format!("{c:?}")).collect();
    parts.sort_unstable();
    parts.dedup();
    parts.join(",")
}

/// Renders a (NNF, simplified) formula with sorted, deduplicated operands so
/// commutative/idempotent spellings coincide.
fn canon_expr(e: &BoolExpr) -> String {
    match e {
        BoolExpr::True => "1".into(),
        BoolExpr::False => "0".into(),
        BoolExpr::Var(v) => format!("v{}", v.0),
        BoolExpr::Not(inner) => format!("!{}", canon_expr(inner)),
        BoolExpr::And(items) => {
            let mut parts: Vec<String> = items.iter().map(canon_expr).collect();
            parts.sort_unstable();
            parts.dedup();
            format!("&({})", parts.join(","))
        }
        BoolExpr::Or(items) => {
            let mut parts: Vec<String> = items.iter().map(canon_expr).collect();
            parts.sort_unstable();
            parts.dedup();
            format!("|({})", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};

    use super::*;

    #[test]
    fn sibling_order_does_not_change_the_key() {
        let build = |swap: bool| {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let labels = if swap { ["c", "b"] } else { ["b", "c"] };
            for l in labels {
                let n = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(l));
                b.mark_output(n);
            }
            b.build().unwrap()
        };
        let (q1, q2) = (build(false), build(true));
        let (c1, c2) = (canonicalize(&q1), canonicalize(&q2));
        assert_eq!(c1.skeleton, c2.skeleton);
        // Output coordinates follow mark order, which differs between the two
        // spellings — captured by the positions, not the skeleton.
        assert_eq!(c1.output_positions.len(), 2);
        assert_eq!(
            c1.output_positions
                .iter()
                .rev()
                .copied()
                .collect::<Vec<_>>(),
            c2.output_positions
        );
    }

    #[test]
    fn disjunct_order_does_not_change_the_key() {
        let build = |swap: bool| {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
            let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
            let (x, y) = if swap { (p2, p1) } else { (p1, p2) };
            b.set_structural(
                root,
                BoolExpr::or2(BoolExpr::Var(x.var()), BoolExpr::Var(y.var())),
            );
            b.mark_output(root);
            b.build().unwrap()
        };
        assert_eq!(
            canonicalize(&build(false)).key,
            canonicalize(&build(true)).key
        );
    }

    #[test]
    fn different_patterns_get_different_keys() {
        let build = |label: &str| {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let n = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
            b.mark_output(n);
            b.build().unwrap()
        };
        assert_ne!(canonicalize(&build("b")).key, canonicalize(&build("c")).key);
    }

    #[test]
    fn attr_value_type_is_part_of_the_key() {
        // `Int(5)` and `Str("5")` render identically under `Display`; the
        // key must distinguish them or the cache's "equal key ⇒ equivalent"
        // fast path would serve one query's results to the other.
        let build = |value: gtpq_graph::AttrValue| {
            let mut b = GtpqBuilder::new(AttrPredicate::eq("x", value));
            let root = b.root_id();
            b.mark_output(root);
            b.build().unwrap()
        };
        assert_ne!(
            canonicalize(&build(gtpq_graph::AttrValue::Int(5))).key,
            canonicalize(&build(gtpq_graph::AttrValue::str("5"))).key
        );
    }

    #[test]
    fn conjunct_order_does_not_change_the_key() {
        let build = |swap: bool| {
            let attr = if swap {
                AttrPredicate::label("a").and("x", gtpq_query::CmpOp::Eq, 1.into())
            } else {
                AttrPredicate::eq("x", 1.into()).and(
                    gtpq_graph::LABEL_ATTR,
                    gtpq_query::CmpOp::Eq,
                    "a".into(),
                )
            };
            let mut b = GtpqBuilder::new(attr);
            let root = b.root_id();
            b.mark_output(root);
            b.build().unwrap()
        };
        assert_eq!(
            canonicalize(&build(false)).key,
            canonicalize(&build(true)).key
        );
    }

    #[test]
    fn edge_kind_is_part_of_the_key() {
        let build = |edge: EdgeKind| {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let n = b.backbone_child(root, edge, AttrPredicate::label("b"));
            b.mark_output(n);
            b.build().unwrap()
        };
        assert_ne!(
            canonicalize(&build(EdgeKind::Child)).key,
            canonicalize(&build(EdgeKind::Descendant)).key
        );
    }
}
