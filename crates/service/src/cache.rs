//! LRU result cache keyed by canonical query form.
//!
//! Entries are bucketed by the canonical *skeleton* (tree shape + predicates,
//! no output marks).  A lookup hits when the bucket holds an entry whose
//! output nodes sit at the same canonical positions and whose query is
//! confirmed equivalent by [`gtpq_analysis::equivalent`] — so syntactically
//! different spellings of one pattern share a slot, and a normalization bug
//! can cost a miss but never a wrong answer.  When the incoming query labels
//! or orders its output coordinates differently from the cached one, the
//! tuples are permuted into the caller's coordinate order before being
//! handed out.
//!
//! Eviction is least-recently-used over all entries.  The victim search is a
//! linear scan: capacities are small (hundreds), evictions happen only on
//! insert, and keeping the structure a plain `HashMap` keeps hits — the hot
//! path — allocation-free.

use std::collections::HashMap;
use std::sync::Arc;

use gtpq_core::QueryPlan;
use gtpq_query::{Gtpq, ResultSet};

use crate::canon::CanonicalQuery;

struct CacheEntry {
    key: String,
    query: Arc<Gtpq>,
    output_positions: Vec<usize>,
    results: Arc<ResultSet>,
    last_used: u64,
}

impl CacheEntry {
    /// Whether a query with canonical form `canon` hits this entry.
    ///
    /// Equal full keys prove equivalence outright (canonicalization is
    /// sound), so the common warm path — resubmitting the same query — never
    /// pays for the containment search in [`gtpq_analysis::equivalent`].
    fn matches(&self, canon: &CanonicalQuery, q: &Gtpq) -> bool {
        if !same_position_set(&self.output_positions, &canon.output_positions) {
            return false;
        }
        // The skeleton already matched; this confirms true equivalence
        // (Theorem 4) so a normalization gap cannot produce a stale hit.
        self.key == canon.key || gtpq_analysis::equivalent(q, &self.query)
    }
}

/// An LRU cache from canonicalized queries to shared result sets.
///
/// The cache carries a *graph generation* ([`epoch`](Self::epoch)): every
/// entry it holds was computed against that generation of the data graph.
/// [`invalidate`](Self::invalidate) drops everything and advances the
/// generation when the graph mutates, and [`insert`](Self::insert) refuses
/// entries stamped with an older generation — a request that pinned the
/// previous snapshot and finished after a commit cannot poison the new
/// generation with a pre-write answer.
pub struct ResultCache {
    capacity: usize,
    buckets: HashMap<String, Vec<CacheEntry>>,
    len: usize,
    tick: u64,
    epoch: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` result sets (0 disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            buckets: HashMap::new(),
            len: 0,
            tick: 0,
            epoch: 0,
        }
    }

    /// Number of cached result sets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The graph generation the cached answers belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops every entry and advances the cache to graph generation
    /// `epoch`, returning how many entries were evicted.  Inserts stamped
    /// with an older generation are ignored from then on.
    pub fn invalidate(&mut self, epoch: u64) -> usize {
        let evicted = self.len;
        self.buckets.clear();
        self.len = 0;
        self.epoch = epoch;
        evicted
    }

    /// Looks up `q` (with canonical form `canon`) on behalf of a request
    /// pinned to graph generation `epoch`, returning results in `q`'s own
    /// output coordinates on a hit.
    ///
    /// A request pinned to a generation other than the cache's misses
    /// unconditionally: after a commit, a reader still holding the old
    /// epoch state must not be served an answer computed against the new
    /// graph (the rows would disagree with the epoch the outcome claims).
    ///
    /// A hit through an entry with a different output orientation permutes
    /// the cached tuples once and stores the permuted set as its own entry,
    /// so repeated requests in that spelling are allocation-free after the
    /// first.
    pub fn lookup(
        &mut self,
        epoch: u64,
        canon: &CanonicalQuery,
        q: &Gtpq,
    ) -> Option<Arc<ResultSet>> {
        if epoch != self.epoch {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let bucket = self.buckets.get_mut(&canon.skeleton)?;
        // Prefer the entry in this query's own orientation (equal key) —
        // including orientation entries stored by earlier permuted hits.
        if let Some(entry) = bucket.iter_mut().find(|e| e.key == canon.key) {
            entry.last_used = tick;
            if entry.results.output == q.output_nodes() {
                return Some(Arc::clone(&entry.results));
            }
            return Some(Arc::new(permute_results(
                &entry.results,
                &entry.output_positions,
                canon,
                q,
            )));
        }
        let mut permuted = None;
        for entry in bucket.iter_mut() {
            if !entry.matches(canon, q) {
                continue;
            }
            entry.last_used = tick;
            permuted = Some(Arc::new(permute_results(
                &entry.results,
                &entry.output_positions,
                canon,
                q,
            )));
            break;
        }
        let results = permuted?;
        let epoch = self.epoch;
        self.insert(epoch, canon, Arc::new(q.clone()), Arc::clone(&results));
        Some(results)
    }

    /// Inserts a result set computed against graph generation `epoch`,
    /// evicting the LRU entry when full.  An insert stamped with a
    /// generation other than the cache's current one is dropped — the
    /// answer predates a mutation and must not be served post-write.
    ///
    /// When an entry with the same canonical key is already cached —
    /// concurrent misses on one hot query race lookup-then-insert — the
    /// existing entry is kept (and refreshed) instead of storing a
    /// duplicate, so racing threads cannot crowd distinct queries out of the
    /// cache.  Equivalent queries with *different* keys (other output
    /// orientation or spelling) do get their own entry: that is how
    /// [`lookup`](Self::lookup) caches permuted orientations.
    pub fn insert(
        &mut self,
        epoch: u64,
        canon: &CanonicalQuery,
        q: Arc<Gtpq>,
        results: Arc<ResultSet>,
    ) {
        if self.capacity == 0 || epoch != self.epoch {
            return;
        }
        self.tick += 1;
        if let Some(bucket) = self.buckets.get_mut(&canon.skeleton) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.key == canon.key) {
                entry.last_used = self.tick;
                return;
            }
        }
        if self.len >= self.capacity {
            self.evict_lru();
        }
        self.buckets
            .entry(canon.skeleton.clone())
            .or_default()
            .push(CacheEntry {
                key: canon.key.clone(),
                query: q,
                output_positions: canon.output_positions.clone(),
                results,
                last_used: self.tick,
            });
        self.len += 1;
    }

    fn evict_lru(&mut self) {
        let victim = self
            .buckets
            .iter()
            .flat_map(|(k, entries)| entries.iter().map(move |e| (e.last_used, k)))
            .min_by_key(|&(t, _)| t)
            .map(|(_, k)| k.clone());
        if let Some(key) = victim {
            let entries = self.buckets.get_mut(&key).expect("victim bucket exists");
            let (idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("victim bucket is non-empty");
            entries.remove(idx);
            if entries.is_empty() {
                self.buckets.remove(&key);
            }
            self.len -= 1;
        }
    }
}

/// LRU cache from canonical query keys to shared physical plans.
///
/// Sits beside [`ResultCache`]: results answer repeated queries outright,
/// while plans survive result evictions and serve every execution of a
/// recurring query shape without re-planning.  Keyed by the canonical key —
/// but a plan's steps are bound to one spelling's `QueryNodeId` numbering,
/// and respellings of one pattern (which share a canonical key) can number
/// their nodes differently.  Each entry therefore stores the query it was
/// planned for and a lookup hits only on an exact structural match; a
/// permuted respelling misses and re-plans (planning is microseconds),
/// taking over the slot.
struct PlanEntry {
    query: Arc<Gtpq>,
    plan: Arc<QueryPlan>,
    last_used: u64,
}

/// An LRU plan cache safe against respelling permutations (each entry keeps
/// the query it was planned for; see the module comment above).
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<String, PlanEntry>,
    tick: u64,
    epoch: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            epoch: 0,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every plan and advances the cache to graph generation `epoch`
    /// (plans embed the old graph's cardinality estimates and backend
    /// recommendation), returning how many entries were evicted.
    pub fn invalidate(&mut self, epoch: u64) -> usize {
        let evicted = self.entries.len();
        self.entries.clear();
        self.epoch = epoch;
        evicted
    }

    /// Returns the plan cached under `key` *for exactly this query*,
    /// refreshing its recency.  An entry planned for a differently-numbered
    /// respelling misses, as does a request pinned to a graph generation
    /// other than the cache's (its plan would embed another graph's
    /// estimates).
    pub fn lookup(&mut self, epoch: u64, key: &str, q: &Gtpq) -> Option<Arc<QueryPlan>> {
        if epoch != self.epoch {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        if *entry.query != *q {
            return None;
        }
        entry.last_used = tick;
        Some(Arc::clone(&entry.plan))
    }

    /// Caches a plan for `q` built against graph generation `epoch`,
    /// evicting the least-recently-used entry when full (an existing entry
    /// under the same key is replaced in place).  Plans stamped with a
    /// generation other than the cache's current one are dropped.
    pub fn insert(&mut self, epoch: u64, key: &str, q: Arc<Gtpq>, plan: Arc<QueryPlan>) {
        if self.capacity == 0 || epoch != self.epoch {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(key) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key.to_owned(),
            PlanEntry {
                query: q,
                plan,
                last_used: self.tick,
            },
        );
    }
}

fn same_position_set(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    sa == sb
}

/// Rewrites cached tuples into the coordinate order of the incoming query.
fn permute_results(
    cached: &ResultSet,
    cached_positions: &[usize],
    canon: &CanonicalQuery,
    q: &Gtpq,
) -> ResultSet {
    let perm: Vec<usize> = canon
        .output_positions
        .iter()
        .map(|p| {
            cached_positions
                .iter()
                .position(|cp| cp == p)
                .expect("position sets were checked equal")
        })
        .collect();
    let mut out = ResultSet::new(q.output_nodes().to_vec());
    for tuple in cached.iter() {
        out.insert(perm.iter().map(|&j| tuple[j]).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use gtpq_graph::NodeId;
    use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};

    use crate::canon::canonicalize;

    use super::*;

    fn two_output_query(swap: bool) -> Gtpq {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let labels = if swap { ["c", "b"] } else { ["b", "c"] };
        for l in labels {
            let n = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(l));
            b.mark_output(n);
        }
        b.build().unwrap()
    }

    #[test]
    fn exact_resubmission_hits_without_copying() {
        let q = Arc::new(two_output_query(false));
        let canon = canonicalize(&q);
        let mut results = ResultSet::new(q.output_nodes().to_vec());
        results.insert(vec![NodeId(1), NodeId(2)]);
        let results = Arc::new(results);
        let mut cache = ResultCache::new(4);
        cache.insert(0, &canon, Arc::clone(&q), Arc::clone(&results));
        let hit = cache.lookup(0, &canon, &q).expect("hit");
        assert!(Arc::ptr_eq(&hit, &results));
    }

    #[test]
    fn swapped_sibling_spelling_hits_with_permuted_tuples() {
        let q1 = Arc::new(two_output_query(false));
        let q2 = two_output_query(true);
        let c1 = canonicalize(&q1);
        let c2 = canonicalize(&q2);
        assert_eq!(c1.skeleton, c2.skeleton);
        // q1 tuples: (b-match, c-match).
        let mut results = ResultSet::new(q1.output_nodes().to_vec());
        results.insert(vec![NodeId(10), NodeId(20)]);
        let mut cache = ResultCache::new(4);
        cache.insert(0, &c1, Arc::clone(&q1), Arc::new(results));
        // q2 marks c first, so its tuples must come back as (c, b).
        let hit = cache.lookup(0, &c2, &q2).expect("hit");
        assert_eq!(hit.output, q2.output_nodes());
        assert!(hit.contains(&[NodeId(20), NodeId(10)]));
        assert_eq!(hit.len(), 1);
        // The permuted orientation is now cached: the next lookup returns the
        // very same set without re-permuting.
        let again = cache.lookup(0, &c2, &q2).expect("hit");
        assert!(Arc::ptr_eq(&hit, &again));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_output_marks_miss() {
        let base = two_output_query(false);
        let q_single = {
            let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
            let root = b.root_id();
            let n = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
            let _ = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
            b.mark_output(n);
            b.build().unwrap()
        };
        let mut cache = ResultCache::new(4);
        let cb = canonicalize(&base);
        cache.insert(
            0,
            &cb,
            Arc::new(base.clone()),
            Arc::new(ResultSet::new(base.output_nodes().to_vec())),
        );
        assert!(cache
            .lookup(0, &canonicalize(&q_single), &q_single)
            .is_none());
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let queries: Vec<Arc<Gtpq>> = ["x", "y", "z"]
            .iter()
            .map(|l| {
                let mut b = GtpqBuilder::new(AttrPredicate::label(l));
                let root = b.root_id();
                b.mark_output(root);
                Arc::new(b.build().unwrap())
            })
            .collect();
        let canons: Vec<_> = queries.iter().map(|q| canonicalize(q)).collect();
        let mut cache = ResultCache::new(2);
        let empty = |q: &Gtpq| Arc::new(ResultSet::new(q.output_nodes().to_vec()));
        cache.insert(0, &canons[0], Arc::clone(&queries[0]), empty(&queries[0]));
        cache.insert(0, &canons[1], Arc::clone(&queries[1]), empty(&queries[1]));
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache.lookup(0, &canons[0], &queries[0]).is_some());
        cache.insert(0, &canons[2], Arc::clone(&queries[2]), empty(&queries[2]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0, &canons[0], &queries[0]).is_some());
        assert!(cache.lookup(0, &canons[1], &queries[1]).is_none());
        assert!(cache.lookup(0, &canons[2], &queries[2]).is_some());
    }

    #[test]
    fn duplicate_insert_keeps_one_entry() {
        // Two threads missing on the same query both insert; the second
        // insert must refresh the first entry, not duplicate it.  A swapped
        // spelling has a different key and gets its own orientation entry.
        let q = Arc::new(two_output_query(false));
        let canon = canonicalize(&q);
        let mut results = ResultSet::new(q.output_nodes().to_vec());
        results.insert(vec![NodeId(1), NodeId(2)]);
        let results = Arc::new(results);
        let mut cache = ResultCache::new(4);
        cache.insert(0, &canon, Arc::clone(&q), Arc::clone(&results));
        cache.insert(0, &canon, Arc::clone(&q), Arc::clone(&results));
        assert_eq!(cache.len(), 1, "same key must share one slot");
        let swapped = Arc::new(two_output_query(true));
        cache.insert(
            0,
            &canonicalize(&swapped),
            Arc::clone(&swapped),
            Arc::clone(&results),
        );
        assert_eq!(cache.len(), 2, "other orientation gets its own entry");
        assert!(cache.lookup(0, &canon, &q).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let q = Arc::new(two_output_query(false));
        let canon = canonicalize(&q);
        let mut cache = ResultCache::new(0);
        cache.insert(
            0,
            &canon,
            Arc::clone(&q),
            Arc::new(ResultSet::new(q.output_nodes().to_vec())),
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(0, &canon, &q).is_none());
    }

    #[test]
    fn epoch_invalidation_drops_entries_and_refuses_stale_inserts() {
        let q = Arc::new(two_output_query(false));
        let canon = canonicalize(&q);
        let results = Arc::new(ResultSet::new(q.output_nodes().to_vec()));
        let mut cache = ResultCache::new(4);
        cache.insert(0, &canon, Arc::clone(&q), Arc::clone(&results));
        assert_eq!(cache.invalidate(1), 1);
        assert_eq!(cache.epoch(), 1);
        assert!(cache.lookup(0, &canon, &q).is_none());
        // A late insert from a request that pinned epoch 0 is refused; the
        // current generation's insert is accepted.
        cache.insert(0, &canon, Arc::clone(&q), Arc::clone(&results));
        assert!(cache.is_empty());
        cache.insert(1, &canon, Arc::clone(&q), Arc::clone(&results));
        assert_eq!(cache.len(), 1);
        // A reader still pinned to epoch 0 must not be served the newer
        // generation's answer; a reader pinned to the current epoch hits.
        assert!(cache.lookup(0, &canon, &q).is_none());
        assert!(cache.lookup(1, &canon, &q).is_some());

        let plan = Arc::new(gtpq_core::QueryPlan::fixed_pipeline(&q));
        let mut plans = PlanCache::new(4);
        plans.insert(0, "k", Arc::clone(&q), Arc::clone(&plan));
        assert_eq!(plans.invalidate(2), 1);
        assert!(plans.lookup(2, "k", &q).is_none());
        plans.insert(0, "k", Arc::clone(&q), Arc::clone(&plan));
        assert!(plans.is_empty());
        plans.insert(2, "k", Arc::clone(&q), plan);
        assert_eq!(plans.len(), 1);
    }

    #[test]
    fn position_set_comparison() {
        assert!(same_position_set(&[1, 2], &[2, 1]));
        assert!(!same_position_set(&[1, 2], &[1, 3]));
        assert!(!same_position_set(&[1], &[1, 1]));
    }

    #[test]
    fn plan_cache_is_lru_over_canonical_keys() {
        let q = Arc::new(two_output_query(false));
        let plan = Arc::new(gtpq_core::QueryPlan::fixed_pipeline(&q));
        let mut cache = PlanCache::new(2);
        assert!(cache.is_empty());
        cache.insert(0, "a", Arc::clone(&q), Arc::clone(&plan));
        cache.insert(0, "b", Arc::clone(&q), Arc::clone(&plan));
        assert!(cache.lookup(0, "a", &q).is_some()); // refresh a
        cache.insert(0, "c", Arc::clone(&q), Arc::clone(&plan)); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0, "b", &q).is_none());
        assert!(cache.lookup(0, "a", &q).is_some());
        assert!(cache.lookup(0, "c", &q).is_some());
        // Zero capacity disables insertion.
        let mut off = PlanCache::new(0);
        off.insert(0, "a", Arc::clone(&q), Arc::clone(&plan));
        assert!(off.lookup(0, "a", &q).is_none());
    }

    #[test]
    fn plan_cache_misses_for_a_different_spelling_of_the_same_key() {
        // Plans bind QueryNodeIds; a structurally different query must never
        // receive a plan cached under the same canonical key.
        let planned_for = Arc::new(two_output_query(false));
        let other = two_output_query(true);
        assert_ne!(*planned_for, other);
        let plan = Arc::new(gtpq_core::QueryPlan::fixed_pipeline(&planned_for));
        let mut cache = PlanCache::new(4);
        cache.insert(0, "shared-key", Arc::clone(&planned_for), plan);
        assert!(cache.lookup(0, "shared-key", &planned_for).is_some());
        assert!(cache.lookup(0, "shared-key", &other).is_none());
        // Re-planning takes over the slot in place.
        let other = Arc::new(other);
        let other_plan = Arc::new(gtpq_core::QueryPlan::fixed_pipeline(&other));
        cache.insert(0, "shared-key", Arc::clone(&other), other_plan);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(0, "shared-key", &other).is_some());
        assert!(cache.lookup(0, "shared-key", &planned_for).is_none());
    }
}
