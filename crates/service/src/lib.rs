//! # gtpq-service — a concurrent query service over the GTEA engine
//!
//! The evaluation crates answer one query at a time against one index; this
//! crate is the multi-tenant front end the ROADMAP's production scenario
//! needs.  A [`QueryService`]:
//!
//! * owns an `Arc<DataGraph>` and **one shared reachability index**, either
//!   pinned via [`ServiceConfig::backend`] or chosen by
//!   [`gtpq_reach::select_backend`] from the graph's statistics (DAG-ness,
//!   density, condensation size),
//! * evaluates queries **concurrently** — all methods take `&self`, and
//!   [`QueryService::evaluate_batch`] fans a batch out over a work-stealing
//!   thread pool while preserving input order,
//! * answers repeated queries from an **equivalence-aware LRU result cache**
//!   ([`ResultCache`]): queries are keyed by a canonical form
//!   ([`canonicalize`]) so syntactically different spellings of one pattern
//!   hit the same slot, with `gtpq_analysis::equivalent` confirming every hit,
//! * aggregates **service metrics** ([`MetricsSnapshot`]): QPS, cache hit
//!   rate, and per-stage timing rollups from the engine's `EvalStats`.
//!
//! ```
//! use std::sync::Arc;
//! use gtpq_query::fixtures::{example_graph, example_query};
//! use gtpq_service::QueryService;
//!
//! let service = QueryService::new(Arc::new(example_graph()));
//! let q = example_query();
//! let cold = service.evaluate(&q);
//! let warm = service.evaluate(&q); // served from the cache
//! assert!(Arc::ptr_eq(&cold, &warm));
//! assert_eq!(service.metrics().cache_hits, 1);
//! ```
//!
//! Queries also arrive as *text*: [`QueryService::evaluate_text`] parses
//! the query language of `gtpq_query::parse` (reference:
//! `docs/QUERY_LANGUAGE.md`) and runs the result through the same cache
//! and engine path.

#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod metrics;
pub mod service;

pub use cache::ResultCache;
pub use canon::{canonicalize, CanonicalQuery};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use service::{QueryService, ServiceConfig};
