//! # gtpq-service — a concurrent query service over the GTEA engine
//!
//! The evaluation crates answer one query at a time against one index; this
//! crate is the multi-tenant front end the ROADMAP's production scenario
//! needs.  A [`QueryService`]:
//!
//! * serves every query through **one request/outcome pair** —
//!   [`QueryService::submit`] takes a [`QueryRequest`] (query tree or text,
//!   row window, deadline, backend, stats/plan switches) and returns
//!   `Result<`[`QueryOutcome`]`, `[`QueryError`]`>`; `limit`/`offset` and
//!   deadlines push down into the engine's streaming enumerator, so a
//!   limited request stops after its window instead of materializing the
//!   answer,
//! * owns a graph **snapshot** and **one shared reachability index** per
//!   graph generation, either pinned via [`ServiceConfig::backend`] or
//!   chosen by [`gtpq_reach::select_backend`] from the graph's statistics
//!   (DAG-ness, density, condensation size),
//! * serves **live graphs** — [`QueryService::live`] wraps a
//!   `gtpq_graph::GraphHandle`, and every committed epoch rotates the
//!   service's generation state: the result cache, plan cache and backend
//!   catalog are invalidated (counted as `stale_evictions`), the epoch is
//!   exported as the `graph_epoch` gauge, and in-flight requests keep
//!   answering from the snapshot they pinned at submission,
//! * evaluates requests **concurrently** — all methods take `&self`, and
//!   [`QueryService::submit_batch`] fans a batch out over a work-stealing
//!   thread pool while preserving input order,
//! * answers repeated queries from an **equivalence-aware LRU result cache**
//!   ([`ResultCache`]): queries are keyed by a canonical form
//!   ([`canonicalize`]) so syntactically different spellings of one pattern
//!   hit the same slot, with `gtpq_analysis::equivalent` confirming every
//!   hit; only *complete* answers are cached, and windows are sliced out of
//!   hits,
//! * aggregates **service metrics** ([`MetricsSnapshot`]): QPS, cache hit
//!   rate, per-stage timing rollups, the request-API counters (`timed_out`,
//!   `cancelled`, `rows_truncated`, `aborted`), lock-free latency/TTFR
//!   histograms with percentile queries, windowed recent rates, and a
//!   Prometheus text encoder ([`MetricsSnapshot::render_prometheus`]),
//! * records **per-request span traces** on demand
//!   ([`QueryRequest::with_trace`] → [`QueryOutcome::trace`], exportable as
//!   Chrome `trace_event` JSON) and keeps a **slow-query log**
//!   ([`QueryService::slow_queries`]) of requests that crossed
//!   [`ServiceConfig::slow_query_threshold`], each with its canonical text,
//!   outcome and executed plan with actual row counts.
//!
//! ```
//! use std::sync::Arc;
//! use gtpq_query::fixtures::{example_graph, example_query};
//! use gtpq_service::{QueryRequest, QueryService};
//!
//! let service = QueryService::new(Arc::new(example_graph()));
//! let request = QueryRequest::query(example_query());
//! let cold = service.submit(&request).unwrap();
//! let warm = service.submit(&request).unwrap(); // served from the cache
//! assert!(Arc::ptr_eq(&cold.rows, &warm.rows));
//! assert_eq!(service.metrics().cache_hits, 1);
//!
//! // Limit pushdown: ask for one row, stop enumerating after it.
//! let first = service.submit(&QueryRequest::text("a1 { //d1* }").with_limit(1)).unwrap();
//! assert_eq!(first.rows.len(), 1);
//! ```
//!
//! The pre-request method zoo (`evaluate`, `evaluate_with_stats`,
//! `evaluate_text`, `evaluate_batch`, `analyze`) survives as deprecated
//! shims over `submit`; see each method's `# Migration` note.

#![warn(missing_docs)]

pub mod cache;
pub mod canon;
mod lazy;
pub mod metrics;
pub mod request;
pub mod service;
pub mod slowlog;

pub use cache::ResultCache;
pub use canon::{canonicalize, CanonicalQuery};
pub use metrics::{MetricsSnapshot, ServiceMetrics, StageHistograms, RECENT_WINDOW};
pub use request::{QueryError, QueryOutcome, QueryRequest, QuerySource};
pub use service::{QueryService, ServiceConfig};
pub use slowlog::{SlowOutcome, SlowQueryEntry};
