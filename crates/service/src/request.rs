//! The request/outcome query API: [`QueryRequest`] in,
//! `Result<`[`QueryOutcome`]`, `[`QueryError`]`>` out.
//!
//! This is the single public evaluation surface of the service.  The legacy
//! method zoo (`evaluate`, `evaluate_with_stats`, `evaluate_text`,
//! `evaluate_batch`, `analyze`) survives as thin deprecated shims over
//! [`QueryService::submit`](crate::QueryService::submit); new code should
//! build a request:
//!
//! ```
//! use std::sync::Arc;
//! use gtpq_query::fixtures::example_graph;
//! use gtpq_service::{QueryRequest, QueryService};
//!
//! let service = QueryService::new(Arc::new(example_graph()));
//! let outcome = service
//!     .submit(&QueryRequest::text("a1 { //d1* }").with_limit(10))
//!     .unwrap();
//! assert!(!outcome.rows.is_empty());
//! assert!(!outcome.truncated, "fewer than 10 matches exist");
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use gtpq_core::{CancelToken, EvalStats, QueryPlan, Trace};
use gtpq_query::{Gtpq, ParseError, ResultSet};
use gtpq_reach::BackendKind;

/// What to evaluate: an already-built query tree or query-language text.
#[derive(Clone, Debug)]
pub enum QuerySource {
    /// A validated query tree.
    Query(Gtpq),
    /// Query-language text (see `docs/QUERY_LANGUAGE.md`), parsed by
    /// `submit`; a syntax error becomes [`QueryError::Parse`].
    Text(String),
}

/// One evaluation request: the query plus its row window, time budget and
/// execution knobs.
///
/// Build with [`QueryRequest::query`] or [`QueryRequest::text`] and chain the
/// `with_*` setters; the default is the legacy behaviour (full answer, no
/// deadline, planner-chosen backend, no stats or plan in the outcome).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query to evaluate.
    pub source: QuerySource,
    /// Emit at most this many rows (after `offset`); enumeration stops as
    /// soon as the window is full instead of materializing the answer.
    pub limit: Option<usize>,
    /// Skip this many leading rows of the answer.
    pub offset: usize,
    /// Time budget from the moment `submit` is called; overrunning it yields
    /// [`QueryError::Timeout`].
    pub deadline: Option<Duration>,
    /// Pin the reachability backend for this request (built into the
    /// service's shared catalog on first use); `None` lets the planner
    /// recommend one.
    pub backend: Option<BackendKind>,
    /// Include per-stage [`EvalStats`] in the outcome.
    pub want_stats: bool,
    /// Include the executed physical plan in the outcome.
    pub want_plan: bool,
    /// Record a structured span trace of the request (parse, plan and every
    /// engine stage) into [`QueryOutcome::trace`].  Off by default: a
    /// disabled tracer costs two branches per span site.
    pub want_trace: bool,
    /// Skip the result-cache lookup, forcing the engine to run (the
    /// machinery behind `:explain analyze`); complete answers are still
    /// written back to the cache.
    pub bypass_cache: bool,
    /// Cooperative cancellation: trigger the token from any thread and the
    /// evaluation stops with [`QueryError::Cancelled`] at its next poll.
    pub cancel: Option<CancelToken>,
    /// Intra-query parallelism degree for this request: `Some(1)` forces a
    /// serial run, `Some(n)` offers `n` worker threads, `None` defers to the
    /// service configuration.  Either way the planner's cost gate
    /// ([`QueryPlan::recommended_threads`]) keeps cheap queries serial, and
    /// results are bit-for-bit identical to a serial run at any degree.
    pub threads: Option<usize>,
}

impl QueryRequest {
    /// A request evaluating an already-built query tree.
    pub fn query(q: Gtpq) -> Self {
        Self::new(QuerySource::Query(q))
    }

    /// A request evaluating query-language text.
    pub fn text(text: impl Into<String>) -> Self {
        Self::new(QuerySource::Text(text.into()))
    }

    fn new(source: QuerySource) -> Self {
        Self {
            source,
            limit: None,
            offset: 0,
            deadline: None,
            backend: None,
            want_stats: false,
            want_plan: false,
            want_trace: false,
            bypass_cache: false,
            cancel: None,
            threads: None,
        }
    }

    /// Emit at most `limit` rows (see [`limit`](Self::limit)).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Skip the first `offset` rows (see [`offset`](Self::offset)).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Give the evaluation a time budget (see [`deadline`](Self::deadline)).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Pin the reachability backend for this request.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Ask for per-stage statistics in the outcome.
    pub fn with_stats(mut self) -> Self {
        self.want_stats = true;
        self
    }

    /// Ask for the executed physical plan in the outcome.
    pub fn with_plan(mut self) -> Self {
        self.want_plan = true;
        self
    }

    /// Ask for a structured span trace in the outcome (see
    /// [`want_trace`](Self::want_trace)).
    pub fn with_trace(mut self) -> Self {
        self.want_trace = true;
        self
    }

    /// Skip the result-cache lookup (see
    /// [`bypass_cache`](Self::bypass_cache)).
    pub fn with_bypass_cache(mut self) -> Self {
        self.bypass_cache = true;
        self
    }

    /// Attach a cancellation token (see [`cancel`](Self::cancel)).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Set the intra-query parallelism degree (see
    /// [`threads`](Self::threads)); `1` forces a serial run.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// The answer to one [`QueryRequest`].
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The emitted rows: the `offset..offset + limit` window of the full
    /// answer, in materialized-[`ResultSet`] order.  An unlimited request
    /// gets the complete answer.
    pub rows: Arc<ResultSet>,
    /// Whether the row limit cut enumeration short — `true` exactly when at
    /// least one more row exists past the returned window.
    pub truncated: bool,
    /// Whether the rows were served from the result cache (the engine never
    /// ran; `stats`, if requested, is then empty).
    pub from_cache: bool,
    /// Per-stage engine statistics, when the request set
    /// [`want_stats`](QueryRequest::want_stats).
    pub stats: Option<EvalStats>,
    /// The executed physical plan, when the request set
    /// [`want_plan`](QueryRequest::want_plan).
    pub plan: Option<Arc<QueryPlan>>,
    /// The recorded span tree, when the request set
    /// [`want_trace`](QueryRequest::want_trace).  Covers the whole `submit`
    /// (a `request` root span with parse, plan and engine-stage children);
    /// export with [`Trace::to_chrome_json`] or render with
    /// [`Trace::render_tree`].
    pub trace: Option<Trace>,
}

impl QueryOutcome {
    /// Number of emitted rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were emitted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Everything that can go wrong with a [`QueryRequest`] — the unified error
/// surface replacing the old mixed signatures (only `evaluate_text` could
/// fail, and nothing could time out).
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The request's text does not parse; carries the span-annotated
    /// diagnostic.
    Parse(ParseError),
    /// The evaluation overran [`QueryRequest::deadline`].
    Timeout {
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// The request's [`CancelToken`](QueryRequest::cancel) was triggered
    /// mid-evaluation.
    Cancelled,
    /// The query is structurally unsatisfiable: no data graph whatsoever can
    /// match it (detected by [`gtpq_analysis::is_satisfiable`] before any
    /// evaluation work).
    Unsatisfiable,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {}", e.message),
            QueryError::Timeout { budget } => {
                write!(f, "query timed out (budget {budget:?})")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::Unsatisfiable => {
                write!(f, "query is unsatisfiable: no data graph can match it")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::example_query;

    use super::*;

    #[test]
    fn builder_setters_compose() {
        let req = QueryRequest::query(example_query())
            .with_limit(7)
            .with_offset(3)
            .with_deadline(Duration::from_millis(250))
            .with_backend(BackendKind::Closure)
            .with_stats()
            .with_plan()
            .with_trace()
            .with_bypass_cache()
            .with_cancel(CancelToken::new())
            .with_threads(4);
        assert_eq!(req.limit, Some(7));
        assert_eq!(req.threads, Some(4));
        assert_eq!(QueryRequest::text("a1").with_threads(0).threads, Some(1));
        assert_eq!(req.offset, 3);
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
        assert_eq!(req.backend, Some(BackendKind::Closure));
        assert!(req.want_stats && req.want_plan && req.bypass_cache);
        assert!(req.want_trace);
        assert!(req.cancel.is_some());
        assert!(matches!(req.source, QuerySource::Query(_)));
    }

    #[test]
    fn errors_render_distinctly() {
        let timeout = QueryError::Timeout {
            budget: Duration::from_millis(5),
        };
        assert!(timeout.to_string().contains("timed out"));
        assert!(QueryError::Cancelled.to_string().contains("cancelled"));
        assert!(QueryError::Unsatisfiable
            .to_string()
            .contains("unsatisfiable"));
        let parse: QueryError = gtpq_query::parse_query("a1 {").unwrap_err().into();
        assert!(parse.to_string().contains("parse error"));
    }
}
