//! Aggregate service metrics: QPS, cache hit rate, per-stage timing rollups,
//! latency/TTFR histograms, windowed recent rates, and a Prometheus
//! text-format encoder.
//!
//! All counters are relaxed atomics and the histograms are lock-free
//! ([`gtpq_obs::LogHistogram`]), so the hot path never takes a lock; a
//! [`MetricsSnapshot`] is a consistent-enough point-in-time copy for
//! dashboards and tests (individual counters may be skewed by in-flight
//! queries, which is the usual contract for service counters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gtpq_core::EvalStats;
use gtpq_obs::{
    HistogramSnapshot, LogHistogram, PromText, WindowedCounter, LATENCY_BOUNDS_SECONDS,
};

/// Trailing window of the `recent_*` rates (QPS and hit rate "right now"
/// rather than since process start).
pub const RECENT_WINDOW: Duration = Duration::from_secs(30);

/// Lock-free per-stage latency histograms (nanosecond samples).
#[derive(Debug, Default)]
struct StageHists {
    candidates: LogHistogram,
    prune_down: LogHistogram,
    prune_up: LogHistogram,
    matching: LogHistogram,
    enumerate: LogHistogram,
    eval: LogHistogram,
}

impl StageHists {
    /// Observes one evaluation's stage timings (partial stats from an
    /// aborted run record only the stages that actually ran).
    fn observe(&self, stats: &EvalStats) {
        self.candidates.record_duration(stats.candidate_time);
        self.prune_down.record_duration(stats.prune_down_time);
        self.prune_up.record_duration(stats.prune_up_time);
        self.matching.record_duration(stats.matching_graph_time);
        self.enumerate.record_duration(stats.enumerate_time);
        self.eval.record_duration(stats.total_time());
    }
}

/// Point-in-time copies of the per-stage histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageHistograms {
    /// Candidate-selection stage.
    pub candidates: HistogramSnapshot,
    /// Downward pruning round.
    pub prune_down: HistogramSnapshot,
    /// Upward pruning round.
    pub prune_up: HistogramSnapshot,
    /// Matching-graph construction.
    pub matching: HistogramSnapshot,
    /// Result enumeration.
    pub enumerate: HistogramSnapshot,
    /// Whole engine evaluation (planning included).
    pub eval: HistogramSnapshot,
}

impl StageHistograms {
    /// `(stage name, histogram)` pairs in pipeline order — the iteration
    /// the Prometheus encoder and the CLI's `:metrics` share.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &HistogramSnapshot)> {
        [
            ("candidates", &self.candidates),
            ("prune_down", &self.prune_down),
            ("prune_up", &self.prune_up),
            ("matching", &self.matching),
            ("enumerate", &self.enumerate),
            ("eval", &self.eval),
        ]
        .into_iter()
    }
}

/// Internal atomic counters of a [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    eval_nanos: AtomicU64,
    candidate_nanos: AtomicU64,
    prune_down_nanos: AtomicU64,
    prune_up_nanos: AtomicU64,
    matching_nanos: AtomicU64,
    enumerate_nanos: AtomicU64,
    input_nodes: AtomicU64,
    index_lookups: AtomicU64,
    index_hits: AtomicU64,
    scanned_nodes: AtomicU64,
    sim_pivot_filtered: AtomicU64,
    sim_verified: AtomicU64,
    result_tuples: AtomicU64,
    plan_nanos: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    estimated_rows: AtomicU64,
    actual_rows: AtomicU64,
    estimation_error_rows: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    rows_truncated: AtomicU64,
    enumerated_rows: AtomicU64,
    worker_busy_nanos: AtomicU64,
    morsels: AtomicU64,
    max_queue_depth: AtomicU64,
    aborted: AtomicU64,
    aborted_eval_nanos: AtomicU64,
    graph_epoch: AtomicU64,
    epoch_rotations: AtomicU64,
    stale_evictions: AtomicU64,
    latency_hist: LogHistogram,
    ttfr_hist: LogHistogram,
    stage_hists: StageHists,
    recent_queries: WindowedCounter,
    recent_hits: WindowedCounter,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            eval_nanos: AtomicU64::new(0),
            candidate_nanos: AtomicU64::new(0),
            prune_down_nanos: AtomicU64::new(0),
            prune_up_nanos: AtomicU64::new(0),
            matching_nanos: AtomicU64::new(0),
            enumerate_nanos: AtomicU64::new(0),
            input_nodes: AtomicU64::new(0),
            index_lookups: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            scanned_nodes: AtomicU64::new(0),
            sim_pivot_filtered: AtomicU64::new(0),
            sim_verified: AtomicU64::new(0),
            result_tuples: AtomicU64::new(0),
            plan_nanos: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            estimated_rows: AtomicU64::new(0),
            actual_rows: AtomicU64::new(0),
            estimation_error_rows: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rows_truncated: AtomicU64::new(0),
            enumerated_rows: AtomicU64::new(0),
            worker_busy_nanos: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            aborted_eval_nanos: AtomicU64::new(0),
            graph_epoch: AtomicU64::new(0),
            epoch_rotations: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            latency_hist: LogHistogram::new(),
            ttfr_hist: LogHistogram::new(),
            stage_hists: StageHists::default(),
            recent_queries: WindowedCounter::new(),
            recent_hits: WindowedCounter::new(),
        }
    }

    pub(crate) fn record_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_truncated(&self) {
        self.rows_truncated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Observes the end-to-end `submit` latency of one request (every exit
    /// path: hit, miss, timeout, cancellation).
    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency_hist.record_duration(latency);
    }

    pub(crate) fn record_hit(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.recent_queries.record();
        self.recent_hits.record();
    }

    pub(crate) fn record_miss(&self, stats: &EvalStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.recent_queries.record();
        self.eval_nanos
            .fetch_add(stats.total_time().as_nanos() as u64, Ordering::Relaxed);
        self.fold_stages(stats);
        self.result_tuples
            .fetch_add(stats.result_tuples, Ordering::Relaxed);
        self.plan_nanos
            .fetch_add(stats.plan_time.as_nanos() as u64, Ordering::Relaxed);
        self.estimated_rows
            .fetch_add(stats.estimated_rows(), Ordering::Relaxed);
        self.actual_rows
            .fetch_add(stats.actual_rows(), Ordering::Relaxed);
        self.estimation_error_rows
            .fetch_add(stats.absolute_estimation_error(), Ordering::Relaxed);
        if stats.time_to_first_row > Duration::ZERO {
            self.ttfr_hist.record_duration(stats.time_to_first_row);
        }
    }

    /// Folds the *partial* statistics of an evaluation that was aborted by
    /// deadline or cancellation.  The stage rollups, I/O counters and stage
    /// histograms keep the work that was done; the run is counted under
    /// `aborted` (with its engine time under `aborted_eval_time`) rather
    /// than as a query/cache miss, since no answer was produced.
    pub(crate) fn record_aborted(&self, stats: &EvalStats) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.aborted_eval_nanos
            .fetch_add(stats.total_time().as_nanos() as u64, Ordering::Relaxed);
        self.recent_queries.record();
        self.fold_stages(stats);
    }

    /// Stage timings, I/O counters and stage histograms shared by complete
    /// and aborted runs.
    fn fold_stages(&self, stats: &EvalStats) {
        let add = |counter: &AtomicU64, d: Duration| {
            counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        };
        add(&self.candidate_nanos, stats.candidate_time);
        add(&self.prune_down_nanos, stats.prune_down_time);
        add(&self.prune_up_nanos, stats.prune_up_time);
        add(&self.matching_nanos, stats.matching_graph_time);
        add(&self.enumerate_nanos, stats.enumerate_time);
        self.input_nodes
            .fetch_add(stats.input_nodes, Ordering::Relaxed);
        self.index_lookups
            .fetch_add(stats.index_lookups, Ordering::Relaxed);
        self.index_hits
            .fetch_add(stats.index_hits, Ordering::Relaxed);
        self.scanned_nodes
            .fetch_add(stats.scanned_nodes, Ordering::Relaxed);
        self.sim_pivot_filtered
            .fetch_add(stats.sim_pivot_filtered, Ordering::Relaxed);
        self.sim_verified
            .fetch_add(stats.sim_verified, Ordering::Relaxed);
        self.enumerated_rows
            .fetch_add(stats.enumerated_rows, Ordering::Relaxed);
        self.worker_busy_nanos
            .fetch_add(stats.worker_busy_time.as_nanos() as u64, Ordering::Relaxed);
        self.morsels
            .fetch_add(stats.morsels_dispatched, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(stats.max_queue_depth, Ordering::Relaxed);
        self.stage_hists.observe(stats);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the graph-epoch gauge without counting a rotation (used at
    /// service construction, where the handle may already carry commits).
    pub(crate) fn set_graph_epoch(&self, epoch: u64) {
        self.graph_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records one epoch rotation: the gauge advances to the new epoch
    /// (monotonically — concurrent rotations cannot walk it backwards) and
    /// the entries dropped from the result/plan caches are counted as stale
    /// evictions.
    pub(crate) fn record_rotation(&self, epoch: u64, evicted: u64) {
        self.graph_epoch.fetch_max(epoch, Ordering::Relaxed);
        self.epoch_rotations.fetch_add(1, Ordering::Relaxed);
        self.stale_evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        MetricsSnapshot {
            uptime,
            queries,
            cache_hits: hits,
            cache_misses: misses,
            batches: self.batches.load(Ordering::Relaxed),
            eval_time: Duration::from_nanos(self.eval_nanos.load(Ordering::Relaxed)),
            candidate_time: Duration::from_nanos(self.candidate_nanos.load(Ordering::Relaxed)),
            prune_down_time: Duration::from_nanos(self.prune_down_nanos.load(Ordering::Relaxed)),
            prune_up_time: Duration::from_nanos(self.prune_up_nanos.load(Ordering::Relaxed)),
            matching_time: Duration::from_nanos(self.matching_nanos.load(Ordering::Relaxed)),
            enumerate_time: Duration::from_nanos(self.enumerate_nanos.load(Ordering::Relaxed)),
            input_nodes: self.input_nodes.load(Ordering::Relaxed),
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            scanned_nodes: self.scanned_nodes.load(Ordering::Relaxed),
            sim_pivot_filtered: self.sim_pivot_filtered.load(Ordering::Relaxed),
            sim_verified: self.sim_verified.load(Ordering::Relaxed),
            result_tuples: self.result_tuples.load(Ordering::Relaxed),
            plan_time: Duration::from_nanos(self.plan_nanos.load(Ordering::Relaxed)),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            estimated_rows: self.estimated_rows.load(Ordering::Relaxed),
            actual_rows: self.actual_rows.load(Ordering::Relaxed),
            estimation_error_rows: self.estimation_error_rows.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rows_truncated: self.rows_truncated.load(Ordering::Relaxed),
            enumerated_rows: self.enumerated_rows.load(Ordering::Relaxed),
            worker_busy_time: Duration::from_nanos(self.worker_busy_nanos.load(Ordering::Relaxed)),
            morsels: self.morsels.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            aborted_eval_time: Duration::from_nanos(
                self.aborted_eval_nanos.load(Ordering::Relaxed),
            ),
            graph_epoch: self.graph_epoch.load(Ordering::Relaxed),
            epoch_rotations: self.epoch_rotations.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
            latency: self.latency_hist.snapshot(),
            ttfr: self.ttfr_hist.snapshot(),
            stages: StageHistograms {
                candidates: self.stage_hists.candidates.snapshot(),
                prune_down: self.stage_hists.prune_down.snapshot(),
                prune_up: self.stage_hists.prune_up.snapshot(),
                matching: self.stage_hists.matching.snapshot(),
                enumerate: self.stage_hists.enumerate.snapshot(),
                eval: self.stage_hists.eval.snapshot(),
            },
            recent_window: RECENT_WINDOW,
            recent_queries: self.recent_queries.sum_window(RECENT_WINDOW),
            recent_hits: self.recent_hits.sum_window(RECENT_WINDOW),
            recent_qps: self.recent_queries.rate_per_sec(RECENT_WINDOW),
        }
    }
}

/// Point-in-time copy of the service counters, with derived rates,
/// latency/TTFR/stage histograms and a Prometheus text encoder.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Time since the service was created.
    pub uptime: Duration,
    /// Queries answered (hits + misses).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that ran the engine.
    pub cache_misses: u64,
    /// `evaluate_batch` calls served.
    pub batches: u64,
    /// Total engine evaluation time across cache misses (sum over queries,
    /// not wall clock: concurrent queries overlap).
    pub eval_time: Duration,
    /// Candidate-selection time rollup.
    pub candidate_time: Duration,
    /// Downward-pruning time rollup.
    pub prune_down_time: Duration,
    /// Upward-pruning time rollup.
    pub prune_up_time: Duration,
    /// Matching-graph construction time rollup.
    pub matching_time: Duration,
    /// Result-enumeration time rollup.
    pub enumerate_time: Duration,
    /// Data-node accesses rollup (`#input`, Fig. 10).
    pub input_nodes: u64,
    /// Index-element lookups rollup (`#index`, Fig. 10).
    pub index_lookups: u64,
    /// Candidates served straight from the attribute inverted index during
    /// candidate selection.
    pub index_hits: u64,
    /// Nodes individually verified during candidate selection (the scan
    /// remainder the inverted index could not serve exactly).
    pub scanned_nodes: u64,
    /// Sim-indexed vectors discarded by the pivot filter's triangle-
    /// inequality check across engine runs — exact distance computations
    /// avoided by the block-and-verify access path.
    pub sim_pivot_filtered: u64,
    /// Sim-indexed vectors verified with an exact distance / cosine
    /// computation across engine runs.
    pub sim_verified: u64,
    /// Result tuples produced by engine runs.
    pub result_tuples: u64,
    /// Planning time rollup (zero for plan-cache hits).
    pub plan_time: Duration,
    /// Evaluations that reused a cached physical plan.
    pub plan_cache_hits: u64,
    /// Evaluations that built a fresh physical plan.
    pub plan_cache_misses: u64,
    /// Sum of the planner's per-operator row estimates across engine runs.
    pub estimated_rows: u64,
    /// Sum of the rows those operators actually produced.
    pub actual_rows: u64,
    /// Sum of per-operator `|estimated − actual|` across engine runs
    /// (absolute, so over- and under-estimates cannot cancel).
    pub estimation_error_rows: u64,
    /// Requests aborted because their deadline passed.
    pub timed_out: u64,
    /// Requests aborted through their cancellation token.
    pub cancelled: u64,
    /// Outcomes whose row window was cut short by a `limit` (more rows
    /// existed past the returned window).
    pub rows_truncated: u64,
    /// Rows pulled from the streaming enumerator across engine runs
    /// (including offset-skipped and look-ahead rows); compare against
    /// `result_tuples` to see how much enumeration limit pushdown avoided.
    pub enumerated_rows: u64,
    /// Total busy time across intra-query morsel workers (candidate scans,
    /// prune rounds, matching-graph fill, partitioned enumeration).  Sums
    /// over workers, so it can exceed `eval_time`; the ratio is the average
    /// fan-out actually achieved (see
    /// [`worker_utilization`](Self::worker_utilization)).
    pub worker_busy_time: Duration,
    /// Morsels dispatched to intra-query workers across engine runs (every
    /// parallel stage round counts its work-stealing chunks).
    pub morsels: u64,
    /// Deepest partition-consumer queue observed during partitioned
    /// enumeration (buffered row batches awaiting the ordered merge); a
    /// persistently high value means producers outrun the merge.
    pub max_queue_depth: u64,
    /// Engine runs aborted mid-evaluation (timeout or cancellation); their
    /// partial stage timings are folded into the stage rollups above.
    pub aborted: u64,
    /// Engine time spent in runs that were ultimately aborted — work that
    /// produced no answer, invisible in `eval_time`.
    pub aborted_eval_time: Duration,
    /// Epoch of the graph generation the service currently answers for
    /// (0 for a frozen graph; advances monotonically with every commit the
    /// service observed).
    pub graph_epoch: u64,
    /// Epoch rotations performed: commits the service noticed and swung its
    /// generation state (backend, caches, catalog) over to.
    pub epoch_rotations: u64,
    /// Result-cache and plan-cache entries dropped by epoch rotations —
    /// answers and plans that described a pre-write graph.
    pub stale_evictions: u64,
    /// End-to-end `submit` latency histogram (every request: hits, misses,
    /// timeouts, cancellations).
    pub latency: HistogramSnapshot,
    /// Time-to-first-row histogram across engine runs that produced at least
    /// one row — the streaming-latency headline.
    pub ttfr: HistogramSnapshot,
    /// Per-stage latency histograms across engine runs (aborted runs
    /// included, with whatever stages they completed).
    pub stages: StageHistograms,
    /// Window the `recent_*` figures cover.
    pub recent_window: Duration,
    /// Requests observed within the trailing window.
    pub recent_queries: u64,
    /// Cache hits observed within the trailing window.
    pub recent_hits: u64,
    /// Requests per second over the trailing window (young services divide
    /// by their age instead, so early rates are not under-reported).
    pub recent_qps: f64,
}

impl MetricsSnapshot {
    /// Queries per second since service creation.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }

    /// Fraction of queries served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Fraction of recent requests served from the cache (0.0 when idle).
    pub fn recent_hit_rate(&self) -> f64 {
        if self.recent_queries == 0 {
            0.0
        } else {
            self.recent_hits as f64 / self.recent_queries as f64
        }
    }

    /// End-to-end latency at quantile `q` (`0.0 ..= 1.0`): `0.5` is the
    /// median, `0.99` the p99.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        self.latency.percentile_duration(q)
    }

    /// Time-to-first-row at quantile `q` (`0.0 ..= 1.0`).
    pub fn ttfr_percentile(&self, q: f64) -> Duration {
        self.ttfr.percentile_duration(q)
    }

    /// Fraction of initial candidates served straight from the inverted
    /// index across all engine runs (0.0 when idle).
    pub fn index_serve_rate(&self) -> f64 {
        gtpq_core::stats::serve_rate(self.index_hits, self.scanned_nodes)
    }

    /// Fraction of sim-indexed vectors the pivot filter discarded without an
    /// exact distance computation across engine runs (0.0 when no `sim(...)`
    /// predicate ran) — same formula as
    /// [`EvalStats::sim_filter_selectivity`](gtpq_core::EvalStats::sim_filter_selectivity).
    pub fn sim_filter_selectivity(&self) -> f64 {
        gtpq_core::stats::serve_rate(self.sim_pivot_filtered, self.sim_verified)
    }

    /// Fraction of engine runs that reused a cached physical plan
    /// (0.0 when no plans were requested).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// Aggregate cardinality-estimation error of the cost model: the sum of
    /// per-operator `|estimated − actual|` over the sum of actual rows
    /// (0.0 = estimates exactly matched the executed cardinalities; errors
    /// are accumulated per operator, so an over-estimate cannot cancel an
    /// under-estimate).
    pub fn estimation_error(&self) -> f64 {
        self.estimation_error_rows as f64 / self.actual_rows.max(1) as f64
    }

    /// Average intra-query fan-out actually achieved: total morsel-worker
    /// busy time over total engine time (complete and aborted runs).  `0.0`
    /// when every run was serial; `≈ n` when runs kept `n` workers busy.
    pub fn worker_utilization(&self) -> f64 {
        let engine = self.eval_time + self.aborted_eval_time;
        if engine.is_zero() {
            0.0
        } else {
            self.worker_busy_time.as_secs_f64() / engine.as_secs_f64()
        }
    }

    /// Mean engine time per cache miss.
    pub fn mean_eval_time(&self) -> Duration {
        if self.cache_misses == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 space: casting the u64 miss count to u32 would
            // truncate (a count of exactly 2^32 becomes 0 and panics).
            Duration::from_nanos((self.eval_time.as_nanos() / u128::from(self.cache_misses)) as u64)
        }
    }

    /// Renders the snapshot as a Prometheus text-format (0.0.4) scrape page:
    /// `gtpq_`-prefixed counters and gauges plus the latency, TTFR and
    /// per-stage histograms in seconds.
    pub fn render_prometheus(&self) -> String {
        let mut page = PromText::new();
        page.counter(
            "gtpq_queries_total",
            "Queries answered (cache hits + engine runs).",
            self.queries as f64,
        );
        page.counter(
            "gtpq_cache_hits_total",
            "Queries answered from the result cache.",
            self.cache_hits as f64,
        );
        page.counter(
            "gtpq_cache_misses_total",
            "Queries that ran the engine.",
            self.cache_misses as f64,
        );
        page.counter(
            "gtpq_batches_total",
            "Batch submissions served.",
            self.batches as f64,
        );
        page.counter(
            "gtpq_timeouts_total",
            "Requests aborted because their deadline passed.",
            self.timed_out as f64,
        );
        page.counter(
            "gtpq_cancelled_total",
            "Requests aborted through their cancellation token.",
            self.cancelled as f64,
        );
        page.counter(
            "gtpq_aborted_runs_total",
            "Engine runs aborted mid-evaluation (timeout or cancellation).",
            self.aborted as f64,
        );
        page.counter(
            "gtpq_rows_truncated_total",
            "Outcomes whose row window was cut short by a limit.",
            self.rows_truncated as f64,
        );
        page.counter(
            "gtpq_result_tuples_total",
            "Result tuples produced by engine runs.",
            self.result_tuples as f64,
        );
        page.counter(
            "gtpq_enumerated_rows_total",
            "Rows pulled from the streaming enumerator.",
            self.enumerated_rows as f64,
        );
        page.counter(
            "gtpq_input_nodes_total",
            "Data-node accesses across engine runs.",
            self.input_nodes as f64,
        );
        page.counter(
            "gtpq_index_lookups_total",
            "Reachability-index element lookups across engine runs.",
            self.index_lookups as f64,
        );
        page.counter(
            "gtpq_sim_pivot_filtered_total",
            "Sim-indexed vectors discarded by the pivot filter (exact distance computations avoided).",
            self.sim_pivot_filtered as f64,
        );
        page.counter(
            "gtpq_sim_verified_total",
            "Sim-indexed vectors verified with an exact distance or cosine computation.",
            self.sim_verified as f64,
        );
        page.gauge(
            "gtpq_sim_filter_selectivity",
            "Fraction of sim-indexed vectors the pivot filter discarded without verification.",
            self.sim_filter_selectivity(),
        );
        page.counter(
            "gtpq_plan_cache_hits_total",
            "Evaluations that reused a cached physical plan.",
            self.plan_cache_hits as f64,
        );
        page.counter(
            "gtpq_plan_cache_misses_total",
            "Evaluations that built a fresh physical plan.",
            self.plan_cache_misses as f64,
        );
        page.counter(
            "gtpq_eval_seconds_total",
            "Engine evaluation time across cache misses.",
            self.eval_time.as_secs_f64(),
        );
        page.counter(
            "gtpq_worker_busy_seconds",
            "Busy time across intra-query morsel workers (sums over workers).",
            self.worker_busy_time.as_secs_f64(),
        );
        page.counter(
            "gtpq_morsels_total",
            "Morsels dispatched to intra-query workers.",
            self.morsels as f64,
        );
        page.gauge(
            "gtpq_morsel_queue_depth_max",
            "Deepest partition-consumer queue observed during enumeration.",
            self.max_queue_depth as f64,
        );
        page.counter(
            "gtpq_aborted_eval_seconds_total",
            "Engine time spent in runs that were ultimately aborted.",
            self.aborted_eval_time.as_secs_f64(),
        );
        page.gauge(
            "gtpq_graph_epoch",
            "Epoch of the graph generation the service answers for.",
            self.graph_epoch as f64,
        );
        page.counter(
            "gtpq_epoch_rotations_total",
            "Commits the service rotated its generation state over to.",
            self.epoch_rotations as f64,
        );
        page.counter(
            "gtpq_stale_evictions_total",
            "Cached results and plans dropped because the graph mutated.",
            self.stale_evictions as f64,
        );
        page.gauge(
            "gtpq_uptime_seconds",
            "Time since the service was created.",
            self.uptime.as_secs_f64(),
        );
        page.gauge(
            "gtpq_cache_hit_ratio",
            "Fraction of queries served from the result cache.",
            self.hit_rate(),
        );
        page.gauge(
            "gtpq_recent_qps",
            "Requests per second over the trailing window.",
            self.recent_qps,
        );
        page.gauge(
            "gtpq_recent_cache_hit_ratio",
            "Fraction of recent requests served from the result cache.",
            self.recent_hit_rate(),
        );
        page.histogram_seconds(
            "gtpq_request_latency_seconds",
            "End-to-end submit latency.",
            &[],
            &self.latency,
            LATENCY_BOUNDS_SECONDS,
        );
        page.histogram_seconds(
            "gtpq_time_to_first_row_seconds",
            "Time from the start of enumeration to the first row.",
            &[],
            &self.ttfr,
            LATENCY_BOUNDS_SECONDS,
        );
        for (stage, snap) in self.stages.iter() {
            page.histogram_seconds(
                "gtpq_stage_seconds",
                "Per-stage engine latency.",
                &[("stage", stage)],
                snap,
                LATENCY_BOUNDS_SECONDS,
            );
        }
        page.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollups_accumulate_and_rates_derive() {
        let m = ServiceMetrics::new();
        let stats = EvalStats {
            candidate_time: Duration::from_millis(2),
            prune_down_time: Duration::from_millis(3),
            result_tuples: 7,
            input_nodes: 11,
            index_hits: 9,
            scanned_nodes: 3,
            ..Default::default()
        };
        m.record_miss(&stats);
        m.record_miss(&stats);
        m.record_hit();
        m.record_batch();
        let snap = m.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.result_tuples, 14);
        assert_eq!(snap.input_nodes, 22);
        assert_eq!(snap.index_hits, 18);
        assert_eq!(snap.scanned_nodes, 6);
        assert!((snap.index_serve_rate() - 0.75).abs() < 1e-9);
        assert_eq!(snap.candidate_time, Duration::from_millis(4));
        assert_eq!(snap.eval_time, Duration::from_millis(10));
        assert_eq!(snap.mean_eval_time(), Duration::from_millis(5));
        assert!((snap.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!(snap.qps() > 0.0);
        // The recent window saw all three requests, one of them a hit.
        assert_eq!(snap.recent_queries, 3);
        assert_eq!(snap.recent_hits, 1);
        assert!(snap.recent_qps >= 3.0, "young counter divides by its age");
        assert!((snap.recent_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        // Stage histograms saw one sample per engine run.
        assert_eq!(snap.stages.candidates.count, 2);
        assert_eq!(snap.stages.eval.count, 2);
        assert!(snap.stages.candidates.percentile_duration(0.5) >= Duration::from_millis(2));
    }

    #[test]
    fn idle_snapshot_has_zero_rates() {
        let snap = ServiceMetrics::new().snapshot();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.index_serve_rate(), 0.0);
        assert_eq!(snap.mean_eval_time(), Duration::ZERO);
        assert_eq!(snap.plan_hit_rate(), 0.0);
        assert_eq!(snap.estimation_error(), 0.0);
        assert_eq!(snap.recent_hit_rate(), 0.0);
        assert_eq!(snap.recent_qps, 0.0);
        assert_eq!(snap.latency_percentile(0.99), Duration::ZERO);
        assert_eq!(snap.ttfr_percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn mean_eval_time_survives_huge_miss_counts() {
        // The old `cache_misses as u32` cast truncated 2^32 to 0 and
        // panicked on the division; u128 arithmetic must not.
        let snap = MetricsSnapshot {
            cache_misses: 1 << 32,
            eval_time: Duration::from_secs(1 << 33),
            ..Default::default()
        };
        assert_eq!(snap.mean_eval_time(), Duration::from_secs(2));
        let uneven = MetricsSnapshot {
            cache_misses: 3,
            eval_time: Duration::from_nanos(10),
            ..Default::default()
        };
        assert_eq!(uneven.mean_eval_time(), Duration::from_nanos(3));
    }

    #[test]
    fn aborted_runs_fold_partial_stats_without_counting_as_misses() {
        let m = ServiceMetrics::new();
        let partial = EvalStats {
            candidate_time: Duration::from_millis(4),
            prune_down_time: Duration::from_millis(1),
            input_nodes: 100,
            index_lookups: 40,
            ..Default::default()
        };
        m.record_aborted(&partial);
        m.record_timeout();
        let snap = m.snapshot();
        assert_eq!(snap.aborted, 1);
        assert_eq!(snap.aborted_eval_time, Duration::from_millis(5));
        assert_eq!(snap.queries, 0, "no answer was produced");
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.eval_time, Duration::ZERO);
        // The partial work is visible in the stage rollups and histograms.
        assert_eq!(snap.candidate_time, Duration::from_millis(4));
        assert_eq!(snap.prune_down_time, Duration::from_millis(1));
        assert_eq!(snap.input_nodes, 100);
        assert_eq!(snap.index_lookups, 40);
        assert_eq!(snap.stages.candidates.count, 1);
        assert_eq!(snap.recent_queries, 1, "aborted requests count as load");
    }

    #[test]
    fn latency_and_ttfr_histograms_expose_percentiles() {
        let m = ServiceMetrics::new();
        for ms in [1u64, 2, 4, 8, 100] {
            m.record_latency(Duration::from_millis(ms));
        }
        let run = EvalStats {
            time_to_first_row: Duration::from_micros(300),
            result_tuples: 1,
            ..Default::default()
        };
        m.record_miss(&run);
        m.record_miss(&EvalStats::default()); // empty answer: no TTFR sample
        let snap = m.snapshot();
        assert_eq!(snap.latency.count, 5);
        assert!(snap.latency_percentile(0.5) >= Duration::from_millis(4));
        assert!(snap.latency_percentile(0.99) >= Duration::from_millis(100));
        assert!(snap.latency_percentile(0.5) <= snap.latency_percentile(0.999));
        assert_eq!(snap.ttfr.count, 1, "zero TTFR (empty answer) not sampled");
        assert!(snap.ttfr_percentile(0.5) >= Duration::from_micros(300));
    }

    #[test]
    fn prometheus_page_contains_counters_gauges_and_histograms() {
        let m = ServiceMetrics::new();
        m.record_miss(&EvalStats {
            result_tuples: 3,
            time_to_first_row: Duration::from_micros(50),
            ..Default::default()
        });
        m.record_hit();
        m.record_latency(Duration::from_millis(2));
        let page = m.snapshot().render_prometheus();
        assert!(page.contains("# TYPE gtpq_queries_total counter"));
        assert!(page.contains("gtpq_queries_total 2"));
        assert!(page.contains("gtpq_result_tuples_total 3"));
        assert!(page.contains("# TYPE gtpq_request_latency_seconds histogram"));
        assert!(page.contains("gtpq_request_latency_seconds_count 1"));
        assert!(page.contains("gtpq_stage_seconds_bucket{stage=\"candidates\",le=\"+Inf\"} 1"));
        assert!(page.contains("# TYPE gtpq_recent_qps gauge"));
        // One header per family even with six stage label sets.
        assert_eq!(
            page.matches("# TYPE gtpq_stage_seconds histogram").count(),
            1
        );
    }

    #[test]
    fn concurrent_recording_stays_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering as AtomOrd};
        use std::sync::Arc;

        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;
        let m = Arc::new(ServiceMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));

        // One thread snapshots continuously while the others hammer the
        // recorders; every intermediate snapshot must be monotone.
        let observer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = m.snapshot();
                while !stop.load(AtomOrd::Relaxed) {
                    let snap = m.snapshot();
                    assert!(snap.queries >= last.queries);
                    assert!(snap.cache_hits >= last.cache_hits);
                    assert!(snap.cache_misses >= last.cache_misses);
                    assert!(snap.latency.count >= last.latency.count);
                    assert!(snap.stages.eval.count >= last.stages.eval.count);
                    assert!(snap.eval_time >= last.eval_time);
                    last = snap;
                }
            })
        };
        let writers: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let stats = EvalStats {
                        candidate_time: Duration::from_micros(10),
                        result_tuples: 1,
                        time_to_first_row: Duration::from_micros(5),
                        ..Default::default()
                    };
                    for i in 0..PER_THREAD {
                        if (i + t as u64).is_multiple_of(3) {
                            m.record_hit();
                        } else {
                            m.record_miss(&stats);
                        }
                        m.record_latency(Duration::from_micros(i + 1));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, AtomOrd::Relaxed);
        observer.join().unwrap();

        let total = THREADS as u64 * PER_THREAD;
        let snap = m.snapshot();
        assert_eq!(snap.queries, total);
        assert_eq!(snap.queries, snap.cache_hits + snap.cache_misses);
        // Histogram totals equal the recorded counts exactly.
        assert_eq!(snap.latency.count, total);
        assert_eq!(snap.stages.eval.count, snap.cache_misses);
        assert_eq!(snap.ttfr.count, snap.cache_misses);
        let bucket_sum: u64 = snap.latency.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(bucket_sum, total);
    }

    #[test]
    fn parallel_worker_metrics_roll_up() {
        let m = ServiceMetrics::new();
        m.record_miss(&EvalStats {
            candidate_time: Duration::from_millis(10),
            parallel_workers: 4,
            worker_busy_time: Duration::from_millis(30),
            morsels_dispatched: 12,
            max_queue_depth: 5,
            ..Default::default()
        });
        // Aborted runs fold their partial parallel work too.
        m.record_aborted(&EvalStats {
            worker_busy_time: Duration::from_millis(10),
            morsels_dispatched: 3,
            max_queue_depth: 2,
            ..Default::default()
        });
        let snap = m.snapshot();
        assert_eq!(snap.worker_busy_time, Duration::from_millis(40));
        assert_eq!(snap.morsels, 15);
        assert_eq!(snap.max_queue_depth, 5, "high-water mark, not a sum");
        assert!(
            snap.worker_utilization() > 1.0,
            "busy time exceeds engine time"
        );
        let page = snap.render_prometheus();
        assert!(page.contains("# TYPE gtpq_worker_busy_seconds counter"));
        assert!(page.contains("gtpq_morsels_total 15"));
        assert!(page.contains("# TYPE gtpq_morsel_queue_depth_max gauge"));
        assert!(page.contains("gtpq_morsel_queue_depth_max 5"));
    }

    #[test]
    fn epoch_metrics_roll_up_and_render() {
        let m = ServiceMetrics::new();
        m.set_graph_epoch(3);
        m.record_rotation(4, 2);
        m.record_rotation(6, 0);
        let snap = m.snapshot();
        assert_eq!(snap.graph_epoch, 6);
        assert_eq!(snap.epoch_rotations, 2);
        assert_eq!(snap.stale_evictions, 2);
        // The gauge is monotone: a racing report of an older epoch is a no-op.
        m.set_graph_epoch(5);
        assert_eq!(m.snapshot().graph_epoch, 6);
        let page = snap.render_prometheus();
        assert!(page.contains("# TYPE gtpq_graph_epoch gauge"));
        assert!(page.contains("gtpq_graph_epoch 6"));
        assert!(page.contains("# TYPE gtpq_epoch_rotations_total counter"));
        assert!(page.contains("gtpq_epoch_rotations_total 2"));
        assert!(page.contains("# TYPE gtpq_stale_evictions_total counter"));
        assert!(page.contains("gtpq_stale_evictions_total 2"));
    }

    #[test]
    fn sim_metrics_roll_up_and_render() {
        let m = ServiceMetrics::new();
        m.record_miss(&EvalStats {
            sim_pivot_filtered: 90,
            sim_verified: 10,
            ..Default::default()
        });
        // Aborted runs keep their partial sim work too.
        m.record_aborted(&EvalStats {
            sim_pivot_filtered: 10,
            sim_verified: 10,
            ..Default::default()
        });
        let snap = m.snapshot();
        assert_eq!(snap.sim_pivot_filtered, 100);
        assert_eq!(snap.sim_verified, 20);
        assert!((snap.sim_filter_selectivity() - 100.0 / 120.0).abs() < 1e-9);
        assert_eq!(
            ServiceMetrics::new().snapshot().sim_filter_selectivity(),
            0.0
        );
        let page = snap.render_prometheus();
        assert!(page.contains("# TYPE gtpq_sim_pivot_filtered_total counter"));
        assert!(page.contains("gtpq_sim_pivot_filtered_total 100"));
        assert!(page.contains("# TYPE gtpq_sim_verified_total counter"));
        assert!(page.contains("gtpq_sim_verified_total 20"));
        assert!(page.contains("# TYPE gtpq_sim_filter_selectivity gauge"));
    }

    #[test]
    fn plan_metrics_roll_up() {
        use gtpq_core::OperatorStats;
        let m = ServiceMetrics::new();
        m.record_plan_miss();
        m.record_plan_hit();
        m.record_plan_hit();
        let stats = EvalStats {
            plan_time: Duration::from_millis(2),
            operators: vec![
                OperatorStats {
                    label: "IndexScan u0".into(),
                    estimated_rows: 12,
                    actual_rows: 8,
                    time: Duration::from_millis(1),
                },
                OperatorStats {
                    label: "Collect".into(),
                    estimated_rows: 4,
                    actual_rows: 4,
                    time: Duration::from_millis(1),
                },
            ],
            ..Default::default()
        };
        m.record_miss(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.plan_cache_hits, 2);
        assert_eq!(snap.plan_cache_misses, 1);
        assert!((snap.plan_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(snap.plan_time, Duration::from_millis(2));
        assert_eq!(snap.estimated_rows, 16);
        assert_eq!(snap.actual_rows, 12);
        assert_eq!(snap.estimation_error_rows, 4);
        assert!((snap.estimation_error() - 4.0 / 12.0).abs() < 1e-9);
        // Opposite-signed errors accumulate instead of canceling.
        let canceling = EvalStats {
            operators: vec![
                OperatorStats {
                    label: "a".into(),
                    estimated_rows: 100,
                    actual_rows: 10,
                    time: Duration::ZERO,
                },
                OperatorStats {
                    label: "b".into(),
                    estimated_rows: 10,
                    actual_rows: 100,
                    time: Duration::ZERO,
                },
            ],
            ..Default::default()
        };
        m.record_miss(&canceling);
        let snap = m.snapshot();
        assert_eq!(snap.estimated_rows, snap.actual_rows + 4);
        assert_eq!(snap.estimation_error_rows, 4 + 180);
        assert!(
            snap.estimation_error() > 1.0,
            "10x-wrong model must not read 0%"
        );
    }
}
