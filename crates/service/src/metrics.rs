//! Aggregate service metrics: QPS, cache hit rate, per-stage timing rollups.
//!
//! All counters are relaxed atomics so the hot path never takes a lock; a
//! [`MetricsSnapshot`] is a consistent-enough point-in-time copy for
//! dashboards and tests (individual counters may be skewed by in-flight
//! queries, which is the usual contract for service counters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gtpq_core::EvalStats;

/// Internal atomic counters of a [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    eval_nanos: AtomicU64,
    candidate_nanos: AtomicU64,
    prune_down_nanos: AtomicU64,
    prune_up_nanos: AtomicU64,
    matching_nanos: AtomicU64,
    enumerate_nanos: AtomicU64,
    input_nodes: AtomicU64,
    index_lookups: AtomicU64,
    index_hits: AtomicU64,
    scanned_nodes: AtomicU64,
    result_tuples: AtomicU64,
    plan_nanos: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    estimated_rows: AtomicU64,
    actual_rows: AtomicU64,
    estimation_error_rows: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    rows_truncated: AtomicU64,
    enumerated_rows: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            eval_nanos: AtomicU64::new(0),
            candidate_nanos: AtomicU64::new(0),
            prune_down_nanos: AtomicU64::new(0),
            prune_up_nanos: AtomicU64::new(0),
            matching_nanos: AtomicU64::new(0),
            enumerate_nanos: AtomicU64::new(0),
            input_nodes: AtomicU64::new(0),
            index_lookups: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            scanned_nodes: AtomicU64::new(0),
            result_tuples: AtomicU64::new(0),
            plan_nanos: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            estimated_rows: AtomicU64::new(0),
            actual_rows: AtomicU64::new(0),
            estimation_error_rows: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rows_truncated: AtomicU64::new(0),
            enumerated_rows: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_truncated(&self) {
        self.rows_truncated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self, stats: &EvalStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let add = |counter: &AtomicU64, d: Duration| {
            counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        };
        add(&self.eval_nanos, stats.total_time());
        add(&self.candidate_nanos, stats.candidate_time);
        add(&self.prune_down_nanos, stats.prune_down_time);
        add(&self.prune_up_nanos, stats.prune_up_time);
        add(&self.matching_nanos, stats.matching_graph_time);
        add(&self.enumerate_nanos, stats.enumerate_time);
        self.input_nodes
            .fetch_add(stats.input_nodes, Ordering::Relaxed);
        self.index_lookups
            .fetch_add(stats.index_lookups, Ordering::Relaxed);
        self.index_hits
            .fetch_add(stats.index_hits, Ordering::Relaxed);
        self.scanned_nodes
            .fetch_add(stats.scanned_nodes, Ordering::Relaxed);
        self.result_tuples
            .fetch_add(stats.result_tuples, Ordering::Relaxed);
        self.enumerated_rows
            .fetch_add(stats.enumerated_rows, Ordering::Relaxed);
        add(&self.plan_nanos, stats.plan_time);
        self.estimated_rows
            .fetch_add(stats.estimated_rows(), Ordering::Relaxed);
        self.actual_rows
            .fetch_add(stats.actual_rows(), Ordering::Relaxed);
        self.estimation_error_rows
            .fetch_add(stats.absolute_estimation_error(), Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        MetricsSnapshot {
            uptime,
            queries,
            cache_hits: hits,
            cache_misses: misses,
            batches: self.batches.load(Ordering::Relaxed),
            eval_time: Duration::from_nanos(self.eval_nanos.load(Ordering::Relaxed)),
            candidate_time: Duration::from_nanos(self.candidate_nanos.load(Ordering::Relaxed)),
            prune_down_time: Duration::from_nanos(self.prune_down_nanos.load(Ordering::Relaxed)),
            prune_up_time: Duration::from_nanos(self.prune_up_nanos.load(Ordering::Relaxed)),
            matching_time: Duration::from_nanos(self.matching_nanos.load(Ordering::Relaxed)),
            enumerate_time: Duration::from_nanos(self.enumerate_nanos.load(Ordering::Relaxed)),
            input_nodes: self.input_nodes.load(Ordering::Relaxed),
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            scanned_nodes: self.scanned_nodes.load(Ordering::Relaxed),
            result_tuples: self.result_tuples.load(Ordering::Relaxed),
            plan_time: Duration::from_nanos(self.plan_nanos.load(Ordering::Relaxed)),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            estimated_rows: self.estimated_rows.load(Ordering::Relaxed),
            actual_rows: self.actual_rows.load(Ordering::Relaxed),
            estimation_error_rows: self.estimation_error_rows.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rows_truncated: self.rows_truncated.load(Ordering::Relaxed),
            enumerated_rows: self.enumerated_rows.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the service counters, with derived rates.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// Time since the service was created.
    pub uptime: Duration,
    /// Queries answered (hits + misses).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that ran the engine.
    pub cache_misses: u64,
    /// `evaluate_batch` calls served.
    pub batches: u64,
    /// Total engine evaluation time across cache misses (sum over queries,
    /// not wall clock: concurrent queries overlap).
    pub eval_time: Duration,
    /// Candidate-selection time rollup.
    pub candidate_time: Duration,
    /// Downward-pruning time rollup.
    pub prune_down_time: Duration,
    /// Upward-pruning time rollup.
    pub prune_up_time: Duration,
    /// Matching-graph construction time rollup.
    pub matching_time: Duration,
    /// Result-enumeration time rollup.
    pub enumerate_time: Duration,
    /// Data-node accesses rollup (`#input`, Fig. 10).
    pub input_nodes: u64,
    /// Index-element lookups rollup (`#index`, Fig. 10).
    pub index_lookups: u64,
    /// Candidates served straight from the attribute inverted index during
    /// candidate selection.
    pub index_hits: u64,
    /// Nodes individually verified during candidate selection (the scan
    /// remainder the inverted index could not serve exactly).
    pub scanned_nodes: u64,
    /// Result tuples produced by engine runs.
    pub result_tuples: u64,
    /// Planning time rollup (zero for plan-cache hits).
    pub plan_time: Duration,
    /// Evaluations that reused a cached physical plan.
    pub plan_cache_hits: u64,
    /// Evaluations that built a fresh physical plan.
    pub plan_cache_misses: u64,
    /// Sum of the planner's per-operator row estimates across engine runs.
    pub estimated_rows: u64,
    /// Sum of the rows those operators actually produced.
    pub actual_rows: u64,
    /// Sum of per-operator `|estimated − actual|` across engine runs
    /// (absolute, so over- and under-estimates cannot cancel).
    pub estimation_error_rows: u64,
    /// Requests aborted because their deadline passed.
    pub timed_out: u64,
    /// Requests aborted through their cancellation token.
    pub cancelled: u64,
    /// Outcomes whose row window was cut short by a `limit` (more rows
    /// existed past the returned window).
    pub rows_truncated: u64,
    /// Rows pulled from the streaming enumerator across engine runs
    /// (including offset-skipped and look-ahead rows); compare against
    /// `result_tuples` to see how much enumeration limit pushdown avoided.
    pub enumerated_rows: u64,
}

impl MetricsSnapshot {
    /// Queries per second since service creation.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }

    /// Fraction of queries served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Fraction of initial candidates served straight from the inverted
    /// index across all engine runs (0.0 when idle).
    pub fn index_serve_rate(&self) -> f64 {
        gtpq_core::stats::serve_rate(self.index_hits, self.scanned_nodes)
    }

    /// Fraction of engine runs that reused a cached physical plan
    /// (0.0 when no plans were requested).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// Aggregate cardinality-estimation error of the cost model: the sum of
    /// per-operator `|estimated − actual|` over the sum of actual rows
    /// (0.0 = estimates exactly matched the executed cardinalities; errors
    /// are accumulated per operator, so an over-estimate cannot cancel an
    /// under-estimate).
    pub fn estimation_error(&self) -> f64 {
        self.estimation_error_rows as f64 / self.actual_rows.max(1) as f64
    }

    /// Mean engine time per cache miss.
    pub fn mean_eval_time(&self) -> Duration {
        if self.cache_misses == 0 {
            Duration::ZERO
        } else {
            self.eval_time / self.cache_misses as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollups_accumulate_and_rates_derive() {
        let m = ServiceMetrics::new();
        let stats = EvalStats {
            candidate_time: Duration::from_millis(2),
            prune_down_time: Duration::from_millis(3),
            result_tuples: 7,
            input_nodes: 11,
            index_hits: 9,
            scanned_nodes: 3,
            ..Default::default()
        };
        m.record_miss(&stats);
        m.record_miss(&stats);
        m.record_hit();
        m.record_batch();
        let snap = m.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.result_tuples, 14);
        assert_eq!(snap.input_nodes, 22);
        assert_eq!(snap.index_hits, 18);
        assert_eq!(snap.scanned_nodes, 6);
        assert!((snap.index_serve_rate() - 0.75).abs() < 1e-9);
        assert_eq!(snap.candidate_time, Duration::from_millis(4));
        assert_eq!(snap.eval_time, Duration::from_millis(10));
        assert_eq!(snap.mean_eval_time(), Duration::from_millis(5));
        assert!((snap.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!(snap.qps() > 0.0);
    }

    #[test]
    fn idle_snapshot_has_zero_rates() {
        let snap = ServiceMetrics::new().snapshot();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.index_serve_rate(), 0.0);
        assert_eq!(snap.mean_eval_time(), Duration::ZERO);
        assert_eq!(snap.plan_hit_rate(), 0.0);
        assert_eq!(snap.estimation_error(), 0.0);
    }

    #[test]
    fn plan_metrics_roll_up() {
        use gtpq_core::OperatorStats;
        let m = ServiceMetrics::new();
        m.record_plan_miss();
        m.record_plan_hit();
        m.record_plan_hit();
        let stats = EvalStats {
            plan_time: Duration::from_millis(2),
            operators: vec![
                OperatorStats {
                    label: "IndexScan u0".into(),
                    estimated_rows: 12,
                    actual_rows: 8,
                    time: Duration::from_millis(1),
                },
                OperatorStats {
                    label: "Collect".into(),
                    estimated_rows: 4,
                    actual_rows: 4,
                    time: Duration::from_millis(1),
                },
            ],
            ..Default::default()
        };
        m.record_miss(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.plan_cache_hits, 2);
        assert_eq!(snap.plan_cache_misses, 1);
        assert!((snap.plan_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(snap.plan_time, Duration::from_millis(2));
        assert_eq!(snap.estimated_rows, 16);
        assert_eq!(snap.actual_rows, 12);
        assert_eq!(snap.estimation_error_rows, 4);
        assert!((snap.estimation_error() - 4.0 / 12.0).abs() < 1e-9);
        // Opposite-signed errors accumulate instead of canceling.
        let canceling = EvalStats {
            operators: vec![
                OperatorStats {
                    label: "a".into(),
                    estimated_rows: 100,
                    actual_rows: 10,
                    time: Duration::ZERO,
                },
                OperatorStats {
                    label: "b".into(),
                    estimated_rows: 10,
                    actual_rows: 100,
                    time: Duration::ZERO,
                },
            ],
            ..Default::default()
        };
        m.record_miss(&canceling);
        let snap = m.snapshot();
        assert_eq!(snap.estimated_rows, snap.actual_rows + 4);
        assert_eq!(snap.estimation_error_rows, 4 + 180);
        assert!(
            snap.estimation_error() > 1.0,
            "10x-wrong model must not read 0%"
        );
    }
}
