//! The concurrent query service.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gtpq_core::{EvalStats, GteaEngine, GteaOptions};
use gtpq_graph::DataGraph;
use gtpq_query::{Gtpq, ParseError, ResultSet};
use gtpq_reach::{build_selected, BackendKind, BackendSelection, SharedIndex};

use crate::cache::ResultCache;
use crate::canon::canonicalize;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Reachability backend; `None` lets [`gtpq_reach::select_backend`] pick one from the
    /// graph's statistics.
    pub backend: Option<BackendKind>,
    /// Worker threads used by [`QueryService::evaluate_batch`].  Defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// Result-cache capacity in result sets; 0 disables caching.
    pub cache_capacity: usize,
    /// Engine options forwarded to every evaluation.
    pub options: GteaOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            backend: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 256,
            options: GteaOptions::default(),
        }
    }
}

/// A thread-safe, multi-query front end over the GTEA engine.
///
/// The service owns the data graph and one shared reachability index (built
/// once, chosen per [`ServiceConfig::backend`]), answers queries through an
/// equivalence-aware LRU result cache, and fans batches out over a thread
/// pool.  All methods take `&self`: one service instance can be wrapped in an
/// `Arc` and shared across any number of request threads.
///
/// ```
/// use std::sync::Arc;
/// use gtpq_graph::GraphBuilder;
/// use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};
/// use gtpq_service::QueryService;
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node_with_label("a");
/// let c = b.add_node_with_label("b");
/// b.add_edge(a, c);
/// let service = QueryService::new(Arc::new(b.build()));
///
/// let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
/// let root = qb.root_id();
/// let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
/// qb.mark_output(child);
/// let q = qb.build().unwrap();
///
/// assert_eq!(service.evaluate(&q).len(), 1);
/// assert_eq!(service.evaluate(&q).len(), 1); // served from the cache
/// assert_eq!(service.metrics().cache_hits, 1);
/// ```
pub struct QueryService {
    graph: Arc<DataGraph>,
    index: SharedIndex,
    selection: Option<BackendSelection>,
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// Builds a service with the default configuration (auto-selected
    /// backend, machine parallelism, 256-entry cache).
    pub fn new(graph: Arc<DataGraph>) -> Self {
        Self::with_config(graph, ServiceConfig::default())
    }

    /// Builds a service with an explicit configuration.
    pub fn with_config(graph: Arc<DataGraph>, config: ServiceConfig) -> Self {
        let (index, selection) = match config.backend {
            Some(kind) => (kind.build_shared(&graph), None),
            None => {
                let (index, selection) = build_selected(&graph);
                (index, Some(selection))
            }
        };
        Self {
            graph,
            index,
            selection,
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            config,
            metrics: ServiceMetrics::new(),
        }
    }

    /// The data graph the service answers queries over.
    pub fn graph(&self) -> &Arc<DataGraph> {
        &self.graph
    }

    /// Name of the reachability backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.index.name()
    }

    /// The auto-selection decision, when the backend was not pinned.
    pub fn backend_selection(&self) -> Option<&BackendSelection> {
        self.selection.as_ref()
    }

    /// Evaluates one query, consulting the result cache first.
    pub fn evaluate(&self, q: &Gtpq) -> Arc<ResultSet> {
        self.evaluate_with_stats(q).0
    }

    /// Parses `text` as the GTPQ query language (see
    /// [`gtpq_query::parse`]) and evaluates the query, consulting the
    /// result cache first.
    ///
    /// Textually different spellings of one pattern share a cache slot: the
    /// cache key is the canonical form of the *parsed* query, which is
    /// insensitive to whitespace, comments, sibling order and formula
    /// spelling.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gtpq_query::fixtures::example_graph;
    /// use gtpq_service::QueryService;
    ///
    /// let service = QueryService::new(Arc::new(example_graph()));
    /// let cold = service.evaluate_text("a1 { //b1* }").unwrap();
    /// let warm = service.evaluate_text("a1 {   //b1*   } # same query").unwrap();
    /// assert!(Arc::ptr_eq(&cold, &warm));
    /// assert!(service.evaluate_text("a1 { //b1* ").is_err());
    /// ```
    pub fn evaluate_text(&self, text: &str) -> Result<Arc<ResultSet>, ParseError> {
        Ok(self.evaluate_text_with_stats(text)?.0)
    }

    /// Parses `text` and evaluates it, returning per-query engine statistics
    /// (see [`evaluate_with_stats`](Self::evaluate_with_stats) for the
    /// cache-hit behaviour of the stats).
    pub fn evaluate_text_with_stats(
        &self,
        text: &str,
    ) -> Result<(Arc<ResultSet>, EvalStats), ParseError> {
        let q = gtpq_query::parse_query(text)?;
        Ok(self.evaluate_with_stats(&q))
    }

    /// Evaluates one query, returning per-query engine statistics.
    ///
    /// On a cache hit the engine never runs, so the returned stats are
    /// `EvalStats::default()`; aggregate hit/miss counts live in
    /// [`metrics`](Self::metrics).
    pub fn evaluate_with_stats(&self, q: &Gtpq) -> (Arc<ResultSet>, EvalStats) {
        let canon = (self.config.cache_capacity > 0).then(|| canonicalize(q));
        if let Some(canon) = &canon {
            let hit = self
                .cache
                .lock()
                .expect("cache lock poisoned")
                .lookup(canon, q);
            if let Some(results) = hit {
                self.metrics.record_hit();
                return (results, EvalStats::default());
            }
        }
        let engine =
            GteaEngine::with_backend(&self.graph, Arc::clone(&self.index), self.config.options);
        let (results, stats) = engine.evaluate_with_stats(q);
        let results = Arc::new(results);
        if let Some(canon) = &canon {
            self.cache.lock().expect("cache lock poisoned").insert(
                canon,
                Arc::new(q.clone()),
                Arc::clone(&results),
            );
        }
        self.metrics.record_miss(&stats);
        (results, stats)
    }

    /// Evaluates a batch of queries across the worker pool, preserving input
    /// order in the returned answers.
    ///
    /// Workers steal queries from a shared cursor, so skewed workloads load-
    /// balance; answers are identical to evaluating the batch sequentially
    /// (the cache is shared, so duplicate queries within one batch may be
    /// served from it).
    pub fn evaluate_batch(&self, queries: &[Gtpq]) -> Vec<Arc<ResultSet>> {
        self.metrics.record_batch();
        let workers = self.config.threads.min(queries.len()).max(1);
        if workers == 1 {
            return queries.iter().map(|q| self.evaluate(q)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut answers: Vec<Option<Arc<ResultSet>>> = vec![None; queries.len()];
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            local.push((i, self.evaluate(&queries[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<_>>()
        });
        for (i, r) in chunks.into_iter().flatten() {
            answers[i] = Some(r);
        }
        answers
            .into_iter()
            .map(|r| r.expect("every query was assigned to a worker"))
            .collect()
    }

    /// Point-in-time aggregate metrics (QPS, hit rate, stage rollups).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of result sets currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }
}

// The whole point of the service: it can be shared across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};

    use super::*;

    fn service_for_example() -> QueryService {
        QueryService::new(Arc::new(example_graph()))
    }

    #[test]
    fn evaluate_matches_naive_and_caches() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, service.graph());
        let cold = service.evaluate(&q);
        assert!(cold.same_answer(&expected));
        let warm = service.evaluate(&q);
        assert!(Arc::ptr_eq(&cold, &warm), "second call must be a cache hit");
        let m = service.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.hit_rate() > 0.49);
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn stats_are_reported_on_misses_only() {
        let service = service_for_example();
        let q = example_query();
        let (_, cold_stats) = service.evaluate_with_stats(&q);
        assert!(cold_stats.initial_candidates > 0);
        let (_, warm_stats) = service.evaluate_with_stats(&q);
        assert_eq!(warm_stats.initial_candidates, 0);
    }

    #[test]
    fn pinned_backend_is_used() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                backend: Some(BackendKind::Sspi),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.backend_name(), "sspi");
        assert!(service.backend_selection().is_none());
        let q = example_query();
        assert!(service
            .evaluate(&q)
            .same_answer(&naive::evaluate(&q, service.graph())));
    }

    #[test]
    fn auto_selection_exposes_its_reasoning() {
        let service = service_for_example();
        let selection = service.backend_selection().expect("auto mode");
        assert!(!selection.reason.is_empty());
        assert_eq!(
            selection.kind.build_shared(service.graph()).name(),
            service.backend_name()
        );
    }

    #[test]
    fn batch_preserves_order_and_matches_sequential() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                threads: 4,
                cache_capacity: 0, // force every query through the engine
                ..ServiceConfig::default()
            },
        );
        let mut queries = Vec::new();
        for label in ["a1", "b1", "c1", "d1", "e1", "g1"] {
            let mut b = GtpqBuilder::new(AttrPredicate::label(label));
            let root = b.root_id();
            b.mark_output(root);
            queries.push(b.build().unwrap());
            let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
            let root = b.root_id();
            let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
            b.mark_output(child);
            queries.push(b.build().unwrap());
        }
        let batched = service.evaluate_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            let expected = naive::evaluate(q, service.graph());
            assert!(got.same_answer(&expected));
        }
        assert_eq!(service.metrics().batches, 1);
        assert_eq!(service.metrics().queries, queries.len() as u64);
    }

    #[test]
    fn evaluate_text_matches_the_builder_query() {
        let service = service_for_example();
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("d1"));
        b.mark_output(child);
        let built = b.build().unwrap();
        let from_text = service.evaluate_text("a1 { //d1* }").unwrap();
        assert!(from_text.same_answer(&service.evaluate(&built)));
        // ... and the parsed query shares the cache slot with the built one.
        assert!(service.metrics().cache_hits >= 1);
    }

    #[test]
    fn evaluate_text_reports_parse_errors_with_spans() {
        let service = service_for_example();
        let err = service.evaluate_text("a1 { //d1* ").unwrap_err();
        assert!(err.message.contains("unbalanced `{`"));
        assert_eq!(err.span.start, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = service_for_example();
        assert!(service.evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn works_on_cyclic_graphs() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        gb.add_edge(c, a);
        let g = Arc::new(gb.build());
        let service = QueryService::new(Arc::clone(&g));
        let mut qb = GtpqBuilder::new(AttrPredicate::label("b"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("a"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        assert!(service.evaluate(&q).same_answer(&naive::evaluate(&q, &g)));
    }
}
