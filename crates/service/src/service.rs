//! The concurrent query service.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use gtpq_core::{
    Aborted, EvalStats, ExecCtl, ExecOptions, GteaEngine, GteaOptions, Interrupt, Planner,
    QueryPlan, Tracer,
};
use gtpq_graph::{DataGraph, GraphHandle, GraphSnapshot, SnapshotError};
use gtpq_query::{Gtpq, ParseError, ResultSet};
use gtpq_reach::{build_selected_with, BackendKind, BackendSelection, GraphProfile, SharedIndex};

use crate::cache::{PlanCache, ResultCache};
use crate::canon::{canonicalize, CanonicalQuery};
use crate::lazy::LazyIndex;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::request::{QueryError, QueryOutcome, QueryRequest, QuerySource};
use crate::slowlog::{SlowOutcome, SlowQueryEntry, SlowQueryLog};

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Reachability backend; `None` lets [`gtpq_reach::select_backend`] pick one from the
    /// graph's statistics.
    pub backend: Option<BackendKind>,
    /// Worker threads used by [`QueryService::submit_batch`].  Defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// Intra-query parallelism degree offered to every request that does not
    /// set [`QueryRequest::threads`] itself: morsel-driven candidate
    /// selection, pruning, matching-graph construction and partitioned
    /// enumeration fan a single query out over up to this many scoped worker
    /// threads.  `1` keeps all requests serial.  The planner's cost gate
    /// ([`QueryPlan::recommended_threads`]) still drops cheap queries to a
    /// serial run, and results are bit-for-bit identical at any degree.
    /// Defaults to the machine's available parallelism.
    pub intra_query_threads: usize,
    /// Result-cache capacity in result sets; 0 disables caching.
    pub cache_capacity: usize,
    /// Plan-cache capacity in physical plans; 0 disables plan caching.
    pub plan_cache_capacity: usize,
    /// Whether the planner may pick a reachability backend per query (built
    /// lazily, then shared through the backend catalog).  Ignored — treated
    /// as `false` — when [`backend`](Self::backend) pins one explicitly.
    pub per_query_backend: bool,
    /// Engine options forwarded to every evaluation.
    pub options: GteaOptions,
    /// Requests whose end-to-end latency reaches this threshold are recorded
    /// in the slow-query log (with their canonical text, outcome and the
    /// executed plan's actuals); `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// Capacity of the slow-query ring buffer; once full, the oldest entry
    /// is evicted.
    pub slow_log_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            backend: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            intra_query_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 256,
            plan_cache_capacity: 256,
            per_query_backend: true,
            options: GteaOptions::default(),
            slow_query_threshold: Some(Duration::from_millis(100)),
            slow_log_capacity: 32,
        }
    }
}

/// A thread-safe, multi-query front end over the GTEA engine.
///
/// The service owns the data graph and one shared reachability index (built
/// once, chosen per [`ServiceConfig::backend`]), answers
/// [`QueryRequest`]s through an equivalence-aware LRU result cache, and fans
/// batches out over a thread pool.  All methods take `&self`: one service
/// instance can be wrapped in an `Arc` and shared across any number of
/// request threads.
///
/// ```
/// use std::sync::Arc;
/// use gtpq_graph::GraphBuilder;
/// use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};
/// use gtpq_service::{QueryRequest, QueryService};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node_with_label("a");
/// let c = b.add_node_with_label("b");
/// b.add_edge(a, c);
/// let service = QueryService::new(Arc::new(b.build()));
///
/// let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
/// let root = qb.root_id();
/// let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
/// qb.mark_output(child);
/// let q = qb.build().unwrap();
///
/// let request = QueryRequest::query(q);
/// assert_eq!(service.submit(&request).unwrap().len(), 1);
/// assert_eq!(service.submit(&request).unwrap().len(), 1); // served from the cache
/// assert_eq!(service.metrics().cache_hits, 1);
/// ```
pub struct QueryService {
    source: GraphSource,
    /// The current graph generation.  Requests clone the `Arc` once and read
    /// everything — snapshot, index, catalog — through their pinned copy, so
    /// a concurrent epoch rotation never mixes generations inside one
    /// evaluation.
    state: RwLock<Arc<EpochState>>,
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    plans: Mutex<PlanCache>,
    metrics: ServiceMetrics,
    slowlog: SlowQueryLog,
}

/// Where the service's graph comes from.
enum GraphSource {
    /// A frozen graph: the epoch-0 snapshot built at construction is the
    /// only generation the service will ever serve.
    Static,
    /// A live graph: every [`GraphHandle::commit`] publishes a new epoch,
    /// and the service rotates its [`EpochState`] (invalidating both caches
    /// and the backend catalog) before answering the next request.
    Live(Arc<GraphHandle>),
}

/// Everything bound to one graph generation: the pinned snapshot, the
/// reachability index built on it, the selection reasoning, and the lazily
/// built per-query backend catalog.
///
/// Dropping the service's reference on rotation does not free the state
/// while requests still hold it — in-flight evaluations keep reading the
/// generation they started on.
struct EpochState {
    epoch: u64,
    snapshot: Arc<GraphSnapshot>,
    index: SharedIndex,
    default_kind: BackendKind,
    selection: Option<BackendSelection>,
    profile: GraphProfile,
    /// Per-query backend catalog: indexes built on demand by the planner's
    /// recommendation (or a request's pinned backend), shared across all
    /// subsequent queries of this generation.
    backends: Mutex<HashMap<BackendKind, SharedIndex>>,
}

impl EpochState {
    /// Builds the generation state for `snapshot`: profiles the graph,
    /// resolves the default reachability backend — reusing the snapshot's
    /// already-computed condensation — and seeds the catalog with it.
    ///
    /// A *pinned* backend ([`ServiceConfig::backend`]) is wrapped in a
    /// [`LazyIndex`] and built on the first reachability probe rather than
    /// here: cold starts that only run index-served lookups (the mapped
    /// snapshot pattern) never pay the O(V+E) construction.  Auto-selection
    /// stays eager — choosing a backend requires profiling the graph, and
    /// the built index is part of the selection evidence.
    fn build(snapshot: Arc<GraphSnapshot>, config: &ServiceConfig) -> Self {
        let g = snapshot.graph();
        let cond = snapshot.condensation();
        let (index, default_kind, selection, profile) = match config.backend {
            Some(kind) => (
                LazyIndex::shared(kind, Arc::clone(&snapshot)),
                kind,
                None,
                GraphProfile::compute_with(g, cond),
            ),
            None => {
                let (index, selection) = build_selected_with(g, cond);
                (index, selection.kind, Some(selection), selection.profile)
            }
        };
        let backends = Mutex::new(HashMap::from([(default_kind, Arc::clone(&index))]));
        Self {
            epoch: snapshot.epoch(),
            snapshot,
            index,
            default_kind,
            selection,
            profile,
            backends,
        }
    }

    /// The data graph of this generation.
    fn graph(&self) -> &Arc<DataGraph> {
        self.snapshot.graph()
    }

    /// The index the plan runs on: the plan's recommended backend (built
    /// lazily into the catalog, then shared) when per-query selection is
    /// enabled and no backend was pinned; the generation default otherwise.
    fn resolve_backend(&self, plan: &QueryPlan, config: &ServiceConfig) -> SharedIndex {
        let per_query = config.per_query_backend && config.backend.is_none();
        let Some(kind) = plan.backend.kind.filter(|_| per_query) else {
            return Arc::clone(&self.index);
        };
        self.backend_from_catalog(kind)
    }

    /// Fetches (or lazily builds and shares) the index for `kind`.
    ///
    /// The catalog lock is never held across an index build — concurrent
    /// queries whose backend is already cataloged must not stall behind a
    /// potentially expensive construction.  Two threads racing on the same
    /// missing backend may both build it; the first insert wins and the
    /// loser's copy is dropped.
    fn backend_from_catalog(&self, kind: BackendKind) -> SharedIndex {
        {
            let backends = self.backends.lock().expect("backend catalog lock poisoned");
            if let Some(index) = backends.get(&kind) {
                return Arc::clone(index);
            }
        }
        let built = kind.build_shared_with(self.graph(), self.snapshot.condensation());
        let mut backends = self.backends.lock().expect("backend catalog lock poisoned");
        Arc::clone(backends.entry(kind).or_insert(built))
    }
}

/// What `submit_inner` sets aside for a potential slow-query entry: the
/// canonical query text and the executed plan rendered with actuals.  Filled
/// only when the slow log is enabled.
#[derive(Default)]
struct SlowCapture {
    query: Option<String>,
    plan: Option<String>,
}

impl QueryService {
    /// Builds a service with the default configuration (auto-selected
    /// backend, machine parallelism, 256-entry cache).
    pub fn new(graph: Arc<DataGraph>) -> Self {
        Self::with_config(graph, ServiceConfig::default())
    }

    /// Builds a service over a frozen graph with an explicit configuration.
    pub fn with_config(graph: Arc<DataGraph>, config: ServiceConfig) -> Self {
        Self::from_source(
            GraphSource::Static,
            Arc::new(GraphSnapshot::freeze(graph)),
            config,
        )
    }

    /// Builds a service over a live graph: queries answer against the
    /// handle's latest committed snapshot, and every commit rotates the
    /// service to the new epoch (fresh backend, invalidated caches) before
    /// the next request is served.  In-flight requests keep the snapshot
    /// they started on.
    pub fn live(handle: Arc<GraphHandle>) -> Self {
        Self::live_with_config(handle, ServiceConfig::default())
    }

    /// Builds a live-graph service with an explicit configuration.
    pub fn live_with_config(handle: Arc<GraphHandle>, config: ServiceConfig) -> Self {
        let snapshot = handle.snapshot();
        Self::from_source(GraphSource::Live(handle), snapshot, config)
    }

    /// Builds a service over an existing epoch snapshot — typically one
    /// loaded from a `.gtpq` file — reusing its stored condensation instead
    /// of recomputing Tarjan (unlike [`QueryService::with_config`], which
    /// must condense the bare graph it is given).  The `Arc` may be shared:
    /// several services (or a service and a mutation handle) can serve from
    /// one immutable mapped snapshot without copying it.
    pub fn from_snapshot(snapshot: Arc<GraphSnapshot>, config: ServiceConfig) -> Self {
        Self::from_source(GraphSource::Static, snapshot, config)
    }

    /// Opens a `.gtpq` snapshot with zero-copy mapping and serves queries
    /// straight from the file pages — the O(page-fault) cold-start path.
    ///
    /// While the service is alive the file must not be truncated or
    /// rewritten in place by another process (`SIGBUS`/torn reads — the
    /// mmap tradeoff; see `gtpq_graph::snap`'s external-modification-hazard
    /// docs).  Atomic replacement via rename, which `GraphSnapshot::save`
    /// always uses, is safe.  Where in-place modification is possible, load
    /// with `LoadMode::Heap` and use [`QueryService::from_snapshot`].
    pub fn open_snapshot<P: AsRef<std::path::Path>>(
        path: P,
        config: ServiceConfig,
    ) -> Result<Self, SnapshotError> {
        let snapshot = Arc::new(GraphSnapshot::open_mmap(path)?);
        Ok(Self::from_snapshot(snapshot, config))
    }

    fn from_source(
        source: GraphSource,
        snapshot: Arc<GraphSnapshot>,
        config: ServiceConfig,
    ) -> Self {
        let state = Arc::new(EpochState::build(snapshot, &config));
        let slow_capacity = if config.slow_query_threshold.is_some() {
            config.slow_log_capacity
        } else {
            0
        };
        let metrics = ServiceMetrics::new();
        metrics.set_graph_epoch(state.epoch);
        // Align the cache generations with a handle that committed before
        // the service was built, so epoch-stamped inserts are accepted.
        let mut cache = ResultCache::new(config.cache_capacity);
        cache.invalidate(state.epoch);
        let mut plans = PlanCache::new(config.plan_cache_capacity);
        plans.invalidate(state.epoch);
        Self {
            source,
            state: RwLock::new(state),
            cache: Mutex::new(cache),
            plans: Mutex::new(plans),
            config,
            metrics,
            slowlog: SlowQueryLog::new(slow_capacity),
        }
    }

    /// The current graph generation, rotating first if the live handle has
    /// committed since the last request.  The returned `Arc` pins the
    /// generation: hold it across an entire request.
    fn current_state(&self) -> Arc<EpochState> {
        let state = Arc::clone(&self.state.read().expect("state lock poisoned"));
        let GraphSource::Live(handle) = &self.source else {
            return state;
        };
        if handle.epoch() == state.epoch {
            return state;
        }
        self.rotate(handle)
    }

    /// Swings the service to the handle's latest snapshot: builds the new
    /// generation's backend, invalidates the result and plan caches (the
    /// evicted entries answered an older graph) and resets the per-epoch
    /// backend catalog by replacing the whole [`EpochState`].
    ///
    /// Double-checked under the write lock: concurrent requests racing on
    /// the same commit rotate once, and a commit that lands mid-rotation is
    /// picked up by the next request.
    fn rotate(&self, handle: &Arc<GraphHandle>) -> Arc<EpochState> {
        let mut slot = self.state.write().expect("state lock poisoned");
        let snapshot = handle.snapshot();
        if snapshot.epoch() == slot.epoch {
            return Arc::clone(&slot);
        }
        let fresh = Arc::new(EpochState::build(snapshot, &self.config));
        let evicted = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .invalidate(fresh.epoch)
            + self
                .plans
                .lock()
                .expect("plan cache lock poisoned")
                .invalidate(fresh.epoch);
        self.metrics.record_rotation(fresh.epoch, evicted as u64);
        *slot = Arc::clone(&fresh);
        fresh
    }

    /// The data graph of the current epoch.  On a live service consecutive
    /// calls may return different generations; pin one by holding the `Arc`.
    pub fn graph(&self) -> Arc<DataGraph> {
        Arc::clone(self.current_state().graph())
    }

    /// The current epoch's snapshot (graph + condensation, epoch-stamped).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.current_state().snapshot)
    }

    /// Epoch of the graph generation the next request will answer against
    /// (0 for a frozen graph or a live graph that never committed).
    pub fn graph_epoch(&self) -> u64 {
        self.current_state().epoch
    }

    /// Name of the reachability backend in use for the current epoch.
    pub fn backend_name(&self) -> &'static str {
        self.current_state().index.name()
    }

    /// The auto-selection decision for the current epoch, when the backend
    /// was not pinned.
    pub fn backend_selection(&self) -> Option<BackendSelection> {
        self.current_state().selection
    }

    /// Serves one [`QueryRequest`]: parse (if textual), check
    /// satisfiability, consult the result cache, then plan and execute with
    /// the request's row window, deadline and cancellation pushed down into
    /// the engine.
    ///
    /// Caching never mixes windows: only *complete* answers (offset 0, not
    /// truncated) are written to the result cache, and any window can be
    /// sliced out of a cached complete answer — so a truncated outcome can
    /// neither poison the full-result slot nor be served where the full
    /// answer was asked for.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gtpq_query::fixtures::example_graph;
    /// use gtpq_service::{QueryError, QueryRequest, QueryService};
    ///
    /// let service = QueryService::new(Arc::new(example_graph()));
    /// let outcome = service
    ///     .submit(&QueryRequest::text("a1 { //b1* }").with_stats())
    ///     .unwrap();
    /// assert!(!outcome.truncated);
    /// assert!(outcome.stats.is_some());
    /// assert!(matches!(
    ///     service.submit(&QueryRequest::text("a1 { //b1* ")),
    ///     Err(QueryError::Parse(_))
    /// ));
    /// ```
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryOutcome, QueryError> {
        let started = Instant::now();
        let tracer = if request.want_trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let mut capture = SlowCapture::default();
        let result = {
            let _root = tracer.span("request");
            self.submit_inner(request, started, &tracer, &mut capture)
        };
        let latency = started.elapsed();
        self.metrics.record_latency(latency);
        if let Some(threshold) = self.config.slow_query_threshold {
            if latency >= threshold {
                let outcome = match &result {
                    Ok(o) => Some(SlowOutcome::Completed {
                        rows: o.rows.len(),
                        truncated: o.truncated,
                    }),
                    Err(QueryError::Timeout { .. }) => Some(SlowOutcome::TimedOut),
                    Err(QueryError::Cancelled) => Some(SlowOutcome::Cancelled),
                    // Parse errors and unsatisfiable queries never reach the
                    // engine; a plan with actuals could not help anyway.
                    Err(_) => None,
                };
                if let Some(outcome) = outcome {
                    self.slowlog.push(
                        capture.query.unwrap_or_default(),
                        latency,
                        outcome,
                        capture.plan,
                    );
                }
            }
        }
        result.map(|mut outcome| {
            outcome.trace = tracer.finish();
            outcome
        })
    }

    /// The body of [`submit`](Self::submit); the wrapper owns the clock, the
    /// tracer's `request` root span, latency recording and slow-query
    /// logging, so every early `return`/`?` exit in here is still observed.
    fn submit_inner(
        &self,
        request: &QueryRequest,
        started: Instant,
        tracer: &Tracer,
        capture: &mut SlowCapture,
    ) -> Result<QueryOutcome, QueryError> {
        // Pin the graph generation before anything else — in particular
        // before the result-cache lookup, since pinning is what rotates the
        // service (and invalidates the caches) after a commit.  Everything
        // below reads through `state`, so a commit landing mid-request
        // cannot mix generations: this request answers for `state.epoch`.
        let state = self.current_state();
        // The deadline budget counts from the moment `submit` is called —
        // parsing, planning and lazy backend construction all spend it, so a
        // request cannot block past its budget in pre-execution stages and
        // then still get a full budget of evaluation on top.
        let deadline = request
            .deadline
            .map(|budget| started.checked_add(budget).unwrap_or(started));
        let parsed: Cow<'_, Gtpq> = match &request.source {
            QuerySource::Query(q) => Cow::Borrowed(q),
            QuerySource::Text(text) => {
                let _span = tracer.span("parse");
                Cow::Owned(gtpq_query::parse_query(text)?)
            }
        };
        let q: &Gtpq = &parsed;
        if !gtpq_analysis::is_satisfiable(q) {
            return Err(QueryError::Unsatisfiable);
        }
        let canon = (self.config.cache_capacity > 0 || self.config.plan_cache_capacity > 0)
            .then(|| canonicalize(q));
        if self.config.slow_query_threshold.is_some() {
            // The Display form is the canonical textual rendering of the
            // query — re-parseable and human-readable, unlike the cache key.
            capture.query = Some(q.to_string());
        }

        // Result-cache lookup: entries always hold complete answers, so the
        // requested window is sliced out of a hit.
        if self.config.cache_capacity > 0 && !request.bypass_cache {
            if let Some(canon) = &canon {
                let hit =
                    self.cache
                        .lock()
                        .expect("cache lock poisoned")
                        .lookup(state.epoch, canon, q);
                if let Some(full) = hit {
                    self.metrics.record_hit();
                    let (rows, truncated) = window(&full, request.offset, request.limit);
                    if truncated {
                        self.metrics.record_truncated();
                    }
                    let plan = request
                        .want_plan
                        .then(|| self.obtain_plan(q, Some(canon), &state).0);
                    return Ok(QueryOutcome {
                        rows,
                        truncated,
                        from_cache: true,
                        stats: request.want_stats.then(|| EvalStats {
                            graph_epoch: state.epoch,
                            ..EvalStats::default()
                        }),
                        plan,
                        trace: None, // the wrapper attaches the finished trace
                    });
                }
            }
        }

        // Miss: plan, resolve the backend, execute with pushdown.
        let plan_span = tracer.span("plan");
        let (plan, plan_time) = self.obtain_plan(q, canon_ref(&canon), &state);
        drop(plan_span);
        let index = match request.backend {
            Some(kind) => state.backend_from_catalog(kind),
            None => state.resolve_backend(&plan, &self.config),
        };
        let mut ctl = ExecCtl::unbounded().with_tracer(tracer.clone());
        if let Some(deadline) = deadline {
            ctl = ctl.with_deadline(deadline);
        }
        if let Some(token) = &request.cancel {
            ctl = ctl.with_cancel(token.clone());
        }
        let engine = GteaEngine::with_backend(state.graph(), index, self.config.options);
        // The request's degree wins over the service default; either way the
        // planner's cost gate keeps queries serial when the estimated work
        // would not amortize the fan-out.
        let requested = request
            .threads
            .unwrap_or(self.config.intra_query_threads)
            .max(1);
        let threads = plan.recommended_threads(requested);
        let options = ExecOptions {
            limit: request.limit,
            offset: request.offset,
            ctl,
            threads,
        };
        let exec = match engine.execute(q, &plan, options) {
            Ok(exec) => exec,
            Err(Aborted {
                interrupt,
                mut stats,
            }) => {
                stats.graph_epoch = state.epoch;
                // The run produced no answer, but its partial stage timings
                // and I/O counters are still load — fold them.
                self.metrics.record_aborted(&stats);
                if self.config.slow_query_threshold.is_some() {
                    capture.plan = Some(plan.render_with_actuals(q, &stats));
                }
                return Err(match interrupt {
                    Interrupt::Timeout => {
                        self.metrics.record_timeout();
                        QueryError::Timeout {
                            budget: request.deadline.unwrap_or_default(),
                        }
                    }
                    Interrupt::Cancelled => {
                        self.metrics.record_cancelled();
                        QueryError::Cancelled
                    }
                });
            }
        };
        let mut stats = exec.stats;
        stats.plan_time = plan_time;
        stats.graph_epoch = state.epoch;
        if self.config.slow_query_threshold.is_some() {
            capture.plan = Some(plan.render_with_actuals(q, &stats));
        }
        let rows = Arc::new(exec.results);

        // A windowed answer must never poison the full-result slot: cache
        // only complete answers.
        if self.config.cache_capacity > 0 && !exec.truncated && request.offset == 0 {
            if let Some(canon) = &canon {
                // Stamped with the pinned epoch: if a commit rotated the
                // cache mid-request, this pre-write answer is dropped.
                self.cache.lock().expect("cache lock poisoned").insert(
                    state.epoch,
                    canon,
                    Arc::new(q.clone()),
                    Arc::clone(&rows),
                );
            }
        }
        self.metrics.record_miss(&stats);
        if exec.truncated {
            self.metrics.record_truncated();
        }
        Ok(QueryOutcome {
            rows,
            truncated: exec.truncated,
            from_cache: false,
            stats: request.want_stats.then_some(stats),
            plan: request.want_plan.then_some(plan),
            trace: None, // the wrapper attaches the finished trace
        })
    }

    /// Serves a batch of requests across the worker pool, preserving input
    /// order in the returned outcomes.
    ///
    /// Workers steal requests from a shared cursor, so skewed workloads
    /// load-balance; outcomes are identical to submitting the batch
    /// sequentially (the cache is shared, so duplicate queries within one
    /// batch may be served from it).  Unlike the deprecated
    /// `evaluate_batch`, every request keeps its own stats, plan and error.
    pub fn submit_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryOutcome, QueryError>> {
        self.metrics.record_batch();
        let workers = self.config.threads.min(requests.len()).max(1);
        if workers == 1 {
            return requests.iter().map(|r| self.submit(r)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut answers: Vec<Option<Result<QueryOutcome, QueryError>>> =
            (0..requests.len()).map(|_| None).collect();
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= requests.len() {
                                break;
                            }
                            local.push((i, self.submit(&requests[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<_>>()
        });
        for (i, r) in chunks.into_iter().flatten() {
            answers[i] = Some(r);
        }
        answers
            .into_iter()
            .map(|r| r.expect("every request was assigned to a worker"))
            .collect()
    }

    /// Evaluates one query, consulting the result cache first.
    ///
    /// # Migration
    ///
    /// Use [`submit`](Self::submit) with
    /// `QueryRequest::query(q.clone())`; the rows are in
    /// [`QueryOutcome::rows`].  Unsatisfiable queries, which `submit`
    /// rejects with [`QueryError::Unsatisfiable`], keep returning an empty
    /// answer here.
    #[deprecated(since = "0.1.0", note = "use `submit` with a `QueryRequest`")]
    pub fn evaluate(&self, q: &Gtpq) -> Arc<ResultSet> {
        match self.submit(&QueryRequest::query(q.clone())) {
            Ok(outcome) => outcome.rows,
            Err(QueryError::Unsatisfiable) => Arc::new(ResultSet::new(q.output_nodes().to_vec())),
            Err(e) => unreachable!("request without text or deadline cannot fail: {e}"),
        }
    }

    /// Parses `text` as the GTPQ query language and evaluates the query,
    /// consulting the result cache first.
    ///
    /// # Migration
    ///
    /// Use [`submit`](Self::submit) with `QueryRequest::text(text)`; parse
    /// failures arrive as [`QueryError::Parse`].
    #[deprecated(since = "0.1.0", note = "use `submit` with `QueryRequest::text`")]
    pub fn evaluate_text(&self, text: &str) -> Result<Arc<ResultSet>, ParseError> {
        #[allow(deprecated)]
        Ok(self.evaluate_text_with_stats(text)?.0)
    }

    /// Parses `text` and evaluates it, returning per-query engine
    /// statistics.
    ///
    /// # Migration
    ///
    /// Use [`submit`](Self::submit) with
    /// `QueryRequest::text(text).with_stats()`.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit` with `QueryRequest::text(..).with_stats()`"
    )]
    pub fn evaluate_text_with_stats(
        &self,
        text: &str,
    ) -> Result<(Arc<ResultSet>, EvalStats), ParseError> {
        match self.submit(&QueryRequest::text(text).with_stats()) {
            Ok(outcome) => Ok((outcome.rows, outcome.stats.unwrap_or_default())),
            Err(QueryError::Parse(e)) => Err(e),
            Err(QueryError::Unsatisfiable) => {
                let q = gtpq_query::parse_query(text).expect("parse succeeded above");
                Ok((
                    Arc::new(ResultSet::new(q.output_nodes().to_vec())),
                    EvalStats::default(),
                ))
            }
            Err(e) => unreachable!("request without deadline cannot fail: {e}"),
        }
    }

    /// Evaluates one query, returning per-query engine statistics.
    ///
    /// On a cache hit the engine never runs, so the returned stats are
    /// `EvalStats::default()`; aggregate hit/miss counts live in
    /// [`metrics`](Self::metrics).
    ///
    /// # Migration
    ///
    /// Use [`submit`](Self::submit) with
    /// `QueryRequest::query(q.clone()).with_stats()`; the stats are in
    /// [`QueryOutcome::stats`].
    #[deprecated(
        since = "0.1.0",
        note = "use `submit` with `QueryRequest::query(..).with_stats()`"
    )]
    pub fn evaluate_with_stats(&self, q: &Gtpq) -> (Arc<ResultSet>, EvalStats) {
        match self.submit(&QueryRequest::query(q.clone()).with_stats()) {
            Ok(outcome) => (outcome.rows, outcome.stats.unwrap_or_default()),
            Err(QueryError::Unsatisfiable) => (
                Arc::new(ResultSet::new(q.output_nodes().to_vec())),
                EvalStats::default(),
            ),
            Err(e) => unreachable!("request without text or deadline cannot fail: {e}"),
        }
    }

    /// Plans (or recalls the cached plan for) `q` without evaluating it —
    /// the physical plan `:explain` renders.
    ///
    /// The plan is built with the service's graph profile and the set of
    /// already-built backends, so it carries a per-query backend
    /// recommendation; it lands in the plan cache, pre-warming a later
    /// evaluation of the same pattern.
    pub fn plan_for(&self, q: &Gtpq) -> Arc<QueryPlan> {
        let canon = (self.config.plan_cache_capacity > 0).then(|| canonicalize(q));
        let state = self.current_state();
        self.obtain_plan(q, canon_ref(&canon), &state).0
    }

    /// Evaluates `q` unconditionally through the engine (no result-cache
    /// lookup), returning the executed plan alongside the answer and
    /// statistics.
    ///
    /// # Migration
    ///
    /// Use [`submit`](Self::submit) with
    /// `QueryRequest::query(q.clone()).with_stats().with_plan().with_bypass_cache()`.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit` with `QueryRequest::query(..).with_stats().with_plan().with_bypass_cache()`"
    )]
    pub fn analyze(&self, q: &Gtpq) -> (Arc<ResultSet>, EvalStats, Arc<QueryPlan>) {
        let request = QueryRequest::query(q.clone())
            .with_stats()
            .with_plan()
            .with_bypass_cache();
        match self.submit(&request) {
            Ok(outcome) => (
                outcome.rows,
                outcome.stats.unwrap_or_default(),
                outcome.plan.expect("requested with_plan"),
            ),
            Err(QueryError::Unsatisfiable) => (
                Arc::new(ResultSet::new(q.output_nodes().to_vec())),
                EvalStats::default(),
                self.plan_for(q),
            ),
            Err(e) => unreachable!("request without text or deadline cannot fail: {e}"),
        }
    }

    /// Looks the plan up in the plan cache, building and caching it on a
    /// miss against the pinned generation.  Returns the plan and the time
    /// spent planning (zero on a hit).
    fn obtain_plan(
        &self,
        q: &Gtpq,
        canon: Option<&CanonicalQuery>,
        state: &EpochState,
    ) -> (Arc<QueryPlan>, Duration) {
        if let Some(canon) = canon {
            let hit = self.plans.lock().expect("plan cache lock poisoned").lookup(
                state.epoch,
                &canon.key,
                q,
            );
            if let Some(plan) = hit {
                self.metrics.record_plan_hit();
                return (plan, Duration::ZERO);
            }
        }
        let start = Instant::now();
        let prebuilt: Vec<BackendKind> = state
            .backends
            .lock()
            .expect("backend catalog lock poisoned")
            .keys()
            .copied()
            .collect();
        let plan = Arc::new(
            Planner::new(state.graph())
                .with_profile(state.profile)
                .with_prebuilt(&prebuilt)
                .plan(q),
        );
        let plan_time = start.elapsed();
        self.metrics.record_plan_miss();
        if let Some(canon) = canon {
            self.plans.lock().expect("plan cache lock poisoned").insert(
                state.epoch,
                &canon.key,
                Arc::new(q.clone()),
                Arc::clone(&plan),
            );
        }
        (plan, plan_time)
    }

    /// Evaluates a batch of queries across the worker pool, preserving input
    /// order in the returned answers.
    ///
    /// # Migration
    ///
    /// Use [`submit_batch`](Self::submit_batch), which keeps per-request
    /// stats and reports per-request errors instead of silently flattening
    /// them.  As with `evaluate`, unsatisfiable queries keep returning an
    /// empty answer here.
    #[deprecated(since = "0.1.0", note = "use `submit_batch` with `QueryRequest`s")]
    pub fn evaluate_batch(&self, queries: &[Gtpq]) -> Vec<Arc<ResultSet>> {
        let requests: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest::query(q.clone()))
            .collect();
        self.submit_batch(&requests)
            .into_iter()
            .zip(queries)
            .map(|(r, q)| match r {
                Ok(outcome) => outcome.rows,
                Err(QueryError::Unsatisfiable) => {
                    Arc::new(ResultSet::new(q.output_nodes().to_vec()))
                }
                Err(e) => unreachable!("request without text or deadline cannot fail: {e}"),
            })
            .collect()
    }

    /// Point-in-time aggregate metrics (QPS, hit rate, stage rollups,
    /// latency/TTFR histograms, recent windowed rates).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The retained slow-query log entries, oldest first (empty when
    /// [`ServiceConfig::slow_query_threshold`] is `None`).
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slowlog.entries()
    }

    /// Number of result sets currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// Number of physical plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().expect("plan cache lock poisoned").len()
    }

    /// Names of the reachability backends cataloged so far in the current
    /// epoch (the default — which a pinned configuration defers until its
    /// first probe — plus any the planner or a request asked for), in no
    /// particular order.  A commit resets the catalog — the old generation's
    /// indexes describe the old graph.
    pub fn built_backends(&self) -> Vec<&'static str> {
        self.current_state()
            .backends
            .lock()
            .expect("backend catalog lock poisoned")
            .keys()
            .map(|k| k.as_str())
            .collect()
    }

    /// The backend kind of the current epoch (pinned or auto-selected).
    pub fn default_backend(&self) -> BackendKind {
        self.current_state().default_kind
    }
}

/// Slices the `offset..offset + limit` window out of a complete cached
/// answer; the flag reports whether rows exist past the window's end.
fn window(full: &Arc<ResultSet>, offset: usize, limit: Option<usize>) -> (Arc<ResultSet>, bool) {
    let total = full.len();
    let end = limit.map_or(total, |l| offset.saturating_add(l).min(total));
    if offset == 0 && end == total {
        return (Arc::clone(full), false);
    }
    let mut out = ResultSet::new(full.output.clone());
    for tuple in full.iter().skip(offset).take(end.saturating_sub(offset)) {
        out.insert(tuple.clone());
    }
    (Arc::new(out), end < total)
}

/// `Option<CanonicalQuery> → Option<&CanonicalQuery>` (ergonomics helper).
fn canon_ref(canon: &Option<CanonicalQuery>) -> Option<&CanonicalQuery> {
    canon.as_ref()
}

// The whole point of the service: it can be shared across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use gtpq_core::CancelToken;
    use gtpq_graph::GraphBuilder;
    use gtpq_logic::BoolExpr;
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};

    use super::*;

    fn service_for_example() -> QueryService {
        QueryService::new(Arc::new(example_graph()))
    }

    fn submit_rows(service: &QueryService, q: &Gtpq) -> Arc<ResultSet> {
        service
            .submit(&QueryRequest::query(q.clone()))
            .expect("valid query")
            .rows
    }

    #[test]
    fn submit_matches_naive_and_caches() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, &service.graph());
        let request = QueryRequest::query(q);
        let cold = service.submit(&request).unwrap();
        assert!(cold.rows.same_answer(&expected));
        assert!(!cold.from_cache && !cold.truncated);
        assert!(cold.stats.is_none() && cold.plan.is_none());
        let warm = service.submit(&request).unwrap();
        assert!(
            Arc::ptr_eq(&cold.rows, &warm.rows),
            "second submit must share the cached rows"
        );
        assert!(warm.from_cache);
        let m = service.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.hit_rate() > 0.49);
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn limit_and_offset_slice_the_materialized_order() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                cache_capacity: 0, // engine path
                ..ServiceConfig::default()
            },
        );
        let q = example_query();
        let full = submit_rows(&service, &q);
        let all: Vec<_> = full.iter().cloned().collect();
        assert!(all.len() >= 3, "example query has several rows");
        for (offset, limit) in [(0, 1), (1, 2), (0, all.len()), (2, 100), (all.len() + 1, 2)] {
            let outcome = service
                .submit(
                    &QueryRequest::query(q.clone())
                        .with_limit(limit)
                        .with_offset(offset),
                )
                .unwrap();
            let expected: Vec<_> = all.iter().skip(offset).take(limit).cloned().collect();
            let got: Vec<_> = outcome.rows.iter().cloned().collect();
            assert_eq!(got, expected, "offset {offset} limit {limit}");
            let more_exist = offset + limit < all.len();
            assert_eq!(
                outcome.truncated, more_exist,
                "offset {offset} limit {limit}"
            );
        }
    }

    #[test]
    fn truncated_outcomes_never_poison_the_cache() {
        let service = service_for_example();
        let q = example_query();
        let limited = service
            .submit(&QueryRequest::query(q.clone()).with_limit(1))
            .unwrap();
        assert!(limited.truncated);
        assert_eq!(limited.rows.len(), 1);
        assert_eq!(
            service.cached_results(),
            0,
            "truncated outcome must not be cached"
        );
        // The full answer is computed fresh, cached, and later limited
        // requests are sliced from it.
        let full = service.submit(&QueryRequest::query(q.clone())).unwrap();
        assert!(!full.from_cache);
        let expected = naive::evaluate(&q, &service.graph());
        assert!(full.rows.same_answer(&expected));
        assert_eq!(service.cached_results(), 1);
        let sliced = service
            .submit(&QueryRequest::query(q.clone()).with_limit(1))
            .unwrap();
        assert!(sliced.from_cache && sliced.truncated);
        assert_eq!(sliced.rows.len(), 1);
        assert_eq!(
            sliced.rows.iter().next(),
            full.rows.iter().next(),
            "cache slice follows materialized order"
        );
        assert_eq!(service.metrics().rows_truncated, 2);
    }

    #[test]
    fn deadline_zero_times_out_cleanly() {
        let service = service_for_example();
        let q = example_query();
        let err = service
            .submit(&QueryRequest::query(q).with_deadline(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, QueryError::Timeout { .. }));
        let m = service.metrics();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.cache_misses, 0, "no answer was produced");
        // The aborted run is accounted separately, with its latency sampled.
        assert_eq!(m.aborted, 1);
        assert_eq!(m.latency.count, 1);
    }

    #[test]
    fn traced_submit_returns_a_span_tree() {
        let service = service_for_example();
        let q = example_query();
        let outcome = service
            .submit(&QueryRequest::query(q.clone()).with_trace())
            .unwrap();
        let trace = outcome.trace.expect("requested a trace");
        let root = trace.root().expect("request root span");
        assert_eq!(root.name, "request");
        for stage in ["plan", "candidates", "prune_down", "prune_up", "matching"] {
            let span = trace.span(stage).unwrap_or_else(|| panic!("span {stage}"));
            assert_eq!(span.parent, Some(0), "{stage} nests under the root");
        }
        // A warm (cached) request traces the request but runs no engine
        // stages; an untraced request gets no trace at all.
        let warm = service
            .submit(&QueryRequest::query(q.clone()).with_trace())
            .unwrap();
        let warm_trace = warm.trace.expect("requested a trace");
        assert!(warm.from_cache);
        assert!(warm_trace.span("candidates").is_none());
        assert!(warm_trace.root().is_some());
        let untraced = service
            .submit(&QueryRequest::query(q).with_bypass_cache())
            .unwrap();
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn slow_log_records_queries_over_threshold_with_their_plan() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                slow_query_threshold: Some(Duration::ZERO), // everything is slow
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let q = example_query();
        service.submit(&QueryRequest::query(q.clone())).unwrap();
        let entries = service.slow_queries();
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert!(!entry.query.is_empty(), "canonical text is kept");
        assert!(matches!(
            entry.outcome,
            crate::slowlog::SlowOutcome::Completed { rows, .. } if rows > 0
        ));
        let plan = entry.plan.as_deref().expect("engine ran: plan captured");
        assert!(plan.contains("actual"), "plan carries actual row counts");
        // A timed-out request lands in the log too, with partial actuals.
        let err = service
            .submit(&QueryRequest::query(q).with_deadline(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, QueryError::Timeout { .. }));
        let entries = service.slow_queries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].outcome, crate::slowlog::SlowOutcome::TimedOut);
        assert!(entries[1].plan.is_some());
    }

    #[test]
    fn disabled_slow_log_stays_empty() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                slow_query_threshold: None,
                ..ServiceConfig::default()
            },
        );
        service
            .submit(&QueryRequest::query(example_query()))
            .unwrap();
        assert!(service.slow_queries().is_empty());
    }

    #[test]
    fn submit_latency_histogram_sees_every_exit_path() {
        let service = service_for_example();
        let q = example_query();
        service.submit(&QueryRequest::query(q.clone())).unwrap(); // miss
        service.submit(&QueryRequest::query(q.clone())).unwrap(); // hit
        let _ = service.submit(&QueryRequest::text("a1 { //d1* ")); // parse error
        let _ = service.submit(&QueryRequest::query(q).with_deadline(Duration::ZERO));
        let m = service.metrics();
        assert_eq!(m.latency.count, 4);
        assert!(m.latency_percentile(0.5) > Duration::ZERO);
        assert!(m.ttfr.count >= 1, "the miss produced rows");
    }

    #[test]
    fn cancellation_interrupts_and_is_counted() {
        let service = service_for_example();
        let token = CancelToken::new();
        token.cancel();
        let err = service
            .submit(&QueryRequest::query(example_query()).with_cancel(token))
            .unwrap_err();
        assert_eq!(err, QueryError::Cancelled);
        assert_eq!(service.metrics().cancelled, 1);
    }

    #[test]
    fn unsatisfiable_queries_are_rejected_up_front() {
        let service = service_for_example();
        // Root requires a child AND its negation: structurally contradictory.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let p = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b1"));
        b.set_structural(
            root,
            BoolExpr::and2(
                BoolExpr::Var(p.var()),
                BoolExpr::not(BoolExpr::Var(p.var())),
            ),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let err = service.submit(&QueryRequest::query(q.clone())).unwrap_err();
        assert_eq!(err, QueryError::Unsatisfiable);
        // The deprecated shim keeps the old empty-answer contract.
        #[allow(deprecated)]
        let empty = service.evaluate(&q);
        assert!(empty.is_empty());
    }

    #[test]
    fn per_request_backend_is_honoured_and_cataloged() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, &service.graph());
        let outcome = service
            .submit(
                &QueryRequest::query(q)
                    .with_backend(BackendKind::Closure)
                    .with_bypass_cache(),
            )
            .unwrap();
        assert!(outcome.rows.same_answer(&expected));
        assert!(service.built_backends().contains(&"closure"));
    }

    #[test]
    fn stats_are_reported_on_misses_only() {
        let service = service_for_example();
        let q = example_query();
        let request = QueryRequest::query(q).with_stats();
        let cold = service.submit(&request).unwrap();
        let cold_stats = cold.stats.expect("requested stats");
        assert!(cold_stats.initial_candidates > 0);
        assert!(cold_stats.enumerated_rows >= cold.rows.len() as u64);
        let warm = service.submit(&request).unwrap();
        assert_eq!(warm.stats.expect("requested stats").initial_candidates, 0);
    }

    #[test]
    fn pinned_backend_is_used() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                backend: Some(BackendKind::Sspi),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.backend_name(), "sspi");
        assert!(service.backend_selection().is_none());
        let q = example_query();
        assert!(submit_rows(&service, &q).same_answer(&naive::evaluate(&q, &service.graph())));
    }

    #[test]
    fn pinned_backend_builds_lazily_on_first_reachability_probe() {
        // A non-forest graph makes the deferral observable through the
        // public API: `interval` can only fall back to 3-hop when it is
        // actually *built*, so the reported name flips at the first
        // reachability probe — not at service construction.
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let x = b.add_node_with_label("b");
        let y = b.add_node_with_label("c");
        let d = b.add_node_with_label("d");
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        let service = QueryService::with_config(
            Arc::new(b.build()),
            ServiceConfig {
                backend: Some(BackendKind::Interval),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.backend_name(), "interval");

        // An index-served point lookup asks no reachability question: the
        // backend must still be unbuilt afterwards.
        let first = service
            .submit(&QueryRequest::text("[label = d]*").with_limit(1))
            .unwrap();
        assert_eq!(first.rows.len(), 1);
        assert_eq!(
            service.backend_name(),
            "interval",
            "an index-served lookup must not force the backend build"
        );

        // A descendant pattern probes reachability, forcing the build —
        // which on a non-forest graph is the 3-hop fallback.
        let rows = service
            .submit(&QueryRequest::text("a { //d* }"))
            .unwrap()
            .rows;
        assert!(!rows.is_empty());
        assert_eq!(service.backend_name(), "3-hop");
    }

    #[test]
    fn auto_selection_exposes_its_reasoning() {
        let service = service_for_example();
        let selection = service.backend_selection().expect("auto mode");
        assert!(!selection.reason.is_empty());
        assert_eq!(
            selection.kind.build_shared(&service.graph()).name(),
            service.backend_name()
        );
    }

    #[test]
    fn submit_batch_preserves_order_and_matches_sequential() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                threads: 4,
                cache_capacity: 0, // force every query through the engine
                ..ServiceConfig::default()
            },
        );
        let mut requests = Vec::new();
        let mut queries = Vec::new();
        for label in ["a1", "b1", "c1", "d1", "e1", "g1"] {
            let mut b = GtpqBuilder::new(AttrPredicate::label(label));
            let root = b.root_id();
            b.mark_output(root);
            queries.push(b.build().unwrap());
            let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
            let root = b.root_id();
            let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
            b.mark_output(child);
            queries.push(b.build().unwrap());
        }
        for q in &queries {
            requests.push(QueryRequest::query(q.clone()).with_stats());
        }
        let batched = service.submit_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (q, got) in queries.iter().zip(&batched) {
            let outcome = got.as_ref().expect("satisfiable queries");
            let expected = naive::evaluate(q, &service.graph());
            assert!(outcome.rows.same_answer(&expected));
            assert!(
                outcome.stats.is_some(),
                "per-request stats survive batching"
            );
        }
        assert_eq!(service.metrics().batches, 1);
        assert_eq!(service.metrics().queries, requests.len() as u64);
    }

    #[test]
    fn submit_text_matches_the_builder_query() {
        let service = service_for_example();
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("d1"));
        b.mark_output(child);
        let built = b.build().unwrap();
        let from_text = service
            .submit(&QueryRequest::text("a1 { //d1* }"))
            .unwrap()
            .rows;
        assert!(from_text.same_answer(&submit_rows(&service, &built)));
        // ... and the parsed query shares the cache slot with the built one.
        assert!(service.metrics().cache_hits >= 1);
    }

    #[test]
    fn submit_text_reports_parse_errors_with_spans() {
        let service = service_for_example();
        let err = service
            .submit(&QueryRequest::text("a1 { //d1* "))
            .unwrap_err();
        let QueryError::Parse(parse) = err else {
            panic!("expected a parse error");
        };
        assert!(parse.message.contains("unbalanced `{`"));
        assert_eq!(parse.span.start, 3);
    }

    #[test]
    fn plans_are_cached_alongside_results() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                cache_capacity: 0, // results never cached: every call runs the engine
                ..ServiceConfig::default()
            },
        );
        let q = example_query();
        let request = QueryRequest::query(q).with_stats();
        assert_eq!(service.cached_plans(), 0);
        let cold = service.submit(&request).unwrap().stats.unwrap();
        assert!(cold.plan_time > std::time::Duration::ZERO);
        assert_eq!(service.cached_plans(), 1);
        // Second run re-executes but reuses the plan.
        let warm = service.submit(&request).unwrap().stats.unwrap();
        assert_eq!(warm.plan_time, std::time::Duration::ZERO);
        assert!(warm.initial_candidates > 0, "the engine really ran");
        let m = service.metrics();
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 1);
        assert!((m.plan_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn plan_for_exposes_the_physical_plan() {
        let service = service_for_example();
        let q = example_query();
        let plan = service.plan_for(&q);
        assert_eq!(plan.candidates.len(), q.size());
        assert!(
            plan.backend.kind.is_some(),
            "profile enables recommendation"
        );
        let rendered = plan.render(&q);
        assert!(rendered.contains("QueryPlan"));
        // plan_for warms the plan cache for the later evaluation.
        assert_eq!(service.cached_plans(), 1);
        let stats = service
            .submit(&QueryRequest::query(q).with_stats())
            .unwrap()
            .stats
            .unwrap();
        assert_eq!(stats.plan_time, std::time::Duration::ZERO);
    }

    #[test]
    fn bypass_cache_runs_the_engine_and_reports_actuals() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, &service.graph());
        // Warm the result cache, then bypass it: the engine must run anyway.
        service.submit(&QueryRequest::query(q.clone())).unwrap();
        let outcome = service
            .submit(
                &QueryRequest::query(q.clone())
                    .with_stats()
                    .with_plan()
                    .with_bypass_cache(),
            )
            .unwrap();
        assert!(outcome.rows.same_answer(&expected));
        assert!(!outcome.from_cache);
        let stats = outcome.stats.expect("requested stats");
        assert!(!stats.operators.is_empty());
        let rendered = outcome
            .plan
            .expect("requested plan")
            .render_with_actuals(&q, &stats);
        assert!(rendered.contains("actual"));
        // The complete answer re-occupies its slot without duplication.
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn per_query_backend_builds_into_the_catalog() {
        let service = service_for_example();
        let q = example_query();
        let before = service.built_backends().len();
        assert_eq!(before, 1, "only the default is prebuilt");
        let rows = submit_rows(&service, &q);
        assert!(rows.same_answer(&naive::evaluate(&q, &service.graph())));
        // plan_for returns the plan cached by the evaluation, whose
        // recommended backend the executor built into the catalog.
        let plan = service.plan_for(&q);
        let recommended = plan.backend.kind.expect("profile present").as_str();
        assert!(
            service.built_backends().contains(&recommended),
            "{recommended} missing from {:?}",
            service.built_backends()
        );
    }

    #[test]
    fn pinned_backend_disables_per_query_switching() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                backend: Some(BackendKind::Sspi),
                ..ServiceConfig::default()
            },
        );
        submit_rows(&service, &example_query());
        assert_eq!(service.built_backends(), vec!["sspi"]);
        assert_eq!(service.default_backend(), BackendKind::Sspi);
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = service_for_example();
        assert!(service.submit_batch(&[]).is_empty());
        #[allow(deprecated)]
        let legacy = service.evaluate_batch(&[]);
        assert!(legacy.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_stay_faithful_to_submit() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, &service.graph());
        assert!(service.evaluate(&q).same_answer(&expected));
        let (rows, stats) = service.evaluate_with_stats(&q);
        assert!(rows.same_answer(&expected));
        // Second call hit the cache, so the shim's stats are empty.
        assert_eq!(stats.initial_candidates, 0);
        let text = service.evaluate_text("a1 { //d1* }").unwrap();
        assert!(!text.is_empty());
        assert!(service.evaluate_text("a1 { //d1* ").is_err());
        let (rows2, batch_stats, plan) = {
            let (r, s, p) = service.analyze(&q);
            (r, s, p)
        };
        assert!(rows2.same_answer(&expected));
        assert!(!batch_stats.operators.is_empty());
        assert!(plan.candidates.len() == q.size());
        let batch = service.evaluate_batch(std::slice::from_ref(&q));
        assert!(batch[0].same_answer(&expected));
    }

    #[test]
    fn live_service_rotates_on_commit_and_invalidates_caches() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let c = b.add_node_with_label("b");
        b.add_edge(a, c);
        let handle = Arc::new(gtpq_graph::GraphHandle::new(b.build()));
        let service = QueryService::live(Arc::clone(&handle));
        assert_eq!(service.graph_epoch(), 0);
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let cold = service
            .submit(&QueryRequest::query(q.clone()).with_stats())
            .unwrap();
        assert_eq!(cold.rows.len(), 1);
        assert_eq!(cold.stats.unwrap().graph_epoch, 0);
        assert_eq!(service.cached_results(), 1);
        // Staged-but-uncommitted writes stay invisible: same epoch, cache hit.
        let n = handle.insert_node_with_label("b");
        handle.insert_edge(a, n);
        let staged = service
            .submit(&QueryRequest::query(q.clone()).with_stats())
            .unwrap();
        assert!(staged.from_cache);
        assert_eq!(staged.stats.unwrap().graph_epoch, 0);
        // The commit publishes epoch 1; the next submit must rotate, drop the
        // pre-write cache entry, and answer for the new graph.
        handle.commit();
        let warm = service
            .submit(&QueryRequest::query(q.clone()).with_stats())
            .unwrap();
        assert!(!warm.from_cache, "pre-write answer must not be served");
        assert_eq!(warm.rows.len(), 2);
        assert_eq!(warm.stats.unwrap().graph_epoch, 1);
        assert!(warm
            .rows
            .same_answer(&naive::evaluate(&q, &service.graph())));
        assert_eq!(service.graph_epoch(), 1);
        let m = service.metrics();
        assert_eq!(m.graph_epoch, 1);
        assert_eq!(m.epoch_rotations, 1);
        assert!(
            m.stale_evictions >= 2,
            "the cached result and its plan were dropped"
        );
    }

    #[test]
    fn live_service_starting_past_epoch_zero_still_caches() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let handle = Arc::new(gtpq_graph::GraphHandle::new(b.build()));
        let n = handle.insert_node_with_label("b");
        handle.insert_edge(a, n);
        handle.commit();
        // The service is built after the first commit: epoch 1 from the start.
        let service = QueryService::live(Arc::clone(&handle));
        assert_eq!(service.graph_epoch(), 1);
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let request = QueryRequest::query(q);
        service.submit(&request).unwrap();
        assert_eq!(service.cached_results(), 1, "epoch-1 inserts are accepted");
        assert!(service.submit(&request).unwrap().from_cache);
        assert_eq!(service.metrics().epoch_rotations, 0);
        assert_eq!(service.metrics().graph_epoch, 1);
    }

    #[test]
    fn works_on_cyclic_graphs() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        gb.add_edge(c, a);
        let g = Arc::new(gb.build());
        let service = QueryService::new(Arc::clone(&g));
        let mut qb = GtpqBuilder::new(AttrPredicate::label("b"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("a"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        assert!(submit_rows(&service, &q).same_answer(&naive::evaluate(&q, &g)));
    }
}
