//! The concurrent query service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gtpq_core::{EvalStats, GteaEngine, GteaOptions, Planner, QueryPlan};
use gtpq_graph::DataGraph;
use gtpq_query::{Gtpq, ParseError, ResultSet};
use gtpq_reach::{build_selected, BackendKind, BackendSelection, GraphProfile, SharedIndex};

use crate::cache::{PlanCache, ResultCache};
use crate::canon::{canonicalize, CanonicalQuery};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Reachability backend; `None` lets [`gtpq_reach::select_backend`] pick one from the
    /// graph's statistics.
    pub backend: Option<BackendKind>,
    /// Worker threads used by [`QueryService::evaluate_batch`].  Defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// Result-cache capacity in result sets; 0 disables caching.
    pub cache_capacity: usize,
    /// Plan-cache capacity in physical plans; 0 disables plan caching.
    pub plan_cache_capacity: usize,
    /// Whether the planner may pick a reachability backend per query (built
    /// lazily, then shared through the backend catalog).  Ignored — treated
    /// as `false` — when [`backend`](Self::backend) pins one explicitly.
    pub per_query_backend: bool,
    /// Engine options forwarded to every evaluation.
    pub options: GteaOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            backend: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 256,
            plan_cache_capacity: 256,
            per_query_backend: true,
            options: GteaOptions::default(),
        }
    }
}

/// A thread-safe, multi-query front end over the GTEA engine.
///
/// The service owns the data graph and one shared reachability index (built
/// once, chosen per [`ServiceConfig::backend`]), answers queries through an
/// equivalence-aware LRU result cache, and fans batches out over a thread
/// pool.  All methods take `&self`: one service instance can be wrapped in an
/// `Arc` and shared across any number of request threads.
///
/// ```
/// use std::sync::Arc;
/// use gtpq_graph::GraphBuilder;
/// use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};
/// use gtpq_service::QueryService;
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node_with_label("a");
/// let c = b.add_node_with_label("b");
/// b.add_edge(a, c);
/// let service = QueryService::new(Arc::new(b.build()));
///
/// let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
/// let root = qb.root_id();
/// let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
/// qb.mark_output(child);
/// let q = qb.build().unwrap();
///
/// assert_eq!(service.evaluate(&q).len(), 1);
/// assert_eq!(service.evaluate(&q).len(), 1); // served from the cache
/// assert_eq!(service.metrics().cache_hits, 1);
/// ```
pub struct QueryService {
    graph: Arc<DataGraph>,
    index: SharedIndex,
    default_kind: BackendKind,
    selection: Option<BackendSelection>,
    profile: GraphProfile,
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    plans: Mutex<PlanCache>,
    /// Per-query backend catalog: indexes built on demand by the planner's
    /// recommendation, shared across all subsequent queries.
    backends: Mutex<HashMap<BackendKind, SharedIndex>>,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// Builds a service with the default configuration (auto-selected
    /// backend, machine parallelism, 256-entry cache).
    pub fn new(graph: Arc<DataGraph>) -> Self {
        Self::with_config(graph, ServiceConfig::default())
    }

    /// Builds a service with an explicit configuration.
    pub fn with_config(graph: Arc<DataGraph>, config: ServiceConfig) -> Self {
        let (index, default_kind, selection, profile) = match config.backend {
            Some(kind) => (
                kind.build_shared(&graph),
                kind,
                None,
                GraphProfile::compute(&graph),
            ),
            None => {
                let (index, selection) = build_selected(&graph);
                (index, selection.kind, Some(selection), selection.profile)
            }
        };
        let backends = HashMap::from([(default_kind, Arc::clone(&index))]);
        Self {
            graph,
            index,
            default_kind,
            selection,
            profile,
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            plans: Mutex::new(PlanCache::new(config.plan_cache_capacity)),
            backends: Mutex::new(backends),
            config,
            metrics: ServiceMetrics::new(),
        }
    }

    /// The data graph the service answers queries over.
    pub fn graph(&self) -> &Arc<DataGraph> {
        &self.graph
    }

    /// Name of the reachability backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.index.name()
    }

    /// The auto-selection decision, when the backend was not pinned.
    pub fn backend_selection(&self) -> Option<&BackendSelection> {
        self.selection.as_ref()
    }

    /// Evaluates one query, consulting the result cache first.
    pub fn evaluate(&self, q: &Gtpq) -> Arc<ResultSet> {
        self.evaluate_with_stats(q).0
    }

    /// Parses `text` as the GTPQ query language (see
    /// [`gtpq_query::parse`]) and evaluates the query, consulting the
    /// result cache first.
    ///
    /// Textually different spellings of one pattern share a cache slot: the
    /// cache key is the canonical form of the *parsed* query, which is
    /// insensitive to whitespace, comments, sibling order and formula
    /// spelling.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gtpq_query::fixtures::example_graph;
    /// use gtpq_service::QueryService;
    ///
    /// let service = QueryService::new(Arc::new(example_graph()));
    /// let cold = service.evaluate_text("a1 { //b1* }").unwrap();
    /// let warm = service.evaluate_text("a1 {   //b1*   } # same query").unwrap();
    /// assert!(Arc::ptr_eq(&cold, &warm));
    /// assert!(service.evaluate_text("a1 { //b1* ").is_err());
    /// ```
    pub fn evaluate_text(&self, text: &str) -> Result<Arc<ResultSet>, ParseError> {
        Ok(self.evaluate_text_with_stats(text)?.0)
    }

    /// Parses `text` and evaluates it, returning per-query engine statistics
    /// (see [`evaluate_with_stats`](Self::evaluate_with_stats) for the
    /// cache-hit behaviour of the stats).
    pub fn evaluate_text_with_stats(
        &self,
        text: &str,
    ) -> Result<(Arc<ResultSet>, EvalStats), ParseError> {
        let q = gtpq_query::parse_query(text)?;
        Ok(self.evaluate_with_stats(&q))
    }

    /// Evaluates one query, returning per-query engine statistics.
    ///
    /// On a cache hit the engine never runs, so the returned stats are
    /// `EvalStats::default()`; aggregate hit/miss counts live in
    /// [`metrics`](Self::metrics).
    pub fn evaluate_with_stats(&self, q: &Gtpq) -> (Arc<ResultSet>, EvalStats) {
        let canon = (self.config.cache_capacity > 0 || self.config.plan_cache_capacity > 0)
            .then(|| canonicalize(q));
        if self.config.cache_capacity > 0 {
            if let Some(canon) = &canon {
                let hit = self
                    .cache
                    .lock()
                    .expect("cache lock poisoned")
                    .lookup(canon, q);
                if let Some(results) = hit {
                    self.metrics.record_hit();
                    return (results, EvalStats::default());
                }
            }
        }
        let (results, stats) = self.run_planned(q, canon.as_ref());
        if self.config.cache_capacity > 0 {
            if let Some(canon) = &canon {
                self.cache.lock().expect("cache lock poisoned").insert(
                    canon,
                    Arc::new(q.clone()),
                    Arc::clone(&results),
                );
            }
        }
        self.metrics.record_miss(&stats);
        (results, stats)
    }

    /// Plans (or recalls the cached plan for) `q` without evaluating it —
    /// the physical plan `:explain` renders.
    ///
    /// The plan is built with the service's graph profile and the set of
    /// already-built backends, so it carries a per-query backend
    /// recommendation; it lands in the plan cache, pre-warming a later
    /// evaluation of the same pattern.
    pub fn plan_for(&self, q: &Gtpq) -> Arc<QueryPlan> {
        let canon = (self.config.plan_cache_capacity > 0).then(|| canonicalize(q));
        self.obtain_plan(q, canon.as_ref()).0
    }

    /// Evaluates `q` unconditionally through the engine (no result-cache
    /// lookup or insertion), returning the executed plan alongside the
    /// answer and statistics — the machinery behind `:explain analyze`.
    /// Plan cache and metrics behave as for a cache miss.
    pub fn analyze(&self, q: &Gtpq) -> (Arc<ResultSet>, EvalStats, Arc<QueryPlan>) {
        let canon = (self.config.plan_cache_capacity > 0).then(|| canonicalize(q));
        let (plan, plan_time) = self.obtain_plan(q, canon.as_ref());
        let (results, stats) = self.execute_plan(q, &plan, plan_time);
        self.metrics.record_miss(&stats);
        (results, stats, plan)
    }

    /// Runs the planning + execution pipeline for a result-cache miss.
    fn run_planned(&self, q: &Gtpq, canon: Option<&CanonicalQuery>) -> (Arc<ResultSet>, EvalStats) {
        let (plan, plan_time) = self.obtain_plan(q, canon);
        self.execute_plan(q, &plan, plan_time)
    }

    /// Looks the plan up in the plan cache, building and caching it on a
    /// miss.  Returns the plan and the time spent planning (zero on a hit).
    fn obtain_plan(&self, q: &Gtpq, canon: Option<&CanonicalQuery>) -> (Arc<QueryPlan>, Duration) {
        if let Some(canon) = canon {
            let hit = self
                .plans
                .lock()
                .expect("plan cache lock poisoned")
                .lookup(&canon.key, q);
            if let Some(plan) = hit {
                self.metrics.record_plan_hit();
                return (plan, Duration::ZERO);
            }
        }
        let start = Instant::now();
        let prebuilt: Vec<BackendKind> = self
            .backends
            .lock()
            .expect("backend catalog lock poisoned")
            .keys()
            .copied()
            .collect();
        let plan = Arc::new(
            Planner::new(&self.graph)
                .with_profile(self.profile)
                .with_prebuilt(&prebuilt)
                .plan(q),
        );
        let plan_time = start.elapsed();
        self.metrics.record_plan_miss();
        if let Some(canon) = canon {
            self.plans.lock().expect("plan cache lock poisoned").insert(
                &canon.key,
                Arc::new(q.clone()),
                Arc::clone(&plan),
            );
        }
        (plan, plan_time)
    }

    /// Executes `plan`, resolving its backend recommendation against the
    /// shared catalog.
    fn execute_plan(
        &self,
        q: &Gtpq,
        plan: &QueryPlan,
        plan_time: Duration,
    ) -> (Arc<ResultSet>, EvalStats) {
        let index = self.resolve_backend(plan);
        let engine = GteaEngine::with_backend(&self.graph, index, self.config.options);
        let (results, mut stats) = engine.evaluate_planned(q, plan);
        stats.plan_time = plan_time;
        (Arc::new(results), stats)
    }

    /// The index the plan runs on: the plan's recommended backend (built
    /// lazily into the catalog, then shared) when per-query selection is
    /// enabled and no backend was pinned; the service default otherwise.
    ///
    /// The catalog lock is never held across an index build — concurrent
    /// queries whose backend is already cataloged must not stall behind a
    /// potentially expensive construction.  Two threads racing on the same
    /// missing backend may both build it; the first insert wins and the
    /// loser's copy is dropped.
    fn resolve_backend(&self, plan: &QueryPlan) -> SharedIndex {
        let per_query = self.config.per_query_backend && self.config.backend.is_none();
        let Some(kind) = plan.backend.kind.filter(|_| per_query) else {
            return Arc::clone(&self.index);
        };
        {
            let backends = self.backends.lock().expect("backend catalog lock poisoned");
            if let Some(index) = backends.get(&kind) {
                return Arc::clone(index);
            }
        }
        let built = kind.build_shared(&self.graph);
        let mut backends = self.backends.lock().expect("backend catalog lock poisoned");
        Arc::clone(backends.entry(kind).or_insert(built))
    }

    /// Evaluates a batch of queries across the worker pool, preserving input
    /// order in the returned answers.
    ///
    /// Workers steal queries from a shared cursor, so skewed workloads load-
    /// balance; answers are identical to evaluating the batch sequentially
    /// (the cache is shared, so duplicate queries within one batch may be
    /// served from it).
    pub fn evaluate_batch(&self, queries: &[Gtpq]) -> Vec<Arc<ResultSet>> {
        self.metrics.record_batch();
        let workers = self.config.threads.min(queries.len()).max(1);
        if workers == 1 {
            return queries.iter().map(|q| self.evaluate(q)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut answers: Vec<Option<Arc<ResultSet>>> = vec![None; queries.len()];
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            local.push((i, self.evaluate(&queries[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<_>>()
        });
        for (i, r) in chunks.into_iter().flatten() {
            answers[i] = Some(r);
        }
        answers
            .into_iter()
            .map(|r| r.expect("every query was assigned to a worker"))
            .collect()
    }

    /// Point-in-time aggregate metrics (QPS, hit rate, stage rollups).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of result sets currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// Number of physical plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().expect("plan cache lock poisoned").len()
    }

    /// Names of the reachability backends built so far (the default plus any
    /// the planner asked for), in no particular order.
    pub fn built_backends(&self) -> Vec<&'static str> {
        self.backends
            .lock()
            .expect("backend catalog lock poisoned")
            .keys()
            .map(|k| k.as_str())
            .collect()
    }

    /// The backend kind the service was built with (pinned or auto-selected).
    pub fn default_backend(&self) -> BackendKind {
        self.default_kind
    }
}

// The whole point of the service: it can be shared across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};

    use super::*;

    fn service_for_example() -> QueryService {
        QueryService::new(Arc::new(example_graph()))
    }

    #[test]
    fn evaluate_matches_naive_and_caches() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, service.graph());
        let cold = service.evaluate(&q);
        assert!(cold.same_answer(&expected));
        let warm = service.evaluate(&q);
        assert!(Arc::ptr_eq(&cold, &warm), "second call must be a cache hit");
        let m = service.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.hit_rate() > 0.49);
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn stats_are_reported_on_misses_only() {
        let service = service_for_example();
        let q = example_query();
        let (_, cold_stats) = service.evaluate_with_stats(&q);
        assert!(cold_stats.initial_candidates > 0);
        let (_, warm_stats) = service.evaluate_with_stats(&q);
        assert_eq!(warm_stats.initial_candidates, 0);
    }

    #[test]
    fn pinned_backend_is_used() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                backend: Some(BackendKind::Sspi),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.backend_name(), "sspi");
        assert!(service.backend_selection().is_none());
        let q = example_query();
        assert!(service
            .evaluate(&q)
            .same_answer(&naive::evaluate(&q, service.graph())));
    }

    #[test]
    fn auto_selection_exposes_its_reasoning() {
        let service = service_for_example();
        let selection = service.backend_selection().expect("auto mode");
        assert!(!selection.reason.is_empty());
        assert_eq!(
            selection.kind.build_shared(service.graph()).name(),
            service.backend_name()
        );
    }

    #[test]
    fn batch_preserves_order_and_matches_sequential() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                threads: 4,
                cache_capacity: 0, // force every query through the engine
                ..ServiceConfig::default()
            },
        );
        let mut queries = Vec::new();
        for label in ["a1", "b1", "c1", "d1", "e1", "g1"] {
            let mut b = GtpqBuilder::new(AttrPredicate::label(label));
            let root = b.root_id();
            b.mark_output(root);
            queries.push(b.build().unwrap());
            let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
            let root = b.root_id();
            let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label(label));
            b.mark_output(child);
            queries.push(b.build().unwrap());
        }
        let batched = service.evaluate_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            let expected = naive::evaluate(q, service.graph());
            assert!(got.same_answer(&expected));
        }
        assert_eq!(service.metrics().batches, 1);
        assert_eq!(service.metrics().queries, queries.len() as u64);
    }

    #[test]
    fn evaluate_text_matches_the_builder_query() {
        let service = service_for_example();
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("d1"));
        b.mark_output(child);
        let built = b.build().unwrap();
        let from_text = service.evaluate_text("a1 { //d1* }").unwrap();
        assert!(from_text.same_answer(&service.evaluate(&built)));
        // ... and the parsed query shares the cache slot with the built one.
        assert!(service.metrics().cache_hits >= 1);
    }

    #[test]
    fn evaluate_text_reports_parse_errors_with_spans() {
        let service = service_for_example();
        let err = service.evaluate_text("a1 { //d1* ").unwrap_err();
        assert!(err.message.contains("unbalanced `{`"));
        assert_eq!(err.span.start, 3);
    }

    #[test]
    fn plans_are_cached_alongside_results() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                cache_capacity: 0, // results never cached: every call runs the engine
                ..ServiceConfig::default()
            },
        );
        let q = example_query();
        assert_eq!(service.cached_plans(), 0);
        let (_, cold) = service.evaluate_with_stats(&q);
        assert!(cold.plan_time > std::time::Duration::ZERO);
        assert_eq!(service.cached_plans(), 1);
        // Second run re-executes but reuses the plan.
        let (_, warm) = service.evaluate_with_stats(&q);
        assert_eq!(warm.plan_time, std::time::Duration::ZERO);
        assert!(warm.initial_candidates > 0, "the engine really ran");
        let m = service.metrics();
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 1);
        assert!((m.plan_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn plan_for_exposes_the_physical_plan() {
        let service = service_for_example();
        let q = example_query();
        let plan = service.plan_for(&q);
        assert_eq!(plan.candidates.len(), q.size());
        assert!(
            plan.backend.kind.is_some(),
            "profile enables recommendation"
        );
        let rendered = plan.render(&q);
        assert!(rendered.contains("QueryPlan"));
        // plan_for warms the plan cache for the later evaluation.
        assert_eq!(service.cached_plans(), 1);
        let (_, stats) = service.evaluate_with_stats(&q);
        assert_eq!(stats.plan_time, std::time::Duration::ZERO);
    }

    #[test]
    fn analyze_bypasses_the_result_cache_and_reports_actuals() {
        let service = service_for_example();
        let q = example_query();
        let expected = naive::evaluate(&q, service.graph());
        // Warm the result cache, then analyze: the engine must run anyway.
        service.evaluate(&q);
        let (results, stats, plan) = service.analyze(&q);
        assert!(results.same_answer(&expected));
        assert!(!stats.operators.is_empty());
        let rendered = plan.render_with_actuals(&q, &stats);
        assert!(rendered.contains("actual"));
        // Cached results stayed untouched (analyze inserted nothing new).
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn per_query_backend_builds_into_the_catalog() {
        let service = service_for_example();
        let q = example_query();
        let before = service.built_backends().len();
        assert_eq!(before, 1, "only the default is prebuilt");
        let (results, _) = service.evaluate_with_stats(&q);
        assert!(results.same_answer(&naive::evaluate(&q, service.graph())));
        // plan_for returns the plan cached by the evaluation, whose
        // recommended backend the executor built into the catalog.
        let plan = service.plan_for(&q);
        let recommended = plan.backend.kind.expect("profile present").as_str();
        assert!(
            service.built_backends().contains(&recommended),
            "{recommended} missing from {:?}",
            service.built_backends()
        );
    }

    #[test]
    fn pinned_backend_disables_per_query_switching() {
        let service = QueryService::with_config(
            Arc::new(example_graph()),
            ServiceConfig {
                backend: Some(BackendKind::Sspi),
                ..ServiceConfig::default()
            },
        );
        let q = example_query();
        service.evaluate(&q);
        assert_eq!(service.built_backends(), vec!["sspi"]);
        assert_eq!(service.default_backend(), BackendKind::Sspi);
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = service_for_example();
        assert!(service.evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn works_on_cyclic_graphs() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        gb.add_edge(c, a);
        let g = Arc::new(gb.build());
        let service = QueryService::new(Arc::clone(&g));
        let mut qb = GtpqBuilder::new(AttrPredicate::label("b"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("a"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        assert!(service.evaluate(&q).same_answer(&naive::evaluate(&q, &g)));
    }
}
