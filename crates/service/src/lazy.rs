//! Deferred construction of a pinned reachability backend.
//!
//! A service whose [`ServiceConfig::backend`](crate::ServiceConfig::backend)
//! pins a backend does not need that backend *built* until a query actually
//! probes reachability: index-served point lookups (the cold-start pattern —
//! map a snapshot, answer one selective predicate) never ask a reachability
//! question, so paying the O(V+E) backend construction before the first row
//! would put the single largest start-up cost on a path that does not use it.
//!
//! [`LazyIndex`] wraps the *decision* (which backend, over which snapshot)
//! and defers the *work* to the first reachability probe via [`OnceLock`].
//! The observational methods of [`Reachability`] answer without forcing the
//! build — an unbuilt index has performed zero lookups, and its name is
//! known from its [`BackendKind`] — so stats plumbing (`lookup_count` deltas
//! around prune rounds, `backend_name` in the CLI prompt) stays free.  Only
//! `reaches` and the prepared probes build, exactly once, even under
//! concurrent first probes.
//!
//! Auto-selected backends are *not* wrapped: selection itself must profile
//! the graph and the chosen index is part of the selection evidence, so the
//! service keeps building those eagerly at epoch rotation.

use std::sync::{Arc, OnceLock};

use gtpq_graph::{GraphSnapshot, NodeId};
use gtpq_reach::{BackendKind, Probe, Reachability, SharedIndex};

/// A reachability backend that is chosen now and built on first probe.
pub(crate) struct LazyIndex {
    kind: BackendKind,
    snapshot: Arc<GraphSnapshot>,
    built: OnceLock<SharedIndex>,
}

impl LazyIndex {
    /// Wraps `kind` over `snapshot` as a shareable index that will build
    /// itself on the first reachability probe.
    pub(crate) fn shared(kind: BackendKind, snapshot: Arc<GraphSnapshot>) -> SharedIndex {
        Arc::new(Self {
            kind,
            snapshot,
            built: OnceLock::new(),
        })
    }

    /// The wrapped index, building it now if no probe has forced it yet.
    fn force(&self) -> &SharedIndex {
        self.built.get_or_init(|| {
            self.kind
                .build_shared_with(self.snapshot.graph(), self.snapshot.condensation())
        })
    }

    /// Whether a probe has forced the build yet (test observability).
    #[cfg(test)]
    pub(crate) fn is_built(&self) -> bool {
        self.built.get().is_some()
    }
}

impl Reachability for LazyIndex {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.force().reaches(u, v)
    }

    /// Forces the build: entry counts are only asked for in space
    /// comparisons, where the built index is the object of interest.
    fn index_entries(&self) -> usize {
        self.force().index_entries()
    }

    /// Does not force: before the build the name is determined by the kind.
    /// (The one divergence — `interval` falling back to 3-hop on a
    /// non-forest graph — corrects itself at the first probe.)
    fn name(&self) -> &'static str {
        match self.built.get() {
            Some(index) => index.name(),
            None => match self.kind {
                BackendKind::Closure => "transitive-closure",
                BackendKind::ThreeHop => "3-hop",
                BackendKind::Chain => "chain",
                BackendKind::Contour => "contour",
                BackendKind::Sspi => "sspi",
                BackendKind::Interval => "interval",
            },
        }
    }

    /// Does not force: an unbuilt index has performed zero lookups, so the
    /// deltas the prune and matching stages take around their probes stay
    /// correct whether or not this round was the one that built it.
    fn lookup_count(&self) -> u64 {
        self.built.get().map_or(0, |index| index.lookup_count())
    }

    fn reset_lookups(&self) {
        if let Some(index) = self.built.get() {
            index.reset_lookups();
        }
    }

    fn pred_probe<'s>(&'s self, targets: &[NodeId]) -> Probe<'s> {
        self.force().pred_probe(targets)
    }

    fn succ_probe<'s>(&'s self, sources: &[NodeId]) -> Probe<'s> {
        self.force().succ_probe(sources)
    }

    fn source_probe<'s>(&'s self, source: NodeId) -> Probe<'s> {
        self.force().source_probe(source)
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn snapshot() -> Arc<GraphSnapshot> {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let c = b.add_node_with_label("b");
        let d = b.add_node_with_label("c");
        b.add_edge(a, c);
        b.add_edge(c, d);
        Arc::new(GraphSnapshot::freeze(Arc::new(b.build())))
    }

    #[test]
    fn observational_methods_do_not_force_the_build() {
        let snap = snapshot();
        let lazy = LazyIndex {
            kind: BackendKind::Sspi,
            snapshot: Arc::clone(&snap),
            built: OnceLock::new(),
        };
        assert_eq!(lazy.name(), "sspi");
        assert_eq!(lazy.lookup_count(), 0);
        lazy.reset_lookups();
        assert!(!lazy.is_built(), "stats plumbing must not build the index");
    }

    #[test]
    fn first_probe_builds_once_and_answers_like_an_eager_build() {
        let snap = snapshot();
        let lazy = LazyIndex {
            kind: BackendKind::ThreeHop,
            snapshot: Arc::clone(&snap),
            built: OnceLock::new(),
        };
        let eager = BackendKind::ThreeHop.build_shared_with(snap.graph(), snap.condensation());
        let g = snap.graph();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(lazy.reaches(u, v), eager.reaches(u, v), "{u} -> {v}");
            }
        }
        assert!(lazy.is_built());
        assert_eq!(lazy.name(), eager.name());
        let probe = lazy.succ_probe(&[NodeId(0)]);
        assert!(probe(NodeId(2)));
        assert!(!probe(NodeId(0)));
    }
}
