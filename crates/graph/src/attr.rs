//! Node attribute values.
//!
//! A node attribute is a pair `(name, value)` where the name is an interned
//! [`Symbol`] and the value is an [`AttrValue`].  Query
//! attribute predicates compare these values with the six comparison
//! operators of the paper (`<, <=, =, !=, >, >=`); comparisons across value
//! kinds are defined to be false rather than an error, matching the
//! "no matching element" semantics of `v ∼ u`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;

/// The value of a node attribute.
///
/// `Eq`/`Hash` let `(attribute, value)` pairs key the build-time inverted
/// index ([`AttrIndex`](crate::AttrIndex)).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrValue {
    /// Integer-typed value (years, prices, group ids, ...).
    Int(i64),
    /// String-typed value (tags, names, titles, ...).
    Str(String),
}

impl AttrValue {
    /// Total comparison between two values of the same kind.
    ///
    /// Returns `None` when the kinds differ (an `Int` is never comparable to a
    /// `Str`), which callers translate into "predicate not satisfied".
    pub fn partial_cmp_same_kind(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => Some(a.cmp(b)),
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }

    /// Convenience constructor from `i64`.
    pub fn int(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One attribute of a data node: an interned name plus a value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Interned attribute name.
    pub name: Symbol,
    /// Attribute value.
    pub value: AttrValue,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: Symbol, value: AttrValue) -> Self {
        Self { name, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_kind_comparison() {
        assert_eq!(
            AttrValue::int(3).partial_cmp_same_kind(&AttrValue::int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::str("b").partial_cmp_same_kind(&AttrValue::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            AttrValue::str("b").partial_cmp_same_kind(&AttrValue::str("b")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_kind_comparison_is_none() {
        assert_eq!(
            AttrValue::int(3).partial_cmp_same_kind(&AttrValue::str("3")),
            None
        );
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(AttrValue::int(42).to_string(), "42");
        assert_eq!(AttrValue::str("alice").to_string(), "alice");
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from(7i64), AttrValue::Int(7));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(
            AttrValue::from(String::from("y")),
            AttrValue::Str("y".into())
        );
    }
}
