//! Node attribute values.
//!
//! A node attribute is a pair `(name, value)` where the name is an interned
//! [`Symbol`] and the value is an [`AttrValue`].  Query
//! attribute predicates compare these values with the six comparison
//! operators of the paper (`<, <=, =, !=, >, >=`); comparisons across value
//! kinds are defined to be false rather than an error, matching the
//! "no matching element" semantics of `v ∼ u`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;

/// The value of a node attribute.
///
/// `Eq`/`Hash` let `(attribute, value)` pairs key the build-time inverted
/// index ([`AttrIndex`](crate::AttrIndex)).  The `Vec` variant makes those
/// impls manual: equality and hashing go through `f32::to_bits`, so two
/// vectors are equal exactly when they are bit-identical (NaNs compare equal
/// to themselves; `0.0` and `-0.0` differ) — a total, hash-consistent
/// relation even though `f32` itself is only `PartialOrd`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AttrValue {
    /// Integer-typed value (years, prices, group ids, ...).
    Int(i64),
    /// String-typed value (tags, names, titles, ...).
    Str(String),
    /// Embedding-typed value: a dense f32 vector, matched by similarity
    /// predicates (`sim(attr, [...]) < t`) rather than by order comparisons.
    Vec(Vec<f32>),
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => a == b,
            (AttrValue::Str(a), AttrValue::Str(b)) => a == b,
            (AttrValue::Vec(a), AttrValue::Vec(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

impl Eq for AttrValue {}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            AttrValue::Int(i) => i.hash(state),
            AttrValue::Str(s) => s.hash(state),
            AttrValue::Vec(v) => {
                v.len().hash(state);
                for x in v {
                    x.to_bits().hash(state);
                }
            }
        }
    }
}

impl AttrValue {
    /// Total comparison between two values of the same kind.
    ///
    /// Returns `None` when the kinds differ (an `Int` is never comparable to a
    /// `Str`), which callers translate into "predicate not satisfied".
    /// Vectors are never order-comparable, not even to each other; similarity
    /// predicates reach them instead.
    pub fn partial_cmp_same_kind(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => Some(a.cmp(b)),
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// The embedding slice when this is a `Vec` value.
    pub fn as_vec(&self) -> Option<&[f32]> {
        match self {
            AttrValue::Vec(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }

    /// Convenience constructor from `i64`.
    pub fn int(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Vec(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<Vec<f32>> for AttrValue {
    fn from(v: Vec<f32>) -> Self {
        AttrValue::Vec(v)
    }
}

/// One attribute of a data node: an interned name plus a value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Interned attribute name.
    pub name: Symbol,
    /// Attribute value.
    pub value: AttrValue,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: Symbol, value: AttrValue) -> Self {
        Self { name, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_kind_comparison() {
        assert_eq!(
            AttrValue::int(3).partial_cmp_same_kind(&AttrValue::int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::str("b").partial_cmp_same_kind(&AttrValue::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            AttrValue::str("b").partial_cmp_same_kind(&AttrValue::str("b")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_kind_comparison_is_none() {
        assert_eq!(
            AttrValue::int(3).partial_cmp_same_kind(&AttrValue::str("3")),
            None
        );
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(AttrValue::int(42).to_string(), "42");
        assert_eq!(AttrValue::str("alice").to_string(), "alice");
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from(7i64), AttrValue::Int(7));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(
            AttrValue::from(String::from("y")),
            AttrValue::Str("y".into())
        );
        assert_eq!(
            AttrValue::from(vec![1.0f32, 2.0]),
            AttrValue::Vec(vec![1.0, 2.0])
        );
    }

    #[test]
    fn vec_values_compare_and_hash_by_bits() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &AttrValue| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        let a = AttrValue::Vec(vec![1.0, f32::NAN]);
        let b = AttrValue::Vec(vec![1.0, f32::NAN]);
        assert_eq!(a, b, "bit-identical NaNs compare equal");
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(AttrValue::Vec(vec![0.0]), AttrValue::Vec(vec![-0.0]));
        assert_ne!(AttrValue::Vec(vec![1.0]), AttrValue::Vec(vec![1.0, 1.0]));
        assert_ne!(AttrValue::Vec(vec![]), AttrValue::Int(0));
        // Vectors never order-compare, even to each other.
        assert_eq!(a.partial_cmp_same_kind(&b), None);
        assert_eq!(a.as_vec().map(<[f32]>::len), Some(2));
        assert_eq!(AttrValue::int(1).as_vec(), None);
    }
}
