//! Mutable builder producing immutable [`DataGraph`]s.

use crate::attr::{AttrValue, Attribute};
use crate::graph::{DataGraph, NodeId};
use crate::symbol::SymbolTable;
use crate::LABEL_ATTR;

/// Incrementally constructs a [`DataGraph`].
///
/// Nodes receive dense ids in insertion order.  Duplicate edges are removed
/// at [`build`](GraphBuilder::build) time; self-loops are kept (they make the
/// node its own descendant, which the reachability layer handles through the
/// SCC condensation).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    symbols: SymbolTable,
    attrs: Vec<Vec<Attribute>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            symbols: SymbolTable::new(),
            attrs: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with no attributes and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.attrs.len() as u32);
        self.attrs.push(Vec::new());
        id
    }

    /// Adds a node carrying only a `label` attribute.
    pub fn add_node_with_label(&mut self, label: &str) -> NodeId {
        let id = self.add_node();
        self.set_attr(id, LABEL_ATTR, AttrValue::str(label));
        id
    }

    /// Adds a node with the given `(name, value)` attribute pairs.
    pub fn add_node_with_attrs<'a, I>(&mut self, attrs: I) -> NodeId
    where
        I: IntoIterator<Item = (&'a str, AttrValue)>,
    {
        let id = self.add_node();
        for (name, value) in attrs {
            self.set_attr(id, name, value);
        }
        id
    }

    /// Sets (or overwrites) attribute `name` on node `v`.
    pub fn set_attr(&mut self, v: NodeId, name: &str, value: AttrValue) {
        let sym = self.symbols.intern(name);
        let attrs = &mut self.attrs[v.index()];
        if let Some(existing) = attrs.iter_mut().find(|a| a.name == sym) {
            existing.value = value;
        } else {
            attrs.push(Attribute::new(sym, value));
        }
    }

    /// Adds a directed edge from `u` to `v`.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added yet.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.attrs.len() && v.index() < self.attrs.len(),
            "edge endpoints must be existing nodes"
        );
        self.edges.push((u, v));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges added so far (before de-duplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph: sorts and de-duplicates the edge list, packs it
    /// into forward and reverse CSR arrays, and builds the attribute inverted
    /// index.
    pub fn build(self) -> DataGraph {
        let n = self.attrs.len();
        let mut fwd_pairs: Vec<(u32, NodeId)> = self.edges.iter().map(|&(u, v)| (u.0, v)).collect();
        fwd_pairs.sort_unstable();
        fwd_pairs.dedup();
        let edge_count = fwd_pairs.len();
        let mut rev_pairs: Vec<(u32, NodeId)> =
            fwd_pairs.iter().map(|&(u, v)| (v.0, NodeId(u))).collect();
        rev_pairs.sort_unstable();
        let fwd = crate::csr::Csr::from_sorted_pairs(n, &fwd_pairs);
        let rev = crate::csr::Csr::from_sorted_pairs(n, &rev_pairs);
        let index = crate::index::AttrIndex::build(&self.attrs);
        let sims = crate::sim_index::SimCatalog::build(&self.attrs);
        DataGraph {
            symbols: self.symbols,
            fwd,
            rev,
            attrs: self.attrs.into(),
            index,
            sims,
            edge_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_removed() {
        let mut b = GraphBuilder::new();
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.children(a), &[c]);
        assert_eq!(g.parents(c), &[a]);
    }

    #[test]
    fn set_attr_overwrites() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("X");
        b.set_attr(a, LABEL_ATTR, AttrValue::str("Y"));
        let g = b.build();
        assert_eq!(g.attribute_value(a, LABEL_ATTR), Some(&AttrValue::str("Y")));
        assert_eq!(g.attributes(a).len(), 1);
    }

    #[test]
    #[should_panic(expected = "existing nodes")]
    fn edge_to_missing_node_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node();
        b.add_edge(a, NodeId(99));
    }

    #[test]
    fn with_capacity_and_attr_list() {
        let mut b = GraphBuilder::with_capacity(4, 4);
        let v = b.add_node_with_attrs([
            ("label", AttrValue::str("person")),
            ("age", AttrValue::int(30)),
        ]);
        let g = b.build();
        assert_eq!(g.attribute_value(v, "age"), Some(&AttrValue::int(30)));
        assert_eq!(g.attributes(v).len(), 2);
    }
}
