//! Build-time attribute inverted index.
//!
//! For every `(attribute, value)` pair present in the graph the index stores a
//! sorted posting list of the nodes carrying exactly that pair, plus two
//! coarser access paths:
//!
//! * a per-attribute-name posting list (every node carrying the attribute,
//!   whatever its value) — the fallback superset for predicates the exact
//!   postings cannot answer (`!=`, string ranges), and
//! * a per-attribute sorted `(int value, node)` run answering integer range
//!   predicates (`<, <=, >, >=`) with two binary searches.
//!
//! All posting lists live in two flat arrays (offsets + nodes), mirroring the
//! CSR adjacency layout; the dictionaries map interned keys to slots.  Posting
//! lists are sorted by node id, so conjunctive predicates intersect them with
//! the galloping merge of [`crate::bitset`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrValue, Attribute};
use crate::graph::NodeId;
use crate::symbol::Symbol;

/// The inverted index over node attributes, built by
/// [`GraphBuilder::build`](crate::GraphBuilder::build).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AttrIndex {
    /// attr → value → slot into the value posting arrays.  Two levels so an
    /// equality probe borrows the caller's `&AttrValue` — no owned key, no
    /// clone on the hot candidate-selection path.
    value_slots: HashMap<Symbol, HashMap<AttrValue, u32>>,
    value_offsets: Vec<u32>,
    value_nodes: Vec<NodeId>,
    /// attr → slot into the name posting arrays.
    name_slots: HashMap<Symbol, u32>,
    name_offsets: Vec<u32>,
    name_nodes: Vec<NodeId>,
    /// attr → `(int value, node)` pairs sorted by value then node.
    int_runs: HashMap<Symbol, Vec<(i64, NodeId)>>,
}

impl AttrIndex {
    /// Builds the index from the per-node attribute tuples (node order gives
    /// posting lists sorted by id for free).
    pub fn build(attrs: &[Vec<Attribute>]) -> Self {
        let mut by_value: HashMap<(Symbol, AttrValue), Vec<NodeId>> = HashMap::new();
        let mut by_name: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
        let mut int_runs: HashMap<Symbol, Vec<(i64, NodeId)>> = HashMap::new();
        for (i, tuple) in attrs.iter().enumerate() {
            let v = NodeId(i as u32);
            for attr in tuple {
                by_value
                    .entry((attr.name, attr.value.clone()))
                    .or_default()
                    .push(v);
                by_name.entry(attr.name).or_default().push(v);
                if let AttrValue::Int(value) = attr.value {
                    int_runs.entry(attr.name).or_default().push((value, v));
                }
            }
        }
        for run in int_runs.values_mut() {
            run.sort_unstable();
        }

        let mut value_slots: HashMap<Symbol, HashMap<AttrValue, u32>> = HashMap::new();
        let mut value_offsets = Vec::with_capacity(by_value.len() + 1);
        let mut value_nodes = Vec::new();
        value_offsets.push(0);
        // Deterministic slot order keeps rebuilt indexes comparable.
        fn value_key(v: &AttrValue) -> (u8, i64, &str) {
            match v {
                AttrValue::Int(i) => (0, *i, ""),
                AttrValue::Str(s) => (1, 0, s.as_str()),
            }
        }
        let mut value_keys: Vec<(Symbol, AttrValue)> = by_value.keys().cloned().collect();
        value_keys.sort_unstable_by(|a, b| (a.0, value_key(&a.1)).cmp(&(b.0, value_key(&b.1))));
        for (slot, (sym, value)) in value_keys.into_iter().enumerate() {
            let nodes = &by_value[&(sym, value.clone())];
            value_slots
                .entry(sym)
                .or_default()
                .insert(value, slot as u32);
            value_nodes.extend_from_slice(nodes);
            value_offsets.push(value_nodes.len() as u32);
        }

        let mut name_slots = HashMap::with_capacity(by_name.len());
        let mut name_offsets = Vec::with_capacity(by_name.len() + 1);
        let mut name_nodes = Vec::new();
        name_offsets.push(0);
        let mut name_keys: Vec<Symbol> = by_name.keys().copied().collect();
        name_keys.sort_unstable();
        for key in name_keys {
            let nodes = &by_name[&key];
            name_slots.insert(key, name_slots.len() as u32);
            name_nodes.extend_from_slice(nodes);
            name_offsets.push(name_nodes.len() as u32);
        }

        Self {
            value_slots,
            value_offsets,
            value_nodes,
            name_slots,
            name_offsets,
            name_nodes,
            int_runs,
        }
    }

    /// Sorted posting list of nodes where `attr = value` (empty when the pair
    /// never occurs).
    pub fn nodes_eq(&self, attr: Symbol, value: &AttrValue) -> &[NodeId] {
        match self.value_slots.get(&attr).and_then(|m| m.get(value)) {
            Some(&slot) => {
                let lo = self.value_offsets[slot as usize] as usize;
                let hi = self.value_offsets[slot as usize + 1] as usize;
                &self.value_nodes[lo..hi]
            }
            None => &[],
        }
    }

    /// Sorted posting list of nodes carrying attribute `attr` at all.
    pub fn nodes_with_name(&self, attr: Symbol) -> &[NodeId] {
        match self.name_slots.get(&attr) {
            Some(&slot) => {
                let lo = self.name_offsets[slot as usize] as usize;
                let hi = self.name_offsets[slot as usize + 1] as usize;
                &self.name_nodes[lo..hi]
            }
            None => &[],
        }
    }

    /// Nodes whose integer-valued attribute `attr` lies in `[lo, hi]`
    /// (inclusive), sorted by id.
    pub fn nodes_int_range(&self, attr: Symbol, lo: i64, hi: i64) -> Vec<NodeId> {
        if lo > hi {
            return Vec::new();
        }
        let Some(run) = self.int_runs.get(&attr) else {
            return Vec::new();
        };
        let start = run.partition_point(|&(v, _)| v < lo);
        let end = run.partition_point(|&(v, _)| v <= hi);
        let mut nodes: Vec<NodeId> = run[start..end].iter().map(|&(_, v)| v).collect();
        nodes.sort_unstable();
        nodes
    }

    /// Length of the `attr = value` posting list without materializing it
    /// (O(1); the cost-model input behind `IndexScan` row estimates).
    pub fn count_eq(&self, attr: Symbol, value: &AttrValue) -> usize {
        self.nodes_eq(attr, value).len()
    }

    /// Number of nodes carrying attribute `attr` at all (O(1)).
    pub fn count_with_name(&self, attr: Symbol) -> usize {
        self.nodes_with_name(attr).len()
    }

    /// Number of nodes whose integer-valued `attr` lies in `[lo, hi]`,
    /// computed by two binary searches without building the node list.
    pub fn count_int_range(&self, attr: Symbol, lo: i64, hi: i64) -> usize {
        if lo > hi {
            return 0;
        }
        let Some(run) = self.int_runs.get(&attr) else {
            return 0;
        };
        let start = run.partition_point(|&(v, _)| v < lo);
        let end = run.partition_point(|&(v, _)| v <= hi);
        end - start
    }

    /// Number of `(attr, value)` posting lists.
    pub fn value_posting_count(&self) -> usize {
        self.value_slots.values().map(HashMap::len).sum()
    }

    /// Total number of posting entries across every access path.
    pub fn entry_count(&self) -> usize {
        self.value_nodes.len()
            + self.name_nodes.len()
            + self.int_runs.values().map(Vec::len).sum::<usize>()
    }

    /// Number of distinct values of attribute `attr` present in the graph.
    pub fn distinct_values(&self, attr: Symbol) -> usize {
        self.value_slots.get(&attr).map_or(0, HashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::LABEL_ATTR;

    use super::*;

    fn sample() -> (crate::DataGraph, Symbol, Symbol) {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("x");
        b.set_attr(a, "year", AttrValue::int(2000));
        let c = b.add_node_with_label("y");
        b.set_attr(c, "year", AttrValue::int(2005));
        let d = b.add_node_with_label("x");
        b.set_attr(d, "year", AttrValue::int(2010));
        let _e = b.add_node(); // no attributes at all
        let g = b.build();
        let label = g.symbols().get(LABEL_ATTR).unwrap();
        let year = g.symbols().get("year").unwrap();
        (g, label, year)
    }

    #[test]
    fn eq_postings_are_sorted_and_exact() {
        let (g, label, _) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_eq(label, &AttrValue::str("x")),
            &[NodeId(0), NodeId(2)]
        );
        assert_eq!(idx.nodes_eq(label, &AttrValue::str("y")), &[NodeId(1)]);
        assert_eq!(idx.nodes_eq(label, &AttrValue::str("zz")), &[]);
        assert_eq!(idx.value_posting_count(), 5); // x, y + three years
        assert_eq!(idx.distinct_values(label), 2);
    }

    #[test]
    fn name_postings_cover_every_carrier() {
        let (g, label, year) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_with_name(label),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(idx.nodes_with_name(year).len(), 3);
    }

    #[test]
    fn int_ranges_answer_inclusive_bounds() {
        let (g, _, year) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_int_range(year, 2000, 2005),
            vec![NodeId(0), NodeId(1)]
        );
        assert_eq!(idx.nodes_int_range(year, 2006, i64::MAX), vec![NodeId(2)]);
        assert_eq!(idx.nodes_int_range(year, 3000, 4000), Vec::<NodeId>::new());
        assert_eq!(idx.nodes_int_range(year, 10, 5), Vec::<NodeId>::new());
    }

    #[test]
    fn count_accessors_agree_with_posting_lengths() {
        let (g, label, year) = sample();
        let idx = g.attr_index();
        assert_eq!(idx.count_eq(label, &AttrValue::str("x")), 2);
        assert_eq!(idx.count_eq(label, &AttrValue::str("zz")), 0);
        assert_eq!(idx.count_with_name(year), 3);
        assert_eq!(
            idx.count_int_range(year, 2000, 2005),
            idx.nodes_int_range(year, 2000, 2005).len()
        );
        assert_eq!(idx.count_int_range(year, 10, 5), 0);
        assert_eq!(idx.count_int_range(year, 3000, 4000), 0);
    }

    #[test]
    fn entry_count_sums_all_paths() {
        let (g, _, _) = sample();
        // 6 value entries + 6 name entries + 3 int-run entries.
        assert_eq!(g.attr_index().entry_count(), 15);
    }
}
