//! Build-time attribute inverted index.
//!
//! For every `(attribute, value)` pair present in the graph the index stores a
//! sorted posting list of the nodes carrying exactly that pair, plus two
//! coarser access paths:
//!
//! * a per-attribute-name posting list (every node carrying the attribute,
//!   whatever its value) — the fallback superset for predicates the exact
//!   postings cannot answer (`!=`, string ranges), and
//! * a per-attribute sorted `(int value, node)` run answering integer range
//!   predicates (`<, <=, >, >=`) with two binary searches.
//!
//! All posting lists live in two flat arrays (offsets + nodes), mirroring the
//! CSR adjacency layout; the dictionaries map interned keys to slots.  Posting
//! lists are sorted by node id, so conjunctive predicates intersect them with
//! the galloping merge of [`crate::bitset`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrValue, Attribute};
use crate::graph::NodeId;
use crate::run::IntRun;
use crate::symbol::Symbol;

/// Canonical ordering key for attribute values: ints before strings, each
/// sorted naturally.  Both the full build and the incremental merge assign
/// posting slots in `(Symbol, value_key)` order, which is what makes the two
/// paths produce bit-identical indexes.  Vector values never reach here —
/// they are excluded from the equality postings (see [`indexable_by_value`])
/// — but the key stays total for defensiveness.
fn value_key(v: &AttrValue) -> (u8, i64, &str) {
    match v {
        AttrValue::Int(i) => (0, *i, ""),
        AttrValue::Str(s) => (1, 0, s.as_str()),
        AttrValue::Vec(_) => (2, 0, ""),
    }
}

/// Whether a value participates in the per-`(attribute, value)` equality
/// postings.  Embeddings do not: no query compares vectors with `=`, and
/// similarity predicates go through the dedicated sim tables
/// ([`crate::sim_index`]) instead.  Nodes carrying a vector attribute still
/// enter the per-name postings — the fallback superset the verify-everything
/// path scans.
fn indexable_by_value(v: &AttrValue) -> bool {
    !matches!(v, AttrValue::Vec(_))
}

/// Merges `base \ removed` with `added` (all sorted by node id) into `out`.
fn merge_posting(base: &[NodeId], removed: &[NodeId], added: &[NodeId], out: &mut Vec<NodeId>) {
    let mut ri = 0usize;
    let mut ai = 0usize;
    for &v in base {
        if ri < removed.len() && removed[ri] == v {
            ri += 1;
            continue;
        }
        while ai < added.len() && added[ai] < v {
            out.push(added[ai]);
            ai += 1;
        }
        out.push(v);
    }
    out.extend_from_slice(&added[ai..]);
    debug_assert_eq!(ri, removed.len(), "removed node missing from base posting");
}

/// One per-attribute integer run: the logical `(int value, node)` pairs
/// sorted by value then node, stored as two parallel flat arrays so both
/// halves can live in mapped snapshot sections (Rust tuple layout is
/// unspecified, parallel primitive runs are not).
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct IntPairs {
    pub(crate) values: IntRun<i64>,
    pub(crate) nodes: IntRun<NodeId>,
}

impl IntPairs {
    /// Splits sorted `(value, node)` pairs into the parallel representation.
    pub(crate) fn from_pairs(pairs: Vec<(i64, NodeId)>) -> Self {
        let mut values = Vec::with_capacity(pairs.len());
        let mut nodes = Vec::with_capacity(pairs.len());
        for (value, node) in pairs {
            values.push(value);
            nodes.push(node);
        }
        Self {
            values: values.into(),
            nodes: nodes.into(),
        }
    }

    /// Number of pairs.
    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    /// Iterates the logical pairs in order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (i64, NodeId)> + '_ {
        self.values.iter().copied().zip(self.nodes.iter().copied())
    }
}

/// The inverted index over node attributes, built by
/// [`GraphBuilder::build`](crate::GraphBuilder::build).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttrIndex {
    /// attr → value → slot into the value posting arrays.  Two levels so an
    /// equality probe borrows the caller's `&AttrValue` — no owned key, no
    /// clone on the hot candidate-selection path.
    pub(crate) value_slots: HashMap<Symbol, HashMap<AttrValue, u32>>,
    pub(crate) value_offsets: IntRun<u32>,
    pub(crate) value_nodes: IntRun<NodeId>,
    /// attr → slot into the name posting arrays.
    pub(crate) name_slots: HashMap<Symbol, u32>,
    pub(crate) name_offsets: IntRun<u32>,
    pub(crate) name_nodes: IntRun<NodeId>,
    /// attr → `(int value, node)` runs sorted by value then node.
    pub(crate) int_runs: HashMap<Symbol, IntPairs>,
}

impl AttrIndex {
    /// The `(device, inode)` of the snapshot file any of the posting runs
    /// borrow, when this index is a mapped view (see [`crate::snap`]).
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.value_offsets
            .backing_file_id()
            .or_else(|| self.value_nodes.backing_file_id())
            .or_else(|| self.name_offsets.backing_file_id())
            .or_else(|| self.name_nodes.backing_file_id())
            .or_else(|| {
                self.int_runs.values().find_map(|p| {
                    p.values
                        .backing_file_id()
                        .or_else(|| p.nodes.backing_file_id())
                })
            })
    }

    /// Builds the index from the per-node attribute tuples (node order gives
    /// posting lists sorted by id for free).
    pub fn build(attrs: &[Vec<Attribute>]) -> Self {
        let mut by_value: HashMap<(Symbol, AttrValue), Vec<NodeId>> = HashMap::new();
        let mut by_name: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
        let mut int_runs: HashMap<Symbol, Vec<(i64, NodeId)>> = HashMap::new();
        for (i, tuple) in attrs.iter().enumerate() {
            let v = NodeId(i as u32);
            for attr in tuple {
                if indexable_by_value(&attr.value) {
                    by_value
                        .entry((attr.name, attr.value.clone()))
                        .or_default()
                        .push(v);
                }
                by_name.entry(attr.name).or_default().push(v);
                if let AttrValue::Int(value) = attr.value {
                    int_runs.entry(attr.name).or_default().push((value, v));
                }
            }
        }
        for run in int_runs.values_mut() {
            run.sort_unstable();
        }
        let int_runs: HashMap<Symbol, IntPairs> = int_runs
            .into_iter()
            .map(|(sym, run)| (sym, IntPairs::from_pairs(run)))
            .collect();

        let mut value_slots: HashMap<Symbol, HashMap<AttrValue, u32>> = HashMap::new();
        let mut value_offsets = Vec::with_capacity(by_value.len() + 1);
        let mut value_nodes = Vec::new();
        value_offsets.push(0);
        // Deterministic slot order (see `value_key`) keeps rebuilt indexes
        // comparable.
        let mut value_keys: Vec<(Symbol, AttrValue)> = by_value.keys().cloned().collect();
        value_keys.sort_unstable_by(|a, b| (a.0, value_key(&a.1)).cmp(&(b.0, value_key(&b.1))));
        for (slot, (sym, value)) in value_keys.into_iter().enumerate() {
            let nodes = &by_value[&(sym, value.clone())];
            value_slots
                .entry(sym)
                .or_default()
                .insert(value, slot as u32);
            value_nodes.extend_from_slice(nodes);
            value_offsets.push(value_nodes.len() as u32);
        }

        let mut name_slots = HashMap::with_capacity(by_name.len());
        let mut name_offsets = Vec::with_capacity(by_name.len() + 1);
        let mut name_nodes = Vec::new();
        name_offsets.push(0);
        let mut name_keys: Vec<Symbol> = by_name.keys().copied().collect();
        name_keys.sort_unstable();
        for key in name_keys {
            let nodes = &by_name[&key];
            name_slots.insert(key, name_slots.len() as u32);
            name_nodes.extend_from_slice(nodes);
            name_offsets.push(name_nodes.len() as u32);
        }

        Self {
            value_slots,
            value_offsets: value_offsets.into(),
            value_nodes: value_nodes.into(),
            name_slots,
            name_offsets: name_offsets.into(),
            name_nodes: name_nodes.into(),
            int_runs,
        }
    }

    /// Incrementally maintains the index across one mutation epoch by
    /// sorted-run merges — no full node scan, no global re-sort, and the
    /// result is bit-identical to [`AttrIndex::build`] over the mutated
    /// tuples (posting lists stay sorted, so galloping intersection keeps
    /// working unchanged).
    ///
    /// `removed` / `added` are the `(attr, value, node)` entries leaving and
    /// entering the index; `name_added` lists nodes newly carrying an
    /// attribute name at all (upserts never remove a name).  Entries may
    /// arrive in any order — they are sorted into canonical key order here.
    pub fn merge_updates(
        &self,
        mut removed: Vec<(Symbol, AttrValue, NodeId)>,
        mut added: Vec<(Symbol, AttrValue, NodeId)>,
        mut name_added: Vec<(Symbol, NodeId)>,
    ) -> Self {
        fn ord(sym: Symbol, value: &AttrValue) -> (Symbol, (u8, i64, &str)) {
            (sym, value_key(value))
        }
        // Vector values never enter the equality postings (see
        // `indexable_by_value`), so their deltas only matter to the per-name
        // postings, which `name_added` already carries.
        removed.retain(|e| indexable_by_value(&e.1));
        added.retain(|e| indexable_by_value(&e.1));
        removed.sort_unstable_by(|a, b| (ord(a.0, &a.1), a.2).cmp(&(ord(b.0, &b.1), b.2)));
        added.sort_unstable_by(|a, b| (ord(a.0, &a.1), a.2).cmp(&(ord(b.0, &b.1), b.2)));
        name_added.sort_unstable();

        // --- value postings: merge the base key stream (already in slot =
        // canonical order) with the added key stream, re-slotting on the fly.
        let slot_count = self.value_offsets.len().saturating_sub(1);
        let mut base_keys: Vec<Option<(Symbol, AttrValue)>> = vec![None; slot_count];
        for (&sym, map) in &self.value_slots {
            for (value, &slot) in map {
                base_keys[slot as usize] = Some((sym, value.clone()));
            }
        }
        let mut value_slots: HashMap<Symbol, HashMap<AttrValue, u32>> = HashMap::new();
        let mut value_offsets = Vec::with_capacity(slot_count + 1);
        let mut value_nodes =
            Vec::with_capacity(self.value_nodes.len() + added.len() - removed.len());
        value_offsets.push(0);
        let mut bi = 0usize; // base slot cursor
        let mut ai = 0usize; // added cursor
        let mut ri = 0usize; // removed cursor
        loop {
            let from_base = base_keys.get(bi).map(|k| {
                let (sym, value) = k.as_ref().expect("every slot has a key");
                ord(*sym, value)
            });
            let from_added = added.get(ai).map(|(sym, value, _)| ord(*sym, value));
            let use_base = match (from_base, from_added) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(b), Some(a)) => b <= a,
            };
            let (sym, value, base_run): (Symbol, AttrValue, &[NodeId]) = if use_base {
                let (sym, value) = base_keys[bi].take().expect("every slot has a key");
                let lo = self.value_offsets[bi] as usize;
                let hi = self.value_offsets[bi + 1] as usize;
                bi += 1;
                (sym, value, &self.value_nodes[lo..hi])
            } else {
                let (sym, ref value, _) = added[ai];
                (sym, value.clone(), &[])
            };
            let rstart = ri;
            while ri < removed.len() && removed[ri].0 == sym && removed[ri].1 == value {
                ri += 1;
            }
            let astart = ai;
            while ai < added.len() && added[ai].0 == sym && added[ai].1 == value {
                ai += 1;
            }
            let removed_nodes: Vec<NodeId> = removed[rstart..ri].iter().map(|e| e.2).collect();
            let added_nodes: Vec<NodeId> = added[astart..ai].iter().map(|e| e.2).collect();
            let start = value_nodes.len();
            merge_posting(base_run, &removed_nodes, &added_nodes, &mut value_nodes);
            if value_nodes.len() > start {
                let slot = value_offsets.len() as u32 - 1;
                value_slots.entry(sym).or_default().insert(value, slot);
                value_offsets.push(value_nodes.len() as u32);
            }
            // An emptied posting drops its key, exactly as a rebuild would.
        }
        debug_assert_eq!(ri, removed.len(), "removed entry under an unknown key");

        // --- name postings: merge-only (upserts never remove a name).
        let name_count = self.name_offsets.len().saturating_sub(1);
        let mut base_names: Vec<Option<Symbol>> = vec![None; name_count];
        for (&sym, &slot) in &self.name_slots {
            base_names[slot as usize] = Some(sym);
        }
        let mut name_slots = HashMap::with_capacity(name_count);
        let mut name_offsets = Vec::with_capacity(name_count + 1);
        let mut name_nodes = Vec::with_capacity(self.name_nodes.len() + name_added.len());
        name_offsets.push(0);
        let mut bi = 0usize;
        let mut ai = 0usize;
        loop {
            let from_base = base_names.get(bi).map(|k| k.expect("every slot has a key"));
            let from_added = name_added.get(ai).map(|&(sym, _)| sym);
            let use_base = match (from_base, from_added) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(b), Some(a)) => b <= a,
            };
            let (sym, base_run): (Symbol, &[NodeId]) = if use_base {
                let sym = base_names[bi].expect("every slot has a key");
                let lo = self.name_offsets[bi] as usize;
                let hi = self.name_offsets[bi + 1] as usize;
                bi += 1;
                (sym, &self.name_nodes[lo..hi])
            } else {
                (from_added.expect("added stream is non-empty"), &[])
            };
            let astart = ai;
            while ai < name_added.len() && name_added[ai].0 == sym {
                ai += 1;
            }
            let added_nodes: Vec<NodeId> = name_added[astart..ai].iter().map(|e| e.1).collect();
            name_slots.insert(sym, name_slots.len() as u32);
            merge_posting(base_run, &[], &added_nodes, &mut name_nodes);
            name_offsets.push(name_nodes.len() as u32);
        }

        // --- int runs: filter removed pairs out, merge added pairs in.
        let mut int_removed: HashMap<Symbol, Vec<(i64, NodeId)>> = HashMap::new();
        for (sym, value, node) in &removed {
            if let AttrValue::Int(i) = value {
                int_removed.entry(*sym).or_default().push((*i, *node));
            }
        }
        let mut int_added: HashMap<Symbol, Vec<(i64, NodeId)>> = HashMap::new();
        for (sym, value, node) in &added {
            if let AttrValue::Int(i) = value {
                int_added.entry(*sym).or_default().push((*i, *node));
            }
        }
        let mut int_runs: HashMap<Symbol, IntPairs> = HashMap::new();
        let empty = IntPairs::default();
        let syms: std::collections::BTreeSet<Symbol> = self
            .int_runs
            .keys()
            .chain(int_added.keys())
            .copied()
            .collect();
        for sym in syms {
            let base = self.int_runs.get(&sym).unwrap_or(&empty);
            let mut rem = int_removed.remove(&sym).unwrap_or_default();
            rem.sort_unstable();
            let mut add = int_added.remove(&sym).unwrap_or_default();
            add.sort_unstable();
            let mut run = Vec::with_capacity(base.len() + add.len() - rem.len());
            let mut rj = 0usize;
            let mut aj = 0usize;
            for pair in base.iter() {
                if rj < rem.len() && rem[rj] == pair {
                    rj += 1;
                    continue;
                }
                while aj < add.len() && add[aj] < pair {
                    run.push(add[aj]);
                    aj += 1;
                }
                run.push(pair);
            }
            run.extend_from_slice(&add[aj..]);
            debug_assert_eq!(rj, rem.len(), "removed int pair missing from run");
            if !run.is_empty() {
                int_runs.insert(sym, IntPairs::from_pairs(run));
            }
        }

        Self {
            value_slots,
            value_offsets: value_offsets.into(),
            value_nodes: value_nodes.into(),
            name_slots,
            name_offsets: name_offsets.into(),
            name_nodes: name_nodes.into(),
            int_runs,
        }
    }

    /// Sorted posting list of nodes where `attr = value` (empty when the pair
    /// never occurs).
    pub fn nodes_eq(&self, attr: Symbol, value: &AttrValue) -> &[NodeId] {
        match self.value_slots.get(&attr).and_then(|m| m.get(value)) {
            Some(&slot) => {
                let lo = self.value_offsets[slot as usize] as usize;
                let hi = self.value_offsets[slot as usize + 1] as usize;
                &self.value_nodes[lo..hi]
            }
            None => &[],
        }
    }

    /// Sorted posting list of nodes carrying attribute `attr` at all.
    pub fn nodes_with_name(&self, attr: Symbol) -> &[NodeId] {
        match self.name_slots.get(&attr) {
            Some(&slot) => {
                let lo = self.name_offsets[slot as usize] as usize;
                let hi = self.name_offsets[slot as usize + 1] as usize;
                &self.name_nodes[lo..hi]
            }
            None => &[],
        }
    }

    /// Nodes whose integer-valued attribute `attr` lies in `[lo, hi]`
    /// (inclusive), sorted by id.
    pub fn nodes_int_range(&self, attr: Symbol, lo: i64, hi: i64) -> Vec<NodeId> {
        if lo > hi {
            return Vec::new();
        }
        let Some(run) = self.int_runs.get(&attr) else {
            return Vec::new();
        };
        // Pairs are sorted by `(value, node)`, so partitioning on the value
        // half alone lands on the same boundaries.
        let start = run.values.partition_point(|&v| v < lo);
        let end = run.values.partition_point(|&v| v <= hi);
        let mut nodes: Vec<NodeId> = run.nodes[start..end].to_vec();
        nodes.sort_unstable();
        nodes
    }

    /// Length of the `attr = value` posting list without materializing it
    /// (O(1); the cost-model input behind `IndexScan` row estimates).
    pub fn count_eq(&self, attr: Symbol, value: &AttrValue) -> usize {
        self.nodes_eq(attr, value).len()
    }

    /// Number of nodes carrying attribute `attr` at all (O(1)).
    pub fn count_with_name(&self, attr: Symbol) -> usize {
        self.nodes_with_name(attr).len()
    }

    /// Number of nodes whose integer-valued `attr` lies in `[lo, hi]`,
    /// computed by two binary searches without building the node list.
    pub fn count_int_range(&self, attr: Symbol, lo: i64, hi: i64) -> usize {
        if lo > hi {
            return 0;
        }
        let Some(run) = self.int_runs.get(&attr) else {
            return 0;
        };
        let start = run.values.partition_point(|&v| v < lo);
        let end = run.values.partition_point(|&v| v <= hi);
        end - start
    }

    /// Number of `(attr, value)` posting lists.
    pub fn value_posting_count(&self) -> usize {
        self.value_slots.values().map(HashMap::len).sum()
    }

    /// Total number of posting entries across every access path.
    pub fn entry_count(&self) -> usize {
        self.value_nodes.len()
            + self.name_nodes.len()
            + self.int_runs.values().map(IntPairs::len).sum::<usize>()
    }

    /// Number of distinct values of attribute `attr` present in the graph.
    pub fn distinct_values(&self, attr: Symbol) -> usize {
        self.value_slots.get(&attr).map_or(0, HashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::LABEL_ATTR;

    use super::*;

    fn sample() -> (crate::DataGraph, Symbol, Symbol) {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("x");
        b.set_attr(a, "year", AttrValue::int(2000));
        let c = b.add_node_with_label("y");
        b.set_attr(c, "year", AttrValue::int(2005));
        let d = b.add_node_with_label("x");
        b.set_attr(d, "year", AttrValue::int(2010));
        let _e = b.add_node(); // no attributes at all
        let g = b.build();
        let label = g.symbols().get(LABEL_ATTR).unwrap();
        let year = g.symbols().get("year").unwrap();
        (g, label, year)
    }

    #[test]
    fn eq_postings_are_sorted_and_exact() {
        let (g, label, _) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_eq(label, &AttrValue::str("x")),
            &[NodeId(0), NodeId(2)]
        );
        assert_eq!(idx.nodes_eq(label, &AttrValue::str("y")), &[NodeId(1)]);
        assert_eq!(idx.nodes_eq(label, &AttrValue::str("zz")), &[]);
        assert_eq!(idx.value_posting_count(), 5); // x, y + three years
        assert_eq!(idx.distinct_values(label), 2);
    }

    #[test]
    fn name_postings_cover_every_carrier() {
        let (g, label, year) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_with_name(label),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(idx.nodes_with_name(year).len(), 3);
    }

    #[test]
    fn int_ranges_answer_inclusive_bounds() {
        let (g, _, year) = sample();
        let idx = g.attr_index();
        assert_eq!(
            idx.nodes_int_range(year, 2000, 2005),
            vec![NodeId(0), NodeId(1)]
        );
        assert_eq!(idx.nodes_int_range(year, 2006, i64::MAX), vec![NodeId(2)]);
        assert_eq!(idx.nodes_int_range(year, 3000, 4000), Vec::<NodeId>::new());
        assert_eq!(idx.nodes_int_range(year, 10, 5), Vec::<NodeId>::new());
    }

    #[test]
    fn count_accessors_agree_with_posting_lengths() {
        let (g, label, year) = sample();
        let idx = g.attr_index();
        assert_eq!(idx.count_eq(label, &AttrValue::str("x")), 2);
        assert_eq!(idx.count_eq(label, &AttrValue::str("zz")), 0);
        assert_eq!(idx.count_with_name(year), 3);
        assert_eq!(
            idx.count_int_range(year, 2000, 2005),
            idx.nodes_int_range(year, 2000, 2005).len()
        );
        assert_eq!(idx.count_int_range(year, 10, 5), 0);
        assert_eq!(idx.count_int_range(year, 3000, 4000), 0);
    }

    #[test]
    fn entry_count_sums_all_paths() {
        let (g, _, _) = sample();
        // 6 value entries + 6 name entries + 3 int-run entries.
        assert_eq!(g.attr_index().entry_count(), 15);
    }
}
