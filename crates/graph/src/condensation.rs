//! Strongly connected component condensation.
//!
//! Reachability indexes (3-hop, interval, SSPI) are defined on DAGs.  General
//! data graphs are first condensed: every SCC collapses to a single component
//! node, and reachability between original nodes is answered through the
//! component DAG.  Two distinct nodes of the same SCC always reach each other;
//! a node reaches itself iff its SCC contains a cycle (size > 1 or self-loop).

use crate::csr::Csr;
use crate::graph::{DataGraph, NodeId};

/// Identifier of a strongly connected component in a [`Condensation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

impl CompId {
    /// The component id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The SCC condensation of a [`DataGraph`].
///
/// Component membership and the condensation DAG are CSR-packed (flat offset
/// plus target arrays, see [`Csr`]); [`successors`](Self::successors),
/// [`predecessors`](Self::predecessors) and [`members`](Self::members) hand
/// out borrowed slices that reachability backends read directly during index
/// construction — no per-component heap lists, nothing to copy.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component of each original node.
    comp_of: Vec<CompId>,
    /// Members of each component, CSR-packed, each run sorted.
    members: Csr<NodeId>,
    /// Whether the component contains a cycle (size > 1 or a self-loop).
    cyclic: Vec<bool>,
    /// Sorted, de-duplicated adjacency between components (excluding self
    /// edges), CSR-packed.
    comp_out: Csr<CompId>,
    comp_in: Csr<CompId>,
    /// Components in topological order (sources first).
    topo: Vec<CompId>,
}

impl Condensation {
    /// Computes the condensation of `g` using Tarjan's algorithm (iterative).
    pub fn new(g: &DataGraph) -> Self {
        let n = g.node_count();
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_of = vec![CompId(u32::MAX); n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();

        // Iterative Tarjan: (node, child cursor) call frames.
        let mut call_stack: Vec<(NodeId, usize)> = Vec::new();
        for start in g.nodes() {
            if index[start.index()] != u32::MAX {
                continue;
            }
            call_stack.push((start, 0));
            index[start.index()] = next_index;
            lowlink[start.index()] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start.index()] = true;

            while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
                let children = g.children(v);
                if *cursor < children.len() {
                    let w = children[*cursor];
                    *cursor += 1;
                    if index[w.index()] == u32::MAX {
                        index[w.index()] = next_index;
                        lowlink[w.index()] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w.index()] {
                        lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        let comp = CompId(members.len() as u32);
                        let mut group = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            comp_of[w.index()] = comp;
                            group.push(w);
                            if w == v {
                                break;
                            }
                        }
                        group.sort_unstable();
                        members.push(group);
                    }
                }
            }
        }

        let c = members.len();
        let mut cyclic = vec![false; c];
        let mut out_pairs: Vec<(u32, CompId)> = Vec::new();
        let mut in_pairs: Vec<(u32, CompId)> = Vec::new();
        for (ci, group) in members.iter().enumerate() {
            if group.len() > 1 {
                cyclic[ci] = true;
            }
        }
        for u in g.nodes() {
            let cu = comp_of[u.index()];
            for &v in g.children(u) {
                let cv = comp_of[v.index()];
                if cu == cv {
                    if u == v || members[cu.index()].len() > 1 {
                        cyclic[cu.index()] = true;
                    }
                } else {
                    out_pairs.push((cu.0, cv));
                    in_pairs.push((cv.0, cu));
                }
            }
        }
        // `from_pairs` sorts and de-duplicates, so parallel condensation
        // edges collapse here.
        let comp_out = Csr::from_pairs(c, out_pairs);
        let comp_in = Csr::from_pairs(c, in_pairs);
        let members = Csr::from_runs(c, members);

        // Tarjan emits components in reverse topological order.
        let topo: Vec<CompId> = (0..c as u32).rev().map(CompId).collect();

        Self {
            comp_of,
            members,
            cyclic,
            comp_out,
            comp_in,
            topo,
        }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// The component containing node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> CompId {
        self.comp_of[v.index()]
    }

    /// Original nodes belonging to component `c`.
    pub fn members(&self, c: CompId) -> &[NodeId] {
        self.members.neighbors(c.index())
    }

    /// Whether component `c` contains a cycle.
    pub fn is_cyclic(&self, c: CompId) -> bool {
        self.cyclic[c.index()]
    }

    /// Successor components of `c` in the condensation DAG (a borrowed CSR
    /// slice, sorted and de-duplicated).
    pub fn successors(&self, c: CompId) -> &[CompId] {
        self.comp_out.neighbors(c.index())
    }

    /// Predecessor components of `c` in the condensation DAG (a borrowed CSR
    /// slice, sorted and de-duplicated).
    pub fn predecessors(&self, c: CompId) -> &[CompId] {
        self.comp_in.neighbors(c.index())
    }

    /// Components in topological order (sources first).
    pub fn topological_order(&self) -> &[CompId] {
        &self.topo
    }

    /// Whether the original graph was already acyclic.
    pub fn input_was_dag(&self) -> bool {
        !self.cyclic.iter().any(|&c| c)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::traversal::is_reachable;

    use super::*;

    #[test]
    fn dag_condensation_is_identity_like() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[0], v[3]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 4);
        assert!(c.input_was_dag());
        // Topological order respects edges.
        let order = c.topological_order();
        let pos = |comp: CompId| order.iter().position(|&x| x == comp).unwrap();
        assert!(pos(c.component_of(v[0])) < pos(c.component_of(v[1])));
        assert!(pos(c.component_of(v[1])) < pos(c.component_of(v[2])));
    }

    #[test]
    fn cycle_collapses_to_single_component() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
        // cycle 0 -> 1 -> 2 -> 0, plus 2 -> 3 -> 4
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[2], v[0]);
        b.add_edge(v[2], v[3]);
        b.add_edge(v[3], v[4]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 3);
        let comp0 = c.component_of(v[0]);
        assert_eq!(comp0, c.component_of(v[1]));
        assert_eq!(comp0, c.component_of(v[2]));
        assert!(c.is_cyclic(comp0));
        assert!(!c.is_cyclic(c.component_of(v[3])));
        assert!(!c.input_was_dag());
    }

    #[test]
    fn self_loop_marks_component_cyclic() {
        let mut b = GraphBuilder::new();
        let a = b.add_node();
        b.add_edge(a, a);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 1);
        assert!(c.is_cyclic(c.component_of(a)));
        assert!(is_reachable(&g, a, a));
    }

    #[test]
    fn condensation_edges_are_deduplicated() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        // {0,1} cycle, {2,3} cycle, two parallel cross edges.
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[0]);
        b.add_edge(v[2], v[3]);
        b.add_edge(v[3], v[2]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 2);
        let c0 = c.component_of(v[0]);
        assert_eq!(c.successors(c0).len(), 1);
    }
}
