//! Strongly connected component condensation.
//!
//! Reachability indexes (3-hop, interval, SSPI) are defined on DAGs.  General
//! data graphs are first condensed: every SCC collapses to a single component
//! node, and reachability between original nodes is answered through the
//! component DAG.  Two distinct nodes of the same SCC always reach each other;
//! a node reaches itself iff its SCC contains a cycle (size > 1 or self-loop).
//!
//! The representation is *canonical*: components are numbered by their
//! smallest member node and the topological order is the deterministic Kahn
//! order (smallest ready component first).  Canonical form is what makes the
//! incremental path ([`Condensation::apply_insertions`]) bit-identical to a
//! from-scratch [`Condensation::new`] of the mutated graph — the mutation
//! oracle tests compare the two with `==`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::Csr;
use crate::graph::{DataGraph, NodeId};
use crate::run::IntRun;

/// Identifier of a strongly connected component in a [`Condensation`].
///
/// `repr(transparent)` over the raw `u32` so component runs can live directly
/// inside mapped snapshot sections (see [`crate::run::IntRun`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct CompId(pub u32);

impl CompId {
    /// The component id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The SCC condensation of a [`DataGraph`].
///
/// Component membership and the condensation DAG are CSR-packed (flat offset
/// plus target arrays, see [`Csr`]); [`successors`](Self::successors),
/// [`predecessors`](Self::predecessors) and [`members`](Self::members) hand
/// out borrowed slices that reachability backends read directly during index
/// construction — no per-component heap lists, nothing to copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Condensation {
    /// Component of each original node.
    comp_of: IntRun<CompId>,
    /// Members of each component, CSR-packed, each run sorted.
    members: Csr<NodeId>,
    /// Whether the component contains a cycle (size > 1 or a self-loop),
    /// one byte per component (`0` / `1`) so the run can live in a mapped
    /// snapshot section.
    cyclic: IntRun<u8>,
    /// Sorted, de-duplicated adjacency between components (excluding self
    /// edges), CSR-packed.
    comp_out: Csr<CompId>,
    comp_in: Csr<CompId>,
    /// Components in topological order (sources first).
    topo: IntRun<CompId>,
}

impl Condensation {
    /// Computes the condensation of `g` using Tarjan's algorithm (iterative).
    pub fn new(g: &DataGraph) -> Self {
        let n = g.node_count();
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_of = vec![CompId(u32::MAX); n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();

        // Iterative Tarjan: (node, child cursor) call frames.
        let mut call_stack: Vec<(NodeId, usize)> = Vec::new();
        for start in g.nodes() {
            if index[start.index()] != u32::MAX {
                continue;
            }
            call_stack.push((start, 0));
            index[start.index()] = next_index;
            lowlink[start.index()] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start.index()] = true;

            while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
                let children = g.children(v);
                if *cursor < children.len() {
                    let w = children[*cursor];
                    *cursor += 1;
                    if index[w.index()] == u32::MAX {
                        index[w.index()] = next_index;
                        lowlink[w.index()] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w.index()] {
                        lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        let comp = CompId(members.len() as u32);
                        let mut group = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            comp_of[w.index()] = comp;
                            group.push(w);
                            if w == v {
                                break;
                            }
                        }
                        group.sort_unstable();
                        members.push(group);
                    }
                }
            }
        }

        let c = members.len();

        // Canonical renumbering: order components by their smallest member
        // (each run is sorted, so that is `group[0]`).  Tarjan numbering
        // depends on traversal order; the canonical form does not, which is
        // what lets the incremental path reproduce it exactly.
        let mut order: Vec<u32> = (0..c as u32).collect();
        order.sort_unstable_by_key(|&ci| members[ci as usize][0]);
        let mut renumber = vec![0u32; c];
        for (new, &old) in order.iter().enumerate() {
            renumber[old as usize] = new as u32;
        }
        for slot in comp_of.iter_mut() {
            *slot = CompId(renumber[slot.index()]);
        }
        let members: Vec<Vec<NodeId>> = order
            .iter()
            .map(|&old| std::mem::take(&mut members[old as usize]))
            .collect();

        let mut cyclic = vec![0u8; c];
        let mut out_pairs: Vec<(u32, CompId)> = Vec::new();
        let mut in_pairs: Vec<(u32, CompId)> = Vec::new();
        for (ci, group) in members.iter().enumerate() {
            if group.len() > 1 {
                cyclic[ci] = 1;
            }
        }
        for u in g.nodes() {
            let cu = comp_of[u.index()];
            for &v in g.children(u) {
                let cv = comp_of[v.index()];
                if cu == cv {
                    if u == v || members[cu.index()].len() > 1 {
                        cyclic[cu.index()] = 1;
                    }
                } else {
                    out_pairs.push((cu.0, cv));
                    in_pairs.push((cv.0, cu));
                }
            }
        }
        // `from_pairs` sorts and de-duplicates, so parallel condensation
        // edges collapse here.
        let comp_out = Csr::from_pairs(c, out_pairs);
        let comp_in = Csr::from_pairs(c, in_pairs);
        let members = Csr::from_runs(c, members);
        let topo = kahn_topo(&comp_out, &comp_in);
        debug_assert_eq!(topo.len(), c, "condensation DAG contains a cycle");

        Self {
            comp_of: comp_of.into(),
            members,
            cyclic: cyclic.into(),
            comp_out,
            comp_in,
            topo: topo.into(),
        }
    }

    /// Incrementally extends the condensation after appending
    /// `new_node_count - old node count` fresh nodes and the de-duplicated
    /// edge set `added_edges` (sorted, and disjoint from the old edges).
    ///
    /// The fast path applies when every added inter-component edge goes
    /// *forward* in the extended topological order (existing components in
    /// their old order, new singleton components after them in node order):
    /// then no SCCs merge, component numbering is stable, and the structures
    /// are patched with linear merges.  Any edge that would go backward may
    /// close a cycle, so the method returns `None` and the caller falls back
    /// to a full re-condensation.  The result is bit-identical to
    /// [`Condensation::new`] on the mutated graph.
    pub fn apply_insertions(
        &self,
        new_node_count: usize,
        added_edges: &[(NodeId, NodeId)],
    ) -> Option<Condensation> {
        let old_n = self.comp_of.len();
        let old_c = self.component_count();
        debug_assert!(new_node_count >= old_n);
        let added_nodes = new_node_count - old_n;
        let new_c = old_c + added_nodes;

        // Position of each existing component in the current topological
        // order; new singleton components sit after all of them, in node-id
        // order, so their position is simply their (new) component id.
        let mut pos = vec![0u32; old_c];
        for (i, &c) in self.topo.iter().enumerate() {
            pos[c.index()] = i as u32;
        }
        let comp_of_node = |v: NodeId| -> CompId {
            if v.index() < old_n {
                self.comp_of[v.index()]
            } else {
                CompId((old_c + (v.index() - old_n)) as u32)
            }
        };
        let ext_pos = |c: CompId| -> u32 {
            if c.index() < old_c {
                pos[c.index()]
            } else {
                c.0
            }
        };

        // `to_vec` is the copy-on-write step: when the base condensation is
        // a mapped snapshot view, the patched epoch gets fresh owned arrays.
        let mut cyclic = self.cyclic.to_vec();
        cyclic.resize(new_c, 0);
        let mut out_pairs: Vec<(u32, CompId)> = Vec::new();
        for &(u, v) in added_edges {
            let cu = comp_of_node(u);
            let cv = comp_of_node(v);
            if cu == cv {
                // Either a self-loop or an extra edge inside an existing
                // multi-member (hence already cyclic) component.
                if u == v {
                    cyclic[cu.index()] = 1;
                }
                continue;
            }
            if ext_pos(cu) >= ext_pos(cv) {
                return None; // may close a cycle: re-condense from scratch
            }
            if cu.index() < old_c && cv.index() < old_c && self.comp_out.contains(cu.index(), cv) {
                continue; // parallel condensation edge, already stored
            }
            out_pairs.push((cu.0, cv));
        }
        out_pairs.sort_unstable();
        out_pairs.dedup();
        let mut in_pairs: Vec<(u32, CompId)> = out_pairs
            .iter()
            .map(|&(cu, cv)| (cv.0, CompId(cu)))
            .collect();
        in_pairs.sort_unstable();

        let comp_out = self.comp_out.merge_additions(new_c, &out_pairs);
        let comp_in = self.comp_in.merge_additions(new_c, &in_pairs);
        let members = self
            .members
            .with_appended_runs((old_n..new_node_count).map(|v| [NodeId(v as u32)]));
        let mut comp_of = self.comp_of.to_vec();
        comp_of.extend((old_c..new_c).map(|c| CompId(c as u32)));
        let topo = kahn_topo(&comp_out, &comp_in);
        debug_assert_eq!(topo.len(), new_c, "condensation DAG contains a cycle");

        Some(Self {
            comp_of: comp_of.into(),
            members,
            cyclic: cyclic.into(),
            comp_out,
            comp_in,
            topo: topo.into(),
        })
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// The component containing node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> CompId {
        self.comp_of[v.index()]
    }

    /// Original nodes belonging to component `c`.
    pub fn members(&self, c: CompId) -> &[NodeId] {
        self.members.neighbors(c.index())
    }

    /// Whether component `c` contains a cycle.
    pub fn is_cyclic(&self, c: CompId) -> bool {
        self.cyclic[c.index()] != 0
    }

    /// Successor components of `c` in the condensation DAG (a borrowed CSR
    /// slice, sorted and de-duplicated).
    pub fn successors(&self, c: CompId) -> &[CompId] {
        self.comp_out.neighbors(c.index())
    }

    /// Predecessor components of `c` in the condensation DAG (a borrowed CSR
    /// slice, sorted and de-duplicated).
    pub fn predecessors(&self, c: CompId) -> &[CompId] {
        self.comp_in.neighbors(c.index())
    }

    /// Components in topological order (sources first).
    pub fn topological_order(&self) -> &[CompId] {
        &self.topo
    }

    /// Whether the original graph was already acyclic.
    pub fn input_was_dag(&self) -> bool {
        !self.cyclic.iter().any(|&c| c != 0)
    }

    /// Builds the condensation of a graph that is expected to be a DAG,
    /// straight from its adjacency — no [`DataGraph`] required, which is what
    /// lets streamed snapshot writers (see [`crate::snap`]) emit a
    /// condensation without ever materializing the graph.
    ///
    /// On a self-loop-free DAG every node is its own singleton component and
    /// canonical numbering makes `comp_of` the identity, so the result is
    /// bit-identical to [`Condensation::new`].  Self-loops are tolerated
    /// (they only mark the singleton cyclic, exactly as `new` would).  The
    /// acyclicity *claim is verified*, not trusted: the deterministic Kahn
    /// pass must consume every component, and `None` is returned when it
    /// cannot — the caller's cue to fall back to full Tarjan.
    pub fn identity_dag(fwd: &Csr<NodeId>, rev: &Csr<NodeId>) -> Option<Self> {
        let n = fwd.len();
        assert_eq!(rev.len(), n, "forward/reverse CSRs disagree on node count");
        let mut cyclic = vec![0u8; n];
        let mut out_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut out_targets: Vec<CompId> = Vec::with_capacity(fwd.target_count());
        out_offsets.push(0);
        for (v, cyc) in cyclic.iter_mut().enumerate() {
            for &t in fwd.neighbors(v) {
                if t.index() == v {
                    *cyc = 1;
                } else {
                    out_targets.push(CompId(t.0));
                }
            }
            out_offsets.push(out_targets.len() as u32);
        }
        let mut in_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut in_targets: Vec<CompId> = Vec::with_capacity(rev.target_count());
        in_offsets.push(0);
        for v in 0..n {
            for &t in rev.neighbors(v) {
                if t.index() != v {
                    in_targets.push(CompId(t.0));
                }
            }
            in_offsets.push(in_targets.len() as u32);
        }
        let comp_out = Csr::from_parts(out_offsets.into(), out_targets.into());
        let comp_in = Csr::from_parts(in_offsets.into(), in_targets.into());
        let topo = kahn_topo(&comp_out, &comp_in);
        if topo.len() != n {
            return None; // a cycle among distinct nodes: not a DAG
        }
        let members = Csr::from_runs(n, (0..n).map(|v| [NodeId(v as u32)]));
        let comp_of: Vec<CompId> = (0..n).map(|v| CompId(v as u32)).collect();
        Some(Self {
            comp_of: comp_of.into(),
            members,
            cyclic: cyclic.into(),
            comp_out,
            comp_in,
            topo: topo.into(),
        })
    }

    /// Assembles a condensation from already-validated snapshot runs (see
    /// [`crate::snap`]).  Invariants (canonical numbering, topo order) are the
    /// writer's responsibility; checksums guard the bytes in between.
    #[allow(clippy::too_many_arguments)]
    /// The `(device, inode)` of the snapshot file any of the runs borrow,
    /// when this condensation is a mapped view (see [`crate::snap`]).
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.comp_of
            .backing_file_id()
            .or_else(|| self.members.backing_file_id())
            .or_else(|| self.cyclic.backing_file_id())
            .or_else(|| self.comp_out.backing_file_id())
            .or_else(|| self.comp_in.backing_file_id())
            .or_else(|| self.topo.backing_file_id())
    }

    pub(crate) fn from_parts(
        comp_of: IntRun<CompId>,
        members: Csr<NodeId>,
        cyclic: IntRun<u8>,
        comp_out: Csr<CompId>,
        comp_in: Csr<CompId>,
        topo: IntRun<CompId>,
    ) -> Self {
        Self {
            comp_of,
            members,
            cyclic,
            comp_out,
            comp_in,
            topo,
        }
    }

    /// Raw parts for the snapshot writer: `(comp_of, members, cyclic,
    /// comp_out, comp_in, topo)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (
        &[CompId],
        &Csr<NodeId>,
        &[u8],
        &Csr<CompId>,
        &Csr<CompId>,
        &[CompId],
    ) {
        (
            &self.comp_of,
            &self.members,
            &self.cyclic,
            &self.comp_out,
            &self.comp_in,
            &self.topo,
        )
    }
}

/// Deterministic Kahn topological order over the condensation DAG: among all
/// ready components the smallest id is emitted first.  Both the full and the
/// incremental construction paths use this, so equal DAGs give equal orders.
fn kahn_topo(comp_out: &Csr<CompId>, comp_in: &Csr<CompId>) -> Vec<CompId> {
    let c = comp_out.len();
    let mut indegree: Vec<u32> = (0..c).map(|v| comp_in.degree(v) as u32).collect();
    let mut ready: BinaryHeap<Reverse<u32>> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(v, _)| Reverse(v as u32))
        .collect();
    let mut topo = Vec::with_capacity(c);
    while let Some(Reverse(v)) = ready.pop() {
        topo.push(CompId(v));
        for &w in comp_out.neighbors(v as usize) {
            indegree[w.index()] -= 1;
            if indegree[w.index()] == 0 {
                ready.push(Reverse(w.0));
            }
        }
    }
    // A short order means the DAG claim was wrong; `identity_dag` turns that
    // into `None`, the Tarjan-backed callers can never hit it.
    topo
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::traversal::is_reachable;

    use super::*;

    #[test]
    fn dag_condensation_is_identity_like() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[0], v[3]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 4);
        assert!(c.input_was_dag());
        // Topological order respects edges.
        let order = c.topological_order();
        let pos = |comp: CompId| order.iter().position(|&x| x == comp).unwrap();
        assert!(pos(c.component_of(v[0])) < pos(c.component_of(v[1])));
        assert!(pos(c.component_of(v[1])) < pos(c.component_of(v[2])));
    }

    #[test]
    fn cycle_collapses_to_single_component() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
        // cycle 0 -> 1 -> 2 -> 0, plus 2 -> 3 -> 4
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[2], v[0]);
        b.add_edge(v[2], v[3]);
        b.add_edge(v[3], v[4]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 3);
        let comp0 = c.component_of(v[0]);
        assert_eq!(comp0, c.component_of(v[1]));
        assert_eq!(comp0, c.component_of(v[2]));
        assert!(c.is_cyclic(comp0));
        assert!(!c.is_cyclic(c.component_of(v[3])));
        assert!(!c.input_was_dag());
    }

    #[test]
    fn self_loop_marks_component_cyclic() {
        let mut b = GraphBuilder::new();
        let a = b.add_node();
        b.add_edge(a, a);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 1);
        assert!(c.is_cyclic(c.component_of(a)));
        assert!(is_reachable(&g, a, a));
    }

    #[test]
    fn condensation_edges_are_deduplicated() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        // {0,1} cycle, {2,3} cycle, two parallel cross edges.
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[0]);
        b.add_edge(v[2], v[3]);
        b.add_edge(v[3], v[2]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        let g = b.build();
        let c = Condensation::new(&g);
        assert_eq!(c.component_count(), 2);
        let c0 = c.component_of(v[0]);
        assert_eq!(c.successors(c0).len(), 1);
    }

    #[test]
    fn identity_dag_matches_tarjan_on_dags_and_rejects_cycles() {
        // Deterministic pseudo-random DAGs: edges only low -> high id.
        for seed in 0..12u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let n = 2 + (next() % 20) as usize;
            let mut b = GraphBuilder::new();
            let v: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
            for _ in 0..2 * n {
                let x = (next() % n as u64) as usize;
                let y = (next() % n as u64) as usize;
                if x < y {
                    b.add_edge(v[x], v[y]);
                } else if x == y {
                    b.add_edge(v[x], v[x]); // self-loops must be tolerated
                }
            }
            let g = b.build();
            let fast = Condensation::identity_dag(&g.fwd, &g.rev)
                .expect("low-to-high edges cannot close a cycle");
            assert_eq!(fast, Condensation::new(&g), "seed {seed}");
        }

        // A genuine cycle must be detected, not mis-encoded.
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[2], v[0]);
        let g = b.build();
        assert!(Condensation::identity_dag(&g.fwd, &g.rev).is_none());
    }
}
